"""Tests for summary statistics and artifact writing."""

import csv
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ScenarioSpec,
    SummaryStats,
    SweepRunner,
    expand_grid,
    summarize,
    write_artifacts,
)


@pytest.fixture(scope="module")
def results():
    scenarios = expand_grid(
        base={"size": 6},
        axes={"topology": ["random", "ring"], "seed": [0, 1, 2]},
    )
    return SweepRunner(scenarios, workers=1).run()


class TestSummaryStats:
    def test_five_numbers(self):
        stats = SummaryStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.std == pytest.approx(1.1180339887)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            SummaryStats.of([])


class TestSummarize:
    def test_cells_and_counts(self, results):
        summaries = summarize(results, group_by=("topology",))
        assert [dict(s.key)["topology"] for s in summaries] == [
            "random",
            "ring",
        ]
        assert all(s.scenarios == 3 for s in summaries)
        assert all(s.failures == 0 for s in summaries)

    def test_stats_match_raw_values(self, results):
        summaries = summarize(results, group_by=("topology",))
        ring = next(s for s in summaries if dict(s.key)["topology"] == "ring")
        raw = [
            r.values["overpayment_ratio"]
            for r in results
            if r.spec.topology == "ring"
        ]
        assert ring.stats["overpayment_ratio"].mean == pytest.approx(
            sum(raw) / len(raw)
        )
        assert ring.stats["overpayment_ratio"].count == len(raw)

    def test_unknown_group_field(self, results):
        with pytest.raises(ExperimentError):
            summarize(results, group_by=("flavour",))

    def test_failures_excluded_from_stats(self, results):
        from dataclasses import replace

        broken = replace(results[0], values={}, error="boom")
        summaries = summarize(
            [broken] + list(results[1:]), group_by=("topology",)
        )
        random_cell = next(
            s for s in summaries if dict(s.key)["topology"] == "random"
        )
        assert random_cell.failures == 1
        assert random_cell.scenarios == 3
        assert random_cell.stats["overpayment_ratio"].count == 2


class TestArtifacts:
    def test_writes_all_four(self, results, tmp_path):
        summaries = summarize(results, group_by=("topology",))
        paths = write_artifacts(
            results, summaries, str(tmp_path / "out"), name="unit"
        )
        assert set(paths) == {"results", "summary", "json", "cells"}

        with open(paths["results"]) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(results)
        # Rows are written in canonical (content-key) order.
        by_id = {r.scenario_id: r for r in results}
        assert {row["scenario_id"] for row in rows} == set(by_id)
        assert [row["cell_key"] for row in rows] == sorted(
            r.spec.content_key() for r in results
        )
        first = by_id[rows[0]["scenario_id"]]
        assert float(rows[0]["overpayment_ratio"]) == pytest.approx(
            first.values["overpayment_ratio"]
        )

        with open(paths["summary"]) as handle:
            summary_rows = list(csv.DictReader(handle))
        metrics = {row["metric"] for row in summary_rows}
        assert "overpayment_ratio" in metrics
        # wall_time is volatile and must stay out of byte-stable
        # artifacts; it lives only in cells.jsonl records.
        assert "wall_time" not in metrics

        with open(paths["json"]) as handle:
            document = json.load(handle)
        assert document["name"] == "unit"
        assert len(document["scenarios"]) == len(results)
        assert len(document["summaries"]) == 2

        with open(paths["cells"]) as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == len(results)
        assert all("wall_time" in record for record in records)

    def test_results_csv_deterministic(self, results, tmp_path):
        summaries = summarize(results, group_by=("topology",))
        one = write_artifacts(results, summaries, str(tmp_path / "a"))
        two = write_artifacts(results, summaries, str(tmp_path / "b"))
        with open(one["summary"]) as f_a, open(two["summary"]) as f_b:
            assert f_a.read() == f_b.read()

    def test_artifacts_independent_of_input_order(self, results, tmp_path):
        # Byte-stability is over the *set* of results: reversing the
        # input order must not change a single byte of the canonical
        # artifacts (summaries recomputed internally from sorted rows).
        one = write_artifacts(results, None, str(tmp_path / "a"))
        two = write_artifacts(
            list(reversed(results)), None, str(tmp_path / "b")
        )
        for kind in ("results", "summary", "json", "cells"):
            with open(one[kind]) as f_a, open(two[kind]) as f_b:
                assert f_a.read() == f_b.read()
