"""Tests for scenario execution, serial and pooled."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ScenarioSpec,
    SweepRunner,
    expand_grid,
    run_scenario,
)


class TestPaymentsProbe:
    def test_overpayment_at_least_one(self):
        # VCG pays each transit node its cost plus a non-negative
        # premium, so total payment >= true transit cost on every
        # scenario (individual rationality).
        for seed in range(4):
            result = run_scenario(
                ScenarioSpec(topology="random", size=8, seed=seed)
            )
            assert result.ok
            assert result.values["overpayment_ratio"] >= 1.0 - 1e-9
            assert result.values["total_payment"] >= 0.0

    def test_declared_cost_rule_pays_exactly_cost(self):
        result = run_scenario(
            ScenarioSpec(
                topology="random", size=8, seed=1, payment_rule="declared-cost"
            )
        )
        assert result.ok
        assert result.values["overpayment_ratio"] == pytest.approx(1.0)

    def test_result_shape(self):
        spec = ScenarioSpec(topology="ring", size=6, seed=2, traffic="gravity")
        result = run_scenario(spec)
        assert result.scenario_id == spec.scenario_id()
        assert result.nodes == 6
        assert result.edges == 6
        assert result.flows == 30
        assert result.total_volume == pytest.approx(100.0)
        assert result.wall_time > 0
        row = result.to_row()
        assert row["scenario_id"] == result.scenario_id
        assert row["error"] == ""
        assert row["overpayment_ratio"] == result.values["overpayment_ratio"]

    def test_deterministic_across_runs(self):
        spec = ScenarioSpec(
            topology="random",
            size=10,
            seed=5,
            traffic="random-pairs",
            volume_dist="pareto",
        )
        one, two = run_scenario(spec), run_scenario(spec)
        assert one.values == two.values


class TestConvergenceProbe:
    def test_counts_positive_and_verified(self):
        result = run_scenario(
            ScenarioSpec(topology="random", size=6, seed=1, probe="convergence")
        )
        assert result.ok
        assert result.values["convergence_events"] > 0
        assert result.values["messages"] > 0

    def test_heterogeneous_delays_still_converge(self):
        result = run_scenario(
            ScenarioSpec(
                topology="random",
                size=6,
                seed=1,
                probe="convergence",
                link_delay_spread=0.8,
            )
        )
        # measure_convergence verifies against the oracle internally;
        # ok=True means the asynchronous run reached the same fixed point.
        assert result.ok


class TestDetectionProbe:
    def test_payment_underreport_detected_on_figure1(self):
        result = run_scenario(
            ScenarioSpec(
                topology="figure1",
                probe="detection",
                deviation="payment-underreport",
                deviant_index=2,  # 'C', the paper's manipulative node
            )
        )
        assert result.ok
        assert result.values["detected"] == 1.0
        assert result.values["deviator_gain"] < 0  # penalty makes it a loss

    def test_cost_lie_unprofitable_but_undetected(self):
        # Information-revelation lies are neutralised by VCG payments
        # (strategyproofness), not by the checkers: no flag, no gain.
        result = run_scenario(
            ScenarioSpec(
                topology="figure1",
                probe="detection",
                deviation="cost-lie",
                deviant_index=2,
            )
        )
        assert result.ok
        assert result.values["detected"] == 0.0
        assert result.values["deviator_gain"] <= 1e-9


class TestFaithfulnessProbe:
    def test_ring_is_faithful_on_small_catalogue(self):
        result = run_scenario(
            ScenarioSpec(topology="ring", size=4, seed=0, probe="faithfulness")
        )
        assert result.ok
        assert result.values["faithful"] == 1.0
        assert result.values["ic_holds"] == 1.0
        assert result.values["cc_holds"] == 1.0
        assert result.values["ac_holds"] == 1.0
        assert result.values["equilibrium_violations"] == 0.0

    def test_explicit_catalogue_subset(self):
        result = run_scenario(
            ScenarioSpec(
                topology="ring",
                size=4,
                seed=1,
                probe="faithfulness",
                faithfulness_deviations=("cost-lie",),
            )
        )
        assert result.ok
        assert result.values["faithful"] == 1.0


class TestSweepRunner:
    def _grid(self, count=6):
        return expand_grid(
            base={"topology": "random", "size": 6},
            axes={"seed": list(range(count))},
        )

    def test_serial_preserves_grid_order(self):
        scenarios = self._grid()
        results = SweepRunner(scenarios, workers=1).run()
        assert [r.spec for r in results] == scenarios

    def test_pooled_matches_serial(self):
        scenarios = self._grid()
        serial = SweepRunner(scenarios, workers=1).run()
        pooled = SweepRunner(scenarios, workers=2).run()
        assert [r.scenario_id for r in pooled] == [
            r.scenario_id for r in serial
        ]
        for a, b in zip(serial, pooled):
            assert a.values["total_payment"] == pytest.approx(
                b.values["total_payment"]
            )
            assert a.values["overpayment_ratio"] == pytest.approx(
                b.values["overpayment_ratio"]
            )

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError):
            SweepRunner([], workers=1)

    def test_negative_workers_rejected(self):
        with pytest.raises(ExperimentError):
            SweepRunner(self._grid(2), workers=-1)

    def test_invalid_scenario_rejected_up_front(self):
        with pytest.raises(ExperimentError):
            SweepRunner([ScenarioSpec(topology="torus")], workers=1)

    def test_generator_failure_captured_per_cell(self):
        # A zero anchor passes spec validation but makes the pareto
        # cost draw raise at build time; that must become one error row
        # while the rest of the grid completes.
        scenarios = expand_grid(
            base={"topology": "random", "size": 6, "cost_dist": "pareto"},
            axes={"cost_low": [0.0, 1.0], "seed": [0, 1]},
        )
        results = SweepRunner(scenarios, workers=1).run()
        failed = [r for r in results if not r.ok]
        assert len(failed) == 2
        assert all("positive anchor" in r.error for r in failed)
        assert all(r.spec.cost_low == 0.0 for r in failed)
        assert all(r.ok for r in results if r.spec.cost_low == 1.0)

    def test_failed_scenario_captured_not_raised(self, monkeypatch):
        # A probe-level ReproError lands in the result's error field
        # instead of sinking the sweep.
        from repro.errors import ConvergenceError
        from repro.experiments import runner as runner_module

        def explode(spec, graph, traffic):
            raise ConvergenceError("event budget exhausted")

        monkeypatch.setitem(runner_module._PROBES, "payments", explode)
        results = SweepRunner(self._grid(2), workers=1).run()
        assert all(not r.ok for r in results)
        assert all("event budget" in r.error for r in results)
        assert all(r.to_row()["error"] for r in results)
