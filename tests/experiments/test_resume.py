"""Kill-and-resume equivalence: a resumed sweep == an uninterrupted one.

The runner appends one record per completed cell; a kill leaves a
prefix (possibly ending in a torn line).  Resuming from any such
prefix — including the empty one — must reproduce the exact artifacts
of a run that was never interrupted, error rows included, while only
re-running the missing cells.
"""

import pytest

from repro.experiments import (
    CellStore,
    SweepRunner,
    expand_grid,
    write_artifacts,
)
from repro.experiments import runner as runner_module


def _grid():
    # 6 cells, one of which (cost_low=0.0, pareto) fails at build time,
    # so captured errors ride through kill/resume as well.
    return expand_grid(
        base={"size": 6},
        axes={
            "cost_dist": ["uniform", "pareto"],
            "cost_low": [0.0, 1.0],
        },
    ) + expand_grid(base={"size": 6, "topology": "ring"}, axes={"seed": [0, 1]})


def _artifacts(results, directory):
    return write_artifacts(results, None, str(directory), name="grid")


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    directory = tmp_path_factory.mktemp("baseline")
    specs = _grid()
    results = SweepRunner(specs, workers=1).run(store_dir=str(directory))
    paths = _artifacts(results, directory)
    return specs, results, directory, paths


class TestKillAndResume:
    @pytest.mark.parametrize("kept_cells", [0, 1, 3, 5, 6])
    def test_resume_from_prefix_reproduces_artifacts(
        self, kept_cells, baseline, tmp_path
    ):
        specs, _, base_dir, base_paths = baseline
        # Simulate the kill: keep only a prefix of the cell store.
        lines = open(CellStore(str(base_dir)).path).read().splitlines(True)
        partial = tmp_path / "partial"
        partial.mkdir()
        open(partial / "cells.jsonl", "w").writelines(lines[:kept_cells])

        resumed_dir = tmp_path / "resumed"
        runner = SweepRunner(specs, workers=1, resume_dir=str(partial))
        results = runner.run(store_dir=str(resumed_dir))
        assert runner.reused == kept_cells
        paths = _artifacts(results, resumed_dir)
        for kind in ("results", "summary", "json"):
            assert (
                open(paths[kind]).read() == open(base_paths[kind]).read()
            ), f"{kind} differs after resuming from {kept_cells} cells"

    def test_torn_final_line_resumes_cleanly(self, baseline, tmp_path):
        specs, _, base_dir, base_paths = baseline
        text = open(CellStore(str(base_dir)).path).read()
        partial = tmp_path / "partial"
        partial.mkdir()
        # Keep two full records plus half of the third.
        lines = text.splitlines(True)
        open(partial / "cells.jsonl", "w").write(
            "".join(lines[:2]) + lines[2][: len(lines[2]) // 2]
        )

        runner = SweepRunner(specs, workers=1, resume_dir=str(partial))
        results = runner.run(store_dir=str(tmp_path / "resumed"))
        assert runner.reused == 2  # the torn record is re-run
        paths = _artifacts(results, tmp_path / "resumed")
        for kind in ("results", "summary", "json"):
            assert open(paths[kind]).read() == open(base_paths[kind]).read()

    def test_error_rows_are_reused_not_rerun(self, baseline, monkeypatch):
        specs, _, base_dir, _ = baseline
        calls = []
        original = runner_module.run_scenario

        def counting(spec):
            calls.append(spec)
            return original(spec)

        monkeypatch.setattr(runner_module, "run_scenario", counting)
        runner = SweepRunner(specs, workers=1, resume_dir=str(base_dir))
        results = runner.run()
        assert calls == []  # every cell, error rows included, reused
        assert runner.reused == len(specs)
        assert sum(1 for r in results if not r.ok) == 1

    def test_resume_store_is_self_contained(self, baseline, tmp_path):
        # Resuming into a fresh directory copies the reused cells, so
        # the new artifact dir can itself be resumed or merged.
        specs, _, base_dir, _ = baseline
        fresh = tmp_path / "fresh"
        SweepRunner(specs, workers=1, resume_dir=str(base_dir)).run(
            store_dir=str(fresh)
        )
        assert len(CellStore(str(fresh)).load()) == len(specs)

    def test_resume_from_non_artifact_dir_fails_loudly(self, tmp_path):
        # A typo'd --resume must not silently re-run the whole grid.
        from repro.errors import ExperimentError

        specs = expand_grid(base={"size": 6}, axes={"seed": [0]})
        runner = SweepRunner(
            specs, workers=1, resume_dir=str(tmp_path / "typo")
        )
        with pytest.raises(ExperimentError, match="cannot resume"):
            runner.run()

    def test_extra_prior_cells_are_ignored(self, baseline, tmp_path):
        # A full-grid artifact can seed a shard run: keys outside the
        # shard are simply not looked up.
        specs, _, base_dir, _ = baseline
        shard = specs[:2]
        runner = SweepRunner(shard, workers=1, resume_dir=str(base_dir))
        results = runner.run(store_dir=str(tmp_path / "shard"))
        assert runner.reused == 2
        assert len(results) == 2


class TestRetryErrors:
    def _failing_grid(self):
        return expand_grid(
            base={"size": 6, "cost_dist": "pareto"},
            axes={"cost_low": [0.0, 1.0], "seed": [0]},
        )

    def test_errors_kept_without_flag(self, tmp_path):
        specs = self._failing_grid()
        prior = tmp_path / "prior"
        SweepRunner(specs, workers=1).run(store_dir=str(prior))

        runner = SweepRunner(specs, workers=1, resume_dir=str(prior))
        results = runner.run()
        assert runner.reused == len(specs)
        assert sum(1 for r in results if not r.ok) == 1

    def test_retry_errors_reruns_only_error_cells(
        self, tmp_path, monkeypatch
    ):
        specs = self._failing_grid()
        prior = tmp_path / "prior"

        # First pass: the payments probe itself is broken, so *every*
        # cell lands as an error row.
        from repro.errors import ConvergenceError

        def explode(spec, graph, traffic):
            raise ConvergenceError("transient outage")

        with monkeypatch.context() as patched:
            patched.setitem(runner_module._PROBES, "payments", explode)
            first = SweepRunner(specs, workers=1).run(store_dir=str(prior))
        assert all(not r.ok for r in first)

        # Second pass, probe healthy again: --retry-errors re-runs the
        # error cells; the genuine generator failure stays an error,
        # the transient ones heal.
        runner = SweepRunner(
            specs, workers=1, resume_dir=str(prior), retry_errors=True
        )
        results = runner.run(store_dir=str(prior))
        assert runner.reused == 0
        assert sum(1 for r in results if not r.ok) == 1
        assert "positive anchor" in [r for r in results if not r.ok][0].error

        # The store healed too (last-wins): a further resume reuses all.
        runner = SweepRunner(specs, workers=1, resume_dir=str(prior))
        runner.run()
        assert runner.reused == len(specs)

    def test_retried_artifacts_match_clean_run(self, tmp_path, monkeypatch):
        specs = self._failing_grid()
        clean = _artifacts(
            SweepRunner(specs, workers=1).run(), tmp_path / "clean"
        )

        prior = tmp_path / "prior"
        from repro.errors import ConvergenceError

        def explode(spec, graph, traffic):
            raise ConvergenceError("transient outage")

        with monkeypatch.context() as patched:
            patched.setitem(runner_module._PROBES, "payments", explode)
            SweepRunner(specs, workers=1).run(store_dir=str(prior))

        results = SweepRunner(
            specs, workers=1, resume_dir=str(prior), retry_errors=True
        ).run(store_dir=str(prior))
        retried = _artifacts(results, prior)
        for kind in ("results", "summary", "json"):
            assert open(retried[kind]).read() == open(clean[kind]).read()
