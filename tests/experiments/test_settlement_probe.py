"""The settlement probe: grid placement, metrics, and determinism.

The batched bank joins the experiment harness as a probe: each cell
synthesizes honest execution reports from the scenario's VCG route
bundle, runs the columnar settle with epoch netting, cross-checks the
net money positions of the per-flow and batch transfer lists, and
dry-runs forced settlement.  These tests pin the default sweep's
settlement block, the probe's metric vocabulary and invariants, its
byte-determinism, and the ``bank.*`` telemetry counters feeding
``repro status``.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ScenarioSpec, default_sweep
from repro.experiments.runner import run_scenario, run_scenario_traced


def settlement_spec(**overrides):
    base = dict(probe="settlement", topology="random", size=10, seed=3)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestGridPlacement:
    def test_default_sweep_settlement_block(self):
        sweep = default_sweep()
        cells = [s for s in sweep.scenarios if s.probe == "settlement"]
        assert sorted(c.size for c in cells) == [16, 64]
        assert all(c.topology == "random" for c in cells)
        # The settlement block is the last one: appended after churn.
        assert sweep.scenarios[-1].probe == "settlement"

    def test_settlement_block_is_optional(self):
        cells = default_sweep(settlement_seeds=0).scenarios
        assert not any(c.probe == "settlement" for c in cells)
        with pytest.raises(ExperimentError):
            default_sweep(settlement_seeds=-1)

    def test_spec_is_valid_and_labelled(self):
        spec = settlement_spec().validate()
        assert spec.scenario_id().endswith(":settlement")


class TestProbeRuns:
    def test_probe_reports_netting_metrics(self):
        result = run_scenario(settlement_spec())
        assert result.error is None
        values = result.values
        assert values["flows_settled"] > 0
        assert values["flow_groups"] > 0
        assert values["net_payouts"] > 0
        # One batch transfer per net debtor, at most one per node.
        assert values["net_transfers"] <= 10
        assert values["netting_ratio"] >= 1.0
        # Honest reports: exact positions, nothing flagged or forced.
        assert values["net_position_drift"] == 0.0
        assert values["settlement_flags"] == 0.0
        assert values["forced_settlements"] == 0.0

    def test_probe_is_deterministic(self):
        one = run_scenario(settlement_spec(seed=9))
        two = run_scenario(settlement_spec(seed=9))
        assert one.comparable() == two.comparable()

    def test_probe_emits_bank_counters(self):
        result, counters = run_scenario_traced(settlement_spec())
        assert result.error is None
        assert counters.get("bank.nets") == 1
        assert counters.get("bank.flows_settled") == int(
            result.values["flows_settled"]
        )
        assert counters.get("bank.net_transfers") == int(
            result.values["net_transfers"]
        )
        assert counters.get("bank.transfer_records") == int(
            result.values["transfer_records"]
        )
