"""Round-trip fuzzing for specs, sweep documents, and content keys.

Two invariants are load-bearing for the orchestration layer:

* parse -> serialize -> parse is a *fixed point* — a spec (or a whole
  sweep document) that travels through JSON, across a process
  boundary, or through ``cells.jsonl`` is the same spec; and
* the content key depends on the spec's *content only* — never on the
  order a JSON document happened to list its keys in — because the
  key is the join identity for sharding, resume, and merging.
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ScenarioSpec, parse_sweep
from repro.faithful import DEVIATION_CATALOGUE
from repro.workloads import (
    COST_DISTRIBUTIONS,
    MASS_DISTRIBUTIONS,
    VOLUME_DISTRIBUTIONS,
)

_DEVIATIONS = sorted(DEVIATION_CATALOGUE)

# Finite floats that survive JSON exactly (every finite float does:
# dumps emits the shortest repr and loads reads it back bit-identical).
_positive = st.floats(
    min_value=0.5, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def scenario_specs(draw):
    """Valid, fully fuzzed scenario specs."""
    probe = draw(st.sampled_from(("payments", "convergence", "detection",
                                  "faithfulness")))
    kwargs = {
        "topology": draw(
            st.sampled_from(("figure1", "ring", "wheel", "complete", "random"))
        ),
        "size": draw(st.integers(min_value=4, max_value=24)),
        "seed": draw(st.integers(min_value=0, max_value=2**31)),
        "extra_edge_prob": draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        "cost_dist": draw(st.sampled_from(sorted(COST_DISTRIBUTIONS))),
        "cost_low": draw(_positive),
        "cost_high": draw(_positive),
        "cost_param": draw(_positive),
        "traffic": draw(
            st.sampled_from(("uniform", "random-pairs", "hotspot", "gravity"))
        ),
        "volume": draw(_positive),
        "volume_high": draw(_positive),
        "flow_count": draw(st.integers(min_value=1, max_value=64)),
        "volume_dist": draw(st.sampled_from(sorted(VOLUME_DISTRIBUTIONS))),
        "volume_param": draw(_positive),
        "total_volume": draw(_positive),
        "mass_dist": draw(st.sampled_from(sorted(MASS_DISTRIBUTIONS))),
        "mass_param": draw(_positive),
        "probe": probe,
        "payment_rule": draw(st.sampled_from(("vcg", "declared-cost"))),
        "deviant_index": draw(st.integers(min_value=0, max_value=64)),
        "link_delay_spread": draw(
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False)
        ),
        "faithfulness_deviations": draw(
            st.one_of(
                st.none(),
                st.lists(
                    st.sampled_from(_DEVIATIONS), max_size=3, unique=True
                ).map(tuple),
            )
        ),
    }
    if probe == "detection" or draw(st.booleans()):
        kwargs["deviation"] = draw(st.sampled_from(_DEVIATIONS))
    return ScenarioSpec(**kwargs).validate()


class TestSpecRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(spec=scenario_specs())
    def test_parse_serialize_parse_fixed_point(self, spec):
        document = json.loads(json.dumps(spec.to_dict()))
        once = ScenarioSpec.from_dict(document)
        assert once == spec
        twice = ScenarioSpec.from_dict(json.loads(json.dumps(once.to_dict())))
        assert twice == once
        assert twice.canonical_json() == spec.canonical_json()

    @settings(max_examples=120, deadline=None)
    @given(spec=scenario_specs(), reorder_seed=st.integers(0, 2**16))
    def test_content_key_invariant_under_key_reordering(
        self, spec, reorder_seed
    ):
        items = list(spec.to_dict().items())
        random.Random(reorder_seed).shuffle(items)
        # A JSON document listing the same fields in any order names
        # the same cell.
        reordered = json.loads(json.dumps(dict(items)))
        assert ScenarioSpec.from_dict(reordered).content_key() == (
            spec.content_key()
        )

    @settings(max_examples=60, deadline=None)
    @given(spec=scenario_specs(), other=scenario_specs())
    def test_content_key_separates_distinct_specs(self, spec, other):
        assert (spec.content_key() == other.content_key()) == (spec == other)

    @settings(max_examples=60, deadline=None)
    @given(spec=scenario_specs())
    def test_content_key_format(self, spec):
        key = spec.content_key()
        assert len(key) == 16
        int(key, 16)  # hex digest prefix


class TestSweepDocumentRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(spec=scenario_specs(), seeds=st.integers(2, 5))
    def test_sweep_document_fixed_point(self, spec, seeds):
        base = spec.to_dict()
        base.pop("seed")
        document = {
            "name": "fuzz",
            "base": base,
            "axes": {"seed": list(range(seeds))},
            "group_by": ["topology", "probe"],
        }
        parsed = parse_sweep(document)
        rebounced = parse_sweep(json.loads(json.dumps(document)))
        assert rebounced == parsed
        assert [s.content_key() for s in rebounced.scenarios] == [
            s.content_key() for s in parsed.scenarios
        ]

    @settings(max_examples=30, deadline=None)
    @given(spec=scenario_specs(), reorder_seed=st.integers(0, 2**16))
    def test_grid_cell_keys_survive_document_reordering(
        self, spec, reorder_seed
    ):
        base = spec.to_dict()
        base.pop("seed")
        shuffled = list(base.items())
        random.Random(reorder_seed).shuffle(shuffled)
        one = parse_sweep({"base": base, "axes": {"seed": [0, 1]}})
        two = parse_sweep({"base": dict(shuffled), "axes": {"seed": [0, 1]}})
        assert [s.content_key() for s in one.scenarios] == [
            s.content_key() for s in two.scenarios
        ]
