"""Shard-and-merge equivalence: N shards merged == one serial run.

The property fenced here is the whole point of the orchestration
layer: running a grid in N shards (any N, including N larger than the
grid) and merging the shard artifacts is indistinguishable — row for
row and byte for byte — from running the grid serially in one
process.  The grids deliberately include error cells, so captured
per-cell failures survive sharding and merging too.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ScenarioSpec,
    SweepRunner,
    canonical_results,
    expand_grid,
    merge_artifacts,
    shard_grid,
    write_artifacts,
)


def _grid():
    # 6 cells; the cost_low=0.0 half fails at build time (pareto needs
    # a positive anchor), so error capture rides through every shard.
    return expand_grid(
        base={"size": 6, "cost_dist": "pareto"},
        axes={"cost_low": [0.0, 1.0], "seed": [0, 1, 2]},
    )


class TestShardGrid:
    def test_partition_disjoint_and_covering(self):
        specs = _grid()
        for count in (1, 2, 3, 7):
            shards = [
                shard_grid(specs, index, count) for index in range(count)
            ]
            merged = [spec for shard in shards for spec in shard]
            assert sorted(merged, key=repr) == sorted(specs, key=repr)
            assert len(merged) == len(specs)  # disjoint

    def test_round_robin_order(self):
        specs = _grid()
        assert shard_grid(specs, 0, 2) == tuple(specs[0::2])
        assert shard_grid(specs, 1, 2) == tuple(specs[1::2])

    def test_oversized_shard_count_yields_empty_shards(self):
        specs = _grid()
        shards = [shard_grid(specs, index, 7) for index in range(7)]
        assert sum(len(s) for s in shards) == len(specs)
        assert any(len(s) == 0 for s in shards)  # 7 > 6 cells

    def test_deterministic(self):
        specs = _grid()
        assert shard_grid(specs, 1, 3) == shard_grid(specs, 1, 3)

    def test_bad_indices_rejected(self):
        specs = _grid()
        with pytest.raises(ExperimentError):
            shard_grid(specs, 0, 0)
        with pytest.raises(ExperimentError):
            shard_grid(specs, 3, 3)
        with pytest.raises(ExperimentError):
            shard_grid(specs, -1, 3)


class TestShardMergeEquivalence:
    @pytest.mark.parametrize("count", [2, 3, 7])
    def test_sharded_and_merged_equals_serial(self, count, tmp_path):
        specs = _grid()
        serial_results = SweepRunner(specs, workers=1).run(
            store_dir=str(tmp_path / "serial")
        )
        serial = write_artifacts(
            serial_results, None, str(tmp_path / "serial"), name="grid"
        )

        shard_dirs = []
        for index in range(count):
            shard = shard_grid(specs, index, count)
            directory = tmp_path / f"shard{index}"
            runner = SweepRunner(shard, workers=1, allow_empty=True)
            results = runner.run(store_dir=str(directory))
            write_artifacts(results, None, str(directory), name="grid")
            shard_dirs.append(str(directory))

        report = merge_artifacts(
            shard_dirs, str(tmp_path / "merged"), name="grid"
        )

        # Row-for-row: merged results equal the key-sorted serial run,
        # including the captured error rows.
        assert [r.comparable() for r in report.results] == [
            r.comparable() for r in canonical_results(serial_results)
        ]
        assert any(not r.ok for r in report.results)

        # Byte-for-byte: every canonical artifact is identical.
        for kind in ("results", "summary", "json"):
            assert (
                open(report.paths[kind]).read() == open(serial[kind]).read()
            ), f"{kind} differs for {count} shards"

    def test_pooled_shard_matches_serial_shard(self, tmp_path):
        # Worker pools change completion order, never artifact bytes.
        specs = expand_grid(
            base={"size": 6}, axes={"seed": [0, 1, 2, 3]}
        )
        serial = write_artifacts(
            SweepRunner(specs, workers=1).run(),
            None,
            str(tmp_path / "serial"),
        )
        pooled = write_artifacts(
            SweepRunner(specs, workers=2).run(),
            None,
            str(tmp_path / "pooled"),
        )
        for kind in ("results", "summary", "json"):
            assert (
                open(serial[kind]).read() == open(pooled[kind]).read()
            )

    def test_shard_keys_are_grid_keys(self):
        # The content key is the only join identity: sharding must not
        # touch it.
        specs = _grid()
        keys = {s.content_key() for s in specs}
        shard_keys = {
            s.content_key()
            for index in range(3)
            for s in shard_grid(specs, index, 3)
        }
        assert shard_keys == keys

    def test_single_shard_is_whole_grid(self, tmp_path):
        specs = [ScenarioSpec(size=6, seed=s) for s in range(3)]
        assert shard_grid(specs, 0, 1) == tuple(specs)
