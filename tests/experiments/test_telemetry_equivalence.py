"""Telemetry is invisible to canonical outputs.

The observability layer's core contract: a sweep run with a live
telemetry feed writes byte-identical canonical artifacts to one run
without it, serially and pooled, error cells included — and the serial
and pooled feeds are record-equivalent (same per-cell records; only
inter-cell order and wall stamps may differ).
"""

import json
import os

import pytest

from repro.experiments import (
    SweepRunner,
    canonical_results,
    expand_grid,
    write_artifacts,
)
from repro.obs import SweepFeed, feed_path, feed_status, read_feed

#: Artifacts that must not differ by a single byte.
BYTE_STABLE = ("results.csv", "summary.csv", "sweep.json")


def _grid():
    # 7 cells; the (pareto, cost_low=0.0) one fails at build time, so
    # error cells ride through the feed and the equivalence check.  The
    # churn cell pins the dynamic-topology probe's telemetry contract.
    return expand_grid(
        base={"size": 6},
        axes={
            "cost_dist": ["uniform", "pareto"],
            "cost_low": [0.0, 1.0],
        },
    ) + expand_grid(
        base={"size": 6, "probe": "convergence"}, axes={"seed": [0, 1]}
    ) + expand_grid(
        base={"size": 6, "probe": "churn", "churn_epochs": 2},
        axes={"seed": [0]},
    )


def _run(directory, telemetry, workers):
    directory = str(directory)
    runner = SweepRunner(_grid(), workers=workers)
    if telemetry:
        with SweepFeed(directory) as feed:
            raw = runner.run(store_dir=directory, feed=feed, feed_name="grid")
    else:
        raw = runner.run(store_dir=directory)
    results = canonical_results(raw)
    write_artifacts(results, None, directory, name="grid", group_by=("probe",))
    return results


def _read(directory, name):
    with open(os.path.join(str(directory), name), "rb") as handle:
        return handle.read()


def _cells_normalized(directory):
    lines = []
    with open(os.path.join(str(directory), "cells.jsonl")) as handle:
        for line in handle:
            record = json.loads(line)
            record["wall_time"] = 0.0
            lines.append(json.dumps(record, sort_keys=True))
    return lines


def _cell_records(events):
    """Per-cell completion records keyed by content key, stamps evicted."""
    cells = {}
    for event in events:
        if event.kind in ("cell_finish", "cell_error"):
            attrs = dict(event.attrs)
            attrs.pop("wall_time", None)
            cells[attrs["key"]] = (
                event.kind,
                event.name,
                tuple(sorted((k, _freeze(v)) for k, v in attrs.items())),
            )
    return cells


def _freeze(value):
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    dirs = {}
    for label, telemetry, workers in (
        ("off_serial", False, 1),
        ("on_serial", True, 1),
        ("off_pooled", False, 2),
        ("on_pooled", True, 2),
    ):
        directory = tmp_path_factory.mktemp(label)
        _run(directory, telemetry, workers)
        dirs[label] = directory
    return dirs


class TestArtifactByteEquivalence:
    @pytest.mark.parametrize("artifact", BYTE_STABLE)
    def test_byte_identical_across_all_modes(self, runs, artifact):
        baseline = _read(runs["off_serial"], artifact)
        for label in ("on_serial", "off_pooled", "on_pooled"):
            assert _read(runs[label], artifact) == baseline, (
                f"{artifact} differs between off_serial and {label}"
            )

    def test_cells_identical_modulo_wall_time(self, runs):
        baseline = _cells_normalized(runs["off_serial"])
        for label in ("on_serial", "off_pooled", "on_pooled"):
            assert _cells_normalized(runs[label]) == baseline

    def test_feed_only_written_when_requested(self, runs):
        assert not os.path.exists(feed_path(str(runs["off_serial"])))
        assert not os.path.exists(feed_path(str(runs["off_pooled"])))
        assert os.path.exists(feed_path(str(runs["on_serial"])))


class TestFeedEquivalence:
    def test_serial_and_pooled_feeds_record_equivalent(self, runs):
        serial = _cell_records(read_feed(feed_path(str(runs["on_serial"]))))
        pooled = _cell_records(read_feed(feed_path(str(runs["on_pooled"]))))
        assert serial == pooled
        assert len(serial) == len(_grid())

    def test_feed_captures_the_error_cell(self, runs):
        events = read_feed(feed_path(str(runs["on_serial"])))
        errors = [e for e in events if e.kind == "cell_error"]
        assert len(errors) == 1
        assert errors[0].attrs["error_class"] == "GraphError"
        assert errors[0].attrs["probe"] == "payments"

    def test_convergence_cells_carry_kernel_counters(self, runs):
        events = read_feed(feed_path(str(runs["on_serial"])))
        finished = [e for e in events if e.kind == "cell_finish"]
        conv = [e for e in finished if e.attrs["probe"] == "convergence"]
        assert conv
        for event in conv:
            counters = event.attrs["counters"]
            assert counters.get("kernel.rows_ingested", 0) > 0
            assert counters.get("sim.metrics.events_processed", 0) > 0

    def test_churn_cell_carries_epoch_counters(self, runs):
        events = read_feed(feed_path(str(runs["on_serial"])))
        finished = [e for e in events if e.kind == "cell_finish"]
        churn = [e for e in finished if e.attrs["probe"] == "churn"]
        assert len(churn) == 1
        counters = churn[0].attrs["counters"]
        assert counters.get("churn.epochs") == 2
        assert counters.get("churn.events", 0) >= 1
        assert counters.get("churn.reconvergence_events", 0) > 0

    def test_status_agrees_with_results(self, runs):
        status = feed_status(read_feed(feed_path(str(runs["on_pooled"]))))
        assert status.total == len(_grid())
        assert status.finished == len(_grid()) - 1
        assert status.errors == 1
        assert status.complete
        assert status.error_classes == {"GraphError": 1}
