"""Tests for scenario specs, grid expansion, and sweep parsing."""

import pickle

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ScenarioSpec,
    SweepSpec,
    default_sweep,
    expand_grid,
    parse_sweep,
)


class TestScenarioSpec:
    def test_default_is_valid(self):
        ScenarioSpec().validate()

    def test_unknown_topology(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec(topology="torus").validate()

    def test_unknown_traffic(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec(traffic="bursty").validate()

    def test_unknown_probe(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec(probe="telepathy").validate()

    def test_too_small_family(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec(topology="wheel", size=3).validate()

    def test_detection_needs_deviation(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec(probe="detection").validate()
        with pytest.raises(ExperimentError):
            ScenarioSpec(probe="detection", deviation="mind-control").validate()
        ScenarioSpec(probe="detection", deviation="cost-lie").validate()

    def test_bad_distribution_names(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec(cost_dist="cauchy").validate()
        with pytest.raises(ExperimentError):
            ScenarioSpec(volume_dist="weibull").validate()
        with pytest.raises(ExperimentError):
            ScenarioSpec(mass_dist="zipf").validate()

    def test_build_graph_deterministic(self):
        spec = ScenarioSpec(topology="random", size=9, seed=3)
        one, two = spec.build_graph(), spec.build_graph()
        assert one.edges == two.edges
        assert one.costs == two.costs

    def test_build_traffic_deterministic(self):
        spec = ScenarioSpec(traffic="gravity", size=6, seed=4)
        graph = spec.build_graph()
        assert spec.build_traffic(graph) == spec.build_traffic(graph)

    def test_heavy_tail_knobs_flow_through(self):
        spec = ScenarioSpec(
            topology="random",
            size=8,
            seed=1,
            cost_dist="pareto",
            cost_param=1.2,
        )
        graph = spec.build_graph()
        uniform = ScenarioSpec(topology="random", size=8, seed=1).build_graph()
        assert graph.edges == uniform.edges  # structure untouched
        assert graph.costs != uniform.costs

    def test_named_family_cost_dist_redraw(self):
        spec = ScenarioSpec(
            topology="ring", size=6, seed=2, cost_dist="lognormal"
        )
        graph = spec.build_graph()
        base = ScenarioSpec(topology="ring", size=6, seed=2).build_graph()
        assert graph.edges == base.edges
        assert graph.costs != base.costs

    def test_figure1_ignores_size(self):
        graph = ScenarioSpec(topology="figure1", size=999).build_graph()
        assert set(graph.nodes) == {"A", "B", "C", "D", "X", "Z"}

    def test_link_delays_heterogeneous_and_seeded(self):
        spec = ScenarioSpec(link_delay_spread=0.5, seed=7)
        delay_a, delay_b = spec.link_delays(), spec.link_delays()
        draws_a = [delay_a("x", "y") for _ in range(5)]
        draws_b = [delay_b("x", "y") for _ in range(5)]
        assert draws_a == draws_b  # seed-determined
        assert len(set(draws_a)) > 1  # actually heterogeneous
        assert all(1.0 <= d <= 1.5 for d in draws_a)
        assert ScenarioSpec(link_delay_spread=0.0).link_delays() == 1.0

    def test_round_trip_dict(self):
        spec = ScenarioSpec(
            topology="wheel",
            size=7,
            probe="detection",
            deviation="cost-lie",
            faithfulness_deviations=("cost-lie",),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec.from_dict({"warp_factor": 9})

    def test_wrong_field_types_rejected(self):
        # JSON documents can carry strings where numbers belong; the
        # spec must refuse them instead of failing mid-sweep.
        with pytest.raises(ExperimentError, match="size must be"):
            ScenarioSpec.from_dict({"size": "8"})
        with pytest.raises(ExperimentError, match="volume must be"):
            ScenarioSpec.from_dict({"volume": "heavy"})
        with pytest.raises(ExperimentError, match="topology must be"):
            ScenarioSpec.from_dict({"topology": 3})
        with pytest.raises(ExperimentError, match="seed must be"):
            ScenarioSpec.from_dict({"seed": True})
        with pytest.raises(ExperimentError, match="deviation must be"):
            ScenarioSpec.from_dict(
                {"probe": "detection", "deviation": 7}
            )

    def test_pickles(self):
        spec = ScenarioSpec(probe="convergence", link_delay_spread=0.3)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_scenario_ids_unique_across_default_grid(self):
        sweep = default_sweep()
        ids = [spec.scenario_id() for spec in sweep.scenarios]
        assert len(set(ids)) == len(ids)


class TestExpandGrid:
    def test_cartesian_product_order(self):
        scenarios = expand_grid(
            base={"probe": "payments"},
            axes={"topology": ["ring", "random"], "seed": [0, 1, 2]},
        )
        assert len(scenarios) == 6
        # First axis varies slowest.
        assert [s.topology for s in scenarios] == ["ring"] * 3 + ["random"] * 3
        assert [s.seed for s in scenarios] == [0, 1, 2, 0, 1, 2]

    def test_unknown_field_rejected(self):
        with pytest.raises(ExperimentError):
            expand_grid(base={}, axes={"colour": ["red"]})
        with pytest.raises(ExperimentError):
            expand_grid(base={"colour": "red"}, axes={"seed": [0]})

    def test_overlapping_base_and_axis_rejected(self):
        with pytest.raises(ExperimentError):
            expand_grid(base={"seed": 0}, axes={"seed": [0, 1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError):
            expand_grid(base={}, axes={"seed": []})

    def test_invalid_cell_rejected_at_expansion(self):
        with pytest.raises(ExperimentError):
            expand_grid(base={}, axes={"topology": ["random", "torus"]})


class TestParseSweep:
    def test_minimal_document(self):
        sweep = parse_sweep(
            {"axes": {"seed": [0, 1]}, "name": "tiny"}
        )
        assert sweep.name == "tiny"
        assert len(sweep.scenarios) == 2

    def test_group_by_validated(self):
        with pytest.raises(ExperimentError):
            SweepSpec(
                name="x",
                scenarios=(ScenarioSpec(),),
                group_by=("nonsense",),
            )

    def test_unknown_top_level_key(self):
        with pytest.raises(ExperimentError):
            parse_sweep({"axes": {"seed": [0]}, "scenario_count": 5})

    def test_axes_required(self):
        with pytest.raises(ExperimentError):
            parse_sweep({"name": "empty"})

    def test_default_sweep_shape(self):
        sweep = default_sweep()
        assert len(sweep.scenarios) >= 50
        assert len({s.topology for s in sweep.scenarios}) >= 2
        assert len({s.traffic for s in sweep.scenarios}) >= 2
        assert len({s.seed for s in sweep.scenarios}) >= 3

    def test_default_sweep_checked_block(self):
        """The checked-network block: detection cells at every rung,
        faithfulness at the smallest, all validated at expansion."""
        sweep = default_sweep()
        detection = [s for s in sweep.scenarios if s.probe == "detection"]
        faithfulness = [
            s for s in sweep.scenarios if s.probe == "faithfulness"
        ]
        assert sorted(s.size for s in detection) == [16, 64]
        assert all(s.deviation == "false-route-announce" for s in detection)
        assert all(s.traffic == "random-pairs" for s in detection)
        assert [s.size for s in faithfulness] == [16]
        # The knob drops the block without touching other cells.
        without = default_sweep(checked_seeds=0)
        assert not [
            s for s in without.scenarios if s.probe in ("detection", "faithfulness")
        ]

    def test_default_sweep_checked_block_appends_only(self):
        """Existing cells keep their content keys when blocks grow:
        each optional block appends strictly after the previous ones."""
        base = default_sweep(
            checked_seeds=0, churn_seeds=0, settlement_seeds=0
        )
        with_checked = default_sweep(churn_seeds=0, settlement_seeds=0)
        with_churn = default_sweep(settlement_seeds=0)
        grown = default_sweep()
        base_keys = [s.content_key() for s in base.scenarios]
        checked_keys = [s.content_key() for s in with_checked.scenarios]
        churn_keys = [s.content_key() for s in with_churn.scenarios]
        grown_keys = [s.content_key() for s in grown.scenarios]
        assert checked_keys[: len(base_keys)] == base_keys
        assert churn_keys[: len(checked_keys)] == checked_keys
        assert grown_keys[: len(churn_keys)] == churn_keys
