"""Tests for the cell store, record round-trips, and artifact merging."""

import json
import os

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    CELLS_FILENAME,
    CellStore,
    ScenarioResult,
    ScenarioSpec,
    SweepRunner,
    canonical_results,
    expand_grid,
    load_artifact_results,
    merge_artifacts,
    write_artifacts,
)


@pytest.fixture(scope="module")
def results():
    scenarios = expand_grid(
        base={"size": 6, "cost_dist": "pareto"},
        axes={"topology": ["random", "ring"], "cost_low": [0.0, 1.0]},
    )
    # cost_low=0.0 cells fail at build time (pareto needs a positive
    # anchor), so the fixture carries both ok rows and error rows.
    return SweepRunner(scenarios, workers=1).run()


class TestRecords:
    def test_round_trip_exact(self, results):
        for result in results:
            clone = ScenarioResult.from_record(result.to_record())
            assert clone.comparable() == result.comparable()
            assert clone.wall_time == result.wall_time

    def test_error_rows_round_trip(self, results):
        errors = [r for r in results if not r.ok]
        assert errors  # the fixture must include failures
        for result in errors:
            clone = ScenarioResult.from_record(result.to_record())
            assert clone.error == result.error
            assert not clone.ok

    def test_record_is_json_ready(self, results):
        for result in results:
            encoded = json.dumps(result.to_record(), sort_keys=True)
            clone = ScenarioResult.from_record(json.loads(encoded))
            assert clone.comparable() == result.comparable()

    def test_key_mismatch_rejected(self, results):
        record = results[0].to_record()
        record["key"] = "0" * 16
        with pytest.raises(ExperimentError, match="does not match"):
            ScenarioResult.from_record(record)

    def test_malformed_record_rejected(self):
        with pytest.raises(ExperimentError, match="malformed"):
            ScenarioResult.from_record({"key": "x"})


class TestCellStore:
    def test_append_then_load(self, results, tmp_path):
        store = CellStore(str(tmp_path / "art"))
        assert store.load() == {}  # missing file is an empty store
        for result in results:
            store.append(result)
        loaded = store.load()
        assert set(loaded) == {r.spec.content_key() for r in results}
        for result in results:
            assert (
                loaded[result.spec.content_key()].comparable()
                == result.comparable()
            )

    def test_truncated_final_line_tolerated(self, results, tmp_path):
        store = CellStore(str(tmp_path))
        for result in results:
            store.append(result)
        text = open(store.path).read()
        # Cut the last record in half, as a kill mid-append would.
        open(store.path, "w").write(text[: len(text) - 40])
        loaded = store.load()
        assert len(loaded) == len(results) - 1

    def test_mid_file_corruption_raises(self, results, tmp_path):
        store = CellStore(str(tmp_path))
        for result in results[:2]:
            store.append(result)
        lines = open(store.path).read().splitlines(True)
        open(store.path, "w").writelines([lines[0][:30] + "\n", lines[1]])
        with pytest.raises(ExperimentError, match="corrupt"):
            store.load()

    def test_append_after_torn_tail_stays_line_clean(
        self, results, tmp_path
    ):
        # A resumed run appending into the same (torn) store must not
        # glue its record onto the fragment: that would turn tolerated
        # end-of-file truncation into fatal mid-file corruption.
        store = CellStore(str(tmp_path))
        for result in results[:2]:
            store.append(result)
        text = open(store.path).read()
        open(store.path, "w").write(text[: len(text) - 40])  # torn tail
        store.append(results[2])
        loaded = store.load()  # no corruption error
        assert results[2].spec.content_key() in loaded
        assert results[1].spec.content_key() not in loaded  # fragment dropped
        assert len(loaded) == 2

    def test_duplicate_keys_last_wins(self, results, tmp_path):
        store = CellStore(str(tmp_path))
        first = results[0]
        import dataclasses

        retried = dataclasses.replace(first, wall_time=first.wall_time + 1)
        store.append(first)
        store.append(results[1])
        store.append(retried)
        loaded = store.load()
        assert len(loaded) == 2
        assert (
            loaded[first.spec.content_key()].wall_time == retried.wall_time
        )


class TestMerge:
    def _write(self, results, directory):
        return write_artifacts(
            canonical_results(results), None, str(directory), name="unit"
        )

    def test_disjoint_merge_equals_whole(self, results, tmp_path):
        self._write(results[:2], tmp_path / "a")
        self._write(results[2:], tmp_path / "b")
        whole = self._write(results, tmp_path / "whole")
        report = merge_artifacts(
            [str(tmp_path / "a"), str(tmp_path / "b")],
            str(tmp_path / "merged"),
            name="unit",
        )
        assert report.sources == 2
        assert report.overlaps == 0
        assert len(report.results) == len(results)
        for kind in ("results", "summary", "json"):
            assert (
                open(report.paths[kind]).read() == open(whole[kind]).read()
            )

    def test_identical_overlap_deduplicated(self, results, tmp_path):
        self._write(results, tmp_path / "a")  # full copy
        self._write(results[1:], tmp_path / "b")  # overlapping copy
        report = merge_artifacts(
            [str(tmp_path / "a"), str(tmp_path / "b")],
            str(tmp_path / "merged"),
        )
        assert len(report.results) == len(results)
        assert report.overlaps == len(results) - 1

    def test_conflicting_cell_rejected(self, results, tmp_path):
        self._write(results, tmp_path / "a")
        conflicted = list(results)
        import dataclasses

        index = next(i for i, r in enumerate(conflicted) if r.ok)
        conflicted[index] = dataclasses.replace(
            conflicted[index],
            values={
                k: v + 1.0 for k, v in conflicted[index].values.items()
            },
        )
        self._write(conflicted, tmp_path / "b")
        with pytest.raises(ExperimentError, match="conflicting results"):
            merge_artifacts(
                [str(tmp_path / "a"), str(tmp_path / "b")],
                str(tmp_path / "merged"),
            )

    def test_wall_time_difference_is_not_a_conflict(self, results, tmp_path):
        import dataclasses

        self._write(results, tmp_path / "a")
        rerun = [
            dataclasses.replace(r, wall_time=r.wall_time * 3 + 1)
            for r in results
        ]
        self._write(rerun, tmp_path / "b")
        report = merge_artifacts(
            [str(tmp_path / "a"), str(tmp_path / "b")],
            str(tmp_path / "merged"),
        )
        assert report.overlaps == len(results)

    def test_non_artifact_dir_rejected(self, tmp_path):
        os.makedirs(tmp_path / "empty")
        with pytest.raises(ExperimentError, match=CELLS_FILENAME):
            merge_artifacts(
                [str(tmp_path / "empty")], str(tmp_path / "merged")
            )

    def test_no_inputs_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="nothing to merge"):
            merge_artifacts([], str(tmp_path / "merged"))

    def test_merge_recovers_name_and_group_by_from_inputs(
        self, results, tmp_path
    ):
        # Shards of a probe-keyed grid (like the stock one) must merge
        # back byte-identically with *no* flags: name and group_by are
        # recovered from the inputs' own sweep.json.
        group_by = ("probe", "topology")
        whole = write_artifacts(
            canonical_results(results),
            None,
            str(tmp_path / "whole"),
            name="stockish",
            group_by=group_by,
        )
        for index in range(2):
            write_artifacts(
                results[index::2],
                None,
                str(tmp_path / f"s{index}"),
                name="stockish",
                group_by=group_by,
            )
        report = merge_artifacts(
            [str(tmp_path / "s0"), str(tmp_path / "s1")],
            str(tmp_path / "merged"),
        )
        assert report.name == "stockish"
        assert report.group_by == group_by
        for kind in ("results", "summary", "json"):
            assert (
                open(report.paths[kind]).read() == open(whole[kind]).read()
            )

    def test_load_artifact_results(self, results, tmp_path):
        self._write(results, tmp_path / "a")
        loaded = load_artifact_results(str(tmp_path / "a"))
        assert [r.comparable() for r in loaded] == [
            r.comparable() for r in canonical_results(results)
        ]


class TestEmptyArtifacts:
    def test_empty_shard_writes_loadable_artifacts(self, tmp_path):
        paths = write_artifacts([], None, str(tmp_path / "empty"))
        assert open(paths["results"]).read().startswith("cell_key,")
        assert load_artifact_results(str(tmp_path / "empty")) == []

    def test_empty_runner_requires_allow_empty(self):
        with pytest.raises(ExperimentError):
            SweepRunner([], workers=1)
        runner = SweepRunner([], workers=1, allow_empty=True)
        assert runner.run() == []

    def test_content_key_stamped_in_rows(self, tmp_path):
        spec = ScenarioSpec(size=6, seed=3)
        results = SweepRunner([spec], workers=1).run()
        row = results[0].to_row()
        assert row["cell_key"] == spec.content_key()
        assert "wall_time" not in row
