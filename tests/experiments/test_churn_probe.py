"""The churn probe: spec schema, grid placement, and determinism.

The dynamic-topology subsystem joins the experiment harness as a
probe; these tests pin the spec extension (validation, scenario ids,
content-key stability for pre-churn artifacts), the default sweep's
churn block, and the probe's byte-determinism and telemetry counters.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ScenarioSpec, default_sweep
from repro.experiments.runner import run_scenario, run_scenario_traced


def churn_spec(**overrides):
    base = dict(
        probe="churn",
        topology="random",
        size=8,
        seed=2,
        churn_epochs=2,
        churn_events=1,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecSchema:
    def test_churn_spec_is_valid(self):
        churn_spec().validate()
        churn_spec(churn_membership=True).validate()

    def test_epoch_and_event_floors(self):
        with pytest.raises(ExperimentError):
            churn_spec(churn_epochs=0).validate()
        with pytest.raises(ExperimentError):
            churn_spec(churn_events=0).validate()

    def test_field_types_are_checked(self):
        with pytest.raises(ExperimentError):
            churn_spec(churn_epochs="three").validate()
        with pytest.raises(ExperimentError):
            churn_spec(churn_membership="yes").validate()

    def test_scenario_id_carries_the_churn_axes(self):
        plain = churn_spec(churn_epochs=3, churn_events=2)
        member = churn_spec(
            churn_epochs=3, churn_events=2, churn_membership=True
        )
        assert "churn" in plain.scenario_id()
        assert "x3.2" in plain.scenario_id()
        assert "membership" not in plain.scenario_id()
        assert "membership" in member.scenario_id()
        assert plain.scenario_id() != member.scenario_id()


class TestContentKeyStability:
    """The schema extension must not move any pre-churn cell: default
    churn fields are omitted from the serialized form, so content keys
    (and hence resume/merge identity) are unchanged."""

    def test_defaults_are_omitted_from_to_dict(self):
        document = ScenarioSpec(probe="payments", size=6).to_dict()
        assert "churn_epochs" not in document
        assert "churn_events" not in document
        assert "churn_membership" not in document

    def test_non_defaults_round_trip(self):
        spec = churn_spec(churn_epochs=4, churn_membership=True)
        document = spec.to_dict()
        assert document["churn_epochs"] == 4
        assert document["churn_membership"] is True
        assert ScenarioSpec.from_dict(document) == spec

    def test_pre_churn_documents_still_parse(self):
        document = ScenarioSpec(probe="payments", size=6).to_dict()
        for key in list(document):
            assert not key.startswith("churn_")
        parsed = ScenarioSpec.from_dict(document)
        assert parsed.churn_epochs == 2 and parsed.churn_events == 1

    def test_content_key_unchanged_by_default_churn_fields(self):
        old_style = ScenarioSpec(probe="payments", size=6, seed=1)
        explicit = ScenarioSpec(
            probe="payments",
            size=6,
            seed=1,
            churn_epochs=2,
            churn_events=1,
            churn_membership=False,
        )
        assert old_style.content_key() == explicit.content_key()


class TestDefaultSweep:
    def test_grid_gains_a_churn_block(self):
        cells = default_sweep().scenarios
        churn = [c for c in cells if c.probe == "churn"]
        assert len(churn) == 8
        assert {c.churn_membership for c in churn} == {True, False}
        assert {c.size for c in churn} == {12, 16}
        assert all(c.churn_epochs == 3 and c.churn_events == 2 for c in churn)

    def test_churn_block_is_optional(self):
        cells = default_sweep(churn_seeds=0).scenarios
        assert not any(c.probe == "churn" for c in cells)
        with pytest.raises(ExperimentError):
            default_sweep(churn_seeds=-1)


class TestProbeRuns:
    def test_probe_reports_reconvergence_metrics(self):
        result = run_scenario(churn_spec())
        assert result.error is None
        values = result.values
        assert values["churn_epochs_run"] == 2
        assert values["initial_messages"] > 0
        assert values["reconvergence_messages"] >= 0
        assert 0 <= values["availability"] <= 1
        assert values["message_amplification"] >= 0

    def test_membership_probe_runs(self):
        result = run_scenario(churn_spec(churn_membership=True, seed=5))
        assert result.error is None
        assert result.values["churn_events_applied"] >= 1

    def test_probe_is_deterministic(self):
        one = run_scenario(churn_spec(seed=7))
        two = run_scenario(churn_spec(seed=7))
        assert one.comparable() == two.comparable()

    def test_probe_emits_churn_counters(self):
        _result, counters = run_scenario_traced(churn_spec())
        assert counters.get("churn.epochs") == 2
        assert counters.get("churn.events", 0) >= 1
        assert counters.get("churn.reconvergence_messages", 0) >= 0
