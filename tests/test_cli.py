"""Tests for the command-line interface."""

import pytest

from repro.cli import main, resolve_graph
from repro.errors import ReproError


class TestResolveGraph:
    def test_figure1(self):
        graph = resolve_graph("figure1")
        assert set(graph.nodes) == {"A", "B", "C", "D", "X", "Z"}

    def test_random_spec(self):
        graph = resolve_graph("random:5:3")
        assert len(graph) == 5
        assert graph.is_biconnected()

    def test_random_spec_deterministic(self):
        assert resolve_graph("random:5:3").edges == resolve_graph(
            "random:5:3"
        ).edges

    def test_bad_specs(self):
        with pytest.raises(ReproError):
            resolve_graph("mystery")
        with pytest.raises(ReproError):
            resolve_graph("random:5")


class TestCommands:
    def test_lcp_command(self, capsys):
        assert main(["lcp", "--graph", "figure1", "--source", "Z"]) == 0
        out = capsys.readouterr().out
        assert "Lowest-cost paths from Z" in out
        assert "Z-C-D-X" in out

    def test_lcp_unknown_source(self, capsys):
        assert main(["lcp", "--source", "ghost"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_faithful(self, capsys):
        assert main(["run", "--graph", "random:4:1"]) == 0
        out = capsys.readouterr().out
        assert "certified:  True" in out
        assert "flags:      0" in out

    def test_run_plain(self, capsys):
        assert main(["run", "--graph", "random:4:1", "--plain"]) == 0
        out = capsys.readouterr().out
        assert "plain FPSS" in out

    def test_deviate_command(self, capsys):
        assert (
            main(
                [
                    "deviate",
                    "payment-underreport",
                    "C",
                    "--graph",
                    "figure1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "payment-underreport by C" in out
        assert "plain" in out and "faithful" in out

    def test_deviate_unknown_deviation(self, capsys):
        assert main(["deviate", "mind-control", "C"]) == 2
        assert "unknown deviation" in capsys.readouterr().err

    def test_deviate_unknown_node(self, capsys):
        assert main(["deviate", "cost-lie", "ghost"]) == 2

    def test_catalogue_command(self, capsys):
        assert main(["catalogue"]) == 0
        out = capsys.readouterr().out
        assert "copy-drop" in out
        assert "message-passing" in out
        assert "execution" in out


class TestSweepCommand:
    def test_spec_file_sweep(self, capsys, tmp_path):
        import csv
        import json

        spec = tmp_path / "sweep.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "cli-test",
                    "base": {"size": 6},
                    "axes": {
                        "topology": ["random", "ring"],
                        "traffic": ["uniform", "gravity"],
                        "seed": [0, 1, 2],
                    },
                }
            )
        )
        out_dir = tmp_path / "artifacts"
        assert (
            main(
                [
                    "sweep",
                    "--spec",
                    str(spec),
                    "--out",
                    str(out_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sweep 'cli-test': 12 scenarios" in out
        assert "overpayment_ratio" in out
        with open(out_dir / "results.csv") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 12
        assert all(row["error"] == "" for row in rows)
        assert (out_dir / "summary.csv").exists()
        assert (out_dir / "sweep.json").exists()

    def test_custom_group_by_and_metric(self, capsys, tmp_path):
        import json

        spec = tmp_path / "sweep.json"
        spec.write_text(
            json.dumps({"axes": {"seed": [0, 1], "size": [6, 8]}})
        )
        assert (
            main(
                [
                    "sweep",
                    "--spec",
                    str(spec),
                    "--out",
                    str(tmp_path / "a"),
                    "--group-by",
                    "size",
                    "--metric",
                    "total_payment",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Per-cell total_payment" in out
        assert "size=6" in out and "size=8" in out

    def test_bad_spec_file(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["sweep", "--spec", str(missing)]) == 2
        assert "cannot read spec file" in capsys.readouterr().err

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["sweep", "--spec", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_bad_grid_field(self, capsys, tmp_path):
        import json

        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps({"axes": {"colour": ["red"]}}))
        assert main(["sweep", "--spec", str(spec)]) == 2
        assert "unknown grid fields" in capsys.readouterr().err

    def test_wrong_typed_axis_value(self, capsys, tmp_path):
        import json

        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps({"axes": {"size": ["8"]}}))
        assert main(["sweep", "--spec", str(spec)]) == 2
        assert "size must be an integer" in capsys.readouterr().err

    def test_bad_shard_rejected(self, capsys, tmp_path):
        import json

        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps({"axes": {"seed": [0, 1]}}))
        for shard in ("0/2", "3/2", "x/2", "2", "1/2/3"):
            assert (
                main(["sweep", "--spec", str(spec), "--shard", shard]) == 2
            )
            assert "bad shard" in capsys.readouterr().err

    def test_bad_group_by_fails_before_running(self, capsys, tmp_path):
        import json
        import time

        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps({"axes": {"seed": [0, 1]}}))
        started = time.perf_counter()
        assert (
            main(
                [
                    "sweep",
                    "--spec",
                    str(spec),
                    "--out",
                    str(tmp_path / "o"),
                    "--group-by",
                    "topolgy",
                ]
            )
            == 2
        )
        assert "unknown group_by fields" in capsys.readouterr().err
        # Fail-fast: no scenario ran, no artifact dir appeared.
        assert time.perf_counter() - started < 5.0
        assert not (tmp_path / "o").exists()


class TestTelemetryCLI:
    def _sweep(self, tmp_path, *extra):
        import json

        spec = tmp_path / "sweep.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "obs-test",
                    "base": {"size": 6},
                    "axes": {"seed": [0, 1]},
                }
            )
        )
        out = tmp_path / "artifacts"
        code = main(
            ["sweep", "--spec", str(spec), "--out", str(out), *extra]
        )
        return code, out

    def test_telemetry_flag_writes_feed(self, capsys, tmp_path):
        code, out = self._sweep(tmp_path, "--telemetry")
        assert code == 0
        assert (out / "telemetry.jsonl").exists()
        # Canonical artifacts unaffected.
        assert (out / "results.csv").exists()
        capsys.readouterr()

    def test_no_feed_without_flag(self, capsys, tmp_path):
        code, out = self._sweep(tmp_path)
        assert code == 0
        assert not (out / "telemetry.jsonl").exists()
        capsys.readouterr()

    def test_progress_lines_on_stderr(self, capsys, tmp_path):
        code, _ = self._sweep(tmp_path, "--progress")
        assert code == 0
        err = capsys.readouterr().err
        assert "[1/2] ok" in err and "[2/2] ok" in err

    def test_no_progress_by_default(self, capsys, tmp_path):
        code, _ = self._sweep(tmp_path)
        assert code == 0
        assert "[1/2]" not in capsys.readouterr().err

    def test_failed_cell_line_has_class_and_key(self, capsys, tmp_path):
        import json

        spec = tmp_path / "bad.json"
        spec.write_text(
            json.dumps(
                {
                    "base": {
                        "size": 6,
                        "cost_dist": "pareto",
                        "cost_low": 0.0,
                    },
                    "axes": {"seed": [0]},
                }
            )
        )
        assert (
            main(
                [
                    "sweep",
                    "--spec",
                    str(spec),
                    "--out",
                    str(tmp_path / "o"),
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "failed cell [GraphError]" in out
        assert "(probe=payments)" in out

    def test_status_command(self, capsys, tmp_path):
        import json

        _, out = self._sweep(tmp_path, "--telemetry")
        capsys.readouterr()
        assert main(["status", str(out)]) == 0
        text = capsys.readouterr().out
        assert "obs-test" in text
        assert "2/2 cells done" in text
        assert main(["status", str(out), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 2
        assert payload["finished"] == 2
        assert payload["complete"] is True

    def test_tail_command(self, capsys, tmp_path):
        import json

        _, out = self._sweep(tmp_path, "--telemetry")
        capsys.readouterr()
        assert main(["tail", str(out)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert any("sweep_start" in line for line in lines)
        assert any("sweep_finish" in line for line in lines)
        assert main(["tail", str(out), "--format", "json"]) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert records[0]["kind"] == "sweep_start"
        assert records[-1]["kind"] == "sweep_finish"

    def test_tail_follow_bounded(self, capsys, tmp_path):
        _, out = self._sweep(tmp_path, "--telemetry")
        capsys.readouterr()
        assert (
            main(
                [
                    "tail",
                    str(out),
                    "--follow",
                    "--interval",
                    "0",
                    "--max-polls",
                    "2",
                ]
            )
            == 0
        )
        assert "sweep_finish" in capsys.readouterr().out

    def test_missing_feed_errors(self, capsys, tmp_path):
        assert main(["status", str(tmp_path)]) == 2
        assert "no telemetry feed" in capsys.readouterr().err
        assert main(["tail", str(tmp_path)]) == 2
        assert "--telemetry" in capsys.readouterr().err


class TestShardMergeCLI:
    """End-to-end orchestration through the CLI: shard, resume, merge."""

    def _spec_file(self, tmp_path):
        import json

        spec = tmp_path / "grid.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "cli-grid",
                    "base": {"size": 6},
                    "axes": {
                        "topology": ["random", "ring"],
                        "seed": [0, 1, 2],
                    },
                }
            )
        )
        return str(spec)

    def _read(self, directory, kind):
        return (directory / kind).read_text()

    def test_shard_resume_merge_round_trip(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        assert (
            main(["sweep", "--spec", spec, "--out", str(tmp_path / "serial")])
            == 0
        )

        # Run 4 shards (more shards than worth it, on purpose).
        shard_dirs = []
        for index in range(1, 5):
            out = tmp_path / f"shard{index}"
            assert (
                main(
                    [
                        "sweep",
                        "--spec",
                        spec,
                        "--shard",
                        f"{index}/4",
                        "--out",
                        str(out),
                    ]
                )
                == 0
            )
            shard_dirs.append(str(out))
        assert "[shard 4/4:" in capsys.readouterr().out

        # Kill-and-resume one shard: truncate its cell store, resume.
        cells = tmp_path / "shard2" / "cells.jsonl"
        lines = cells.read_text().splitlines(True)
        partial = tmp_path / "partial"
        partial.mkdir()
        (partial / "cells.jsonl").write_text("".join(lines[:1]))
        resumed = tmp_path / "shard2-resumed"
        assert (
            main(
                [
                    "sweep",
                    "--spec",
                    spec,
                    "--shard",
                    "2/4",
                    "--resume",
                    str(partial),
                    "--out",
                    str(resumed),
                ]
            )
            == 0
        )
        assert "1 reused" in capsys.readouterr().out
        for kind in ("results.csv", "summary.csv", "sweep.json"):
            assert self._read(resumed, kind) == self._read(
                tmp_path / "shard2", kind
            )
        shard_dirs[1] = str(resumed)

        # Merge the shards; artifacts must equal the serial run's.
        assert (
            main(
                [
                    "sweep-merge",
                    *shard_dirs,
                    "--out",
                    str(tmp_path / "merged"),
                    "--name",
                    "cli-grid",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "6 cells from 4 artifact dir(s)" in out
        for kind in ("results.csv", "summary.csv", "sweep.json"):
            assert self._read(tmp_path / "merged", kind) == self._read(
                tmp_path / "serial", kind
            )

    def test_empty_shard_succeeds(self, capsys, tmp_path):
        import json

        spec = tmp_path / "grid.json"
        spec.write_text(json.dumps({"axes": {"seed": [0, 1]}}))
        out = tmp_path / "empty"
        assert (
            main(
                [
                    "sweep",
                    "--spec",
                    str(spec),
                    "--shard",
                    "3/3",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert "0 scenarios" in capsys.readouterr().out
        assert (out / "cells.jsonl").exists()
        assert (out / "results.csv").read_text().startswith("cell_key,")

    def test_merge_rejects_non_artifact_dir(self, capsys, tmp_path):
        bogus = tmp_path / "bogus"
        bogus.mkdir()
        assert (
            main(
                ["sweep-merge", str(bogus), "--out", str(tmp_path / "m")]
            )
            == 2
        )
        assert "cells.jsonl" in capsys.readouterr().err

    def test_merge_rejects_conflicting_cells(self, capsys, tmp_path):
        import json

        spec = self._spec_file(tmp_path)
        for name in ("a", "b"):
            assert (
                main(
                    ["sweep", "--spec", spec, "--out", str(tmp_path / name)]
                )
                == 0
            )
        # Corrupt one copy's payload (keep the spec, change a metric).
        cells = tmp_path / "b" / "cells.jsonl"
        records = [
            json.loads(line) for line in cells.read_text().splitlines()
        ]
        records[0]["values"]["overpayment_ratio"] += 1.0
        cells.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "sweep-merge",
                    str(tmp_path / "a"),
                    str(tmp_path / "b"),
                    "--out",
                    str(tmp_path / "m"),
                ]
            )
            == 2
        )
        assert "conflicting results" in capsys.readouterr().err

    def test_merge_custom_group_by(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        assert (
            main(["sweep", "--spec", spec, "--out", str(tmp_path / "a")])
            == 0
        )
        assert (
            main(
                [
                    "sweep-merge",
                    str(tmp_path / "a"),
                    "--out",
                    str(tmp_path / "m"),
                    "--group-by",
                    "topology,seed",
                    "--metric",
                    "total_payment",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Per-cell total_payment" in out
        assert "seed=0" in out
