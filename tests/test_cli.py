"""Tests for the command-line interface."""

import pytest

from repro.cli import main, resolve_graph
from repro.errors import ReproError


class TestResolveGraph:
    def test_figure1(self):
        graph = resolve_graph("figure1")
        assert set(graph.nodes) == {"A", "B", "C", "D", "X", "Z"}

    def test_random_spec(self):
        graph = resolve_graph("random:5:3")
        assert len(graph) == 5
        assert graph.is_biconnected()

    def test_random_spec_deterministic(self):
        assert resolve_graph("random:5:3").edges == resolve_graph(
            "random:5:3"
        ).edges

    def test_bad_specs(self):
        with pytest.raises(ReproError):
            resolve_graph("mystery")
        with pytest.raises(ReproError):
            resolve_graph("random:5")


class TestCommands:
    def test_lcp_command(self, capsys):
        assert main(["lcp", "--graph", "figure1", "--source", "Z"]) == 0
        out = capsys.readouterr().out
        assert "Lowest-cost paths from Z" in out
        assert "Z-C-D-X" in out

    def test_lcp_unknown_source(self, capsys):
        assert main(["lcp", "--source", "ghost"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_faithful(self, capsys):
        assert main(["run", "--graph", "random:4:1"]) == 0
        out = capsys.readouterr().out
        assert "certified:  True" in out
        assert "flags:      0" in out

    def test_run_plain(self, capsys):
        assert main(["run", "--graph", "random:4:1", "--plain"]) == 0
        out = capsys.readouterr().out
        assert "plain FPSS" in out

    def test_deviate_command(self, capsys):
        assert (
            main(
                [
                    "deviate",
                    "payment-underreport",
                    "C",
                    "--graph",
                    "figure1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "payment-underreport by C" in out
        assert "plain" in out and "faithful" in out

    def test_deviate_unknown_deviation(self, capsys):
        assert main(["deviate", "mind-control", "C"]) == 2
        assert "unknown deviation" in capsys.readouterr().err

    def test_deviate_unknown_node(self, capsys):
        assert main(["deviate", "cost-lie", "ghost"]) == 2

    def test_catalogue_command(self, capsys):
        assert main(["catalogue"]) == 0
        out = capsys.readouterr().out
        assert "copy-drop" in out
        assert "message-passing" in out
        assert "execution" in out
