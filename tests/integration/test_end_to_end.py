"""End-to-end scenarios crossing every library layer."""

import random

import pytest

from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    PlainFPSSProtocol,
    FlagKind,
    faithful_deviant_factory,
)
from repro.routing import figure1_graph, lowest_cost_path
from repro.workloads import (
    hotspot,
    random_pairs,
    uniform_all_pairs,
    wheel_graph,
)


class TestTrafficShapes:
    """The protocol handles non-uniform workloads."""

    def test_hotspot_traffic(self, fig1):
        result = FaithfulFPSSProtocol(fig1, hotspot(fig1, "Z", 2.0)).run()
        assert result.progressed
        assert not result.detection.detected_any
        # Only flows toward Z exist: Z pays nothing, earns nothing as
        # a destination.
        assert result.charged["Z"] == 0.0

    def test_random_pairs_traffic(self, fig1, rng):
        traffic = random_pairs(fig1, rng, flow_count=8)
        result = FaithfulFPSSProtocol(fig1, traffic).run()
        assert result.progressed
        assert sum(result.charged.values()) == pytest.approx(
            sum(result.received.values())
        )

    def test_empty_traffic(self, fig1):
        result = FaithfulFPSSProtocol(fig1, {}).run()
        assert result.progressed
        assert all(u == 0.0 for u in result.utilities.values())


class TestMultiplePhaseRestarts:
    def test_restart_budget_exhaustion_counts(self, fig1, fig1_traffic):
        spec = DEVIATION_CATALOGUE["false-route-announce"]
        protocol = FaithfulFPSSProtocol(
            fig1,
            fig1_traffic,
            node_factory=faithful_deviant_factory(spec, "C"),
            max_restarts=3,
        )
        result = protocol.run()
        assert not result.progressed
        # Initial attempt + 3 restarts, all detected at BANK1.
        assert result.detection.restarts == 4

    def test_zero_restart_budget(self, fig1, fig1_traffic):
        spec = DEVIATION_CATALOGUE["pricing-digest-lie"]
        protocol = FaithfulFPSSProtocol(
            fig1,
            fig1_traffic,
            node_factory=faithful_deviant_factory(spec, "D"),
            max_restarts=0,
        )
        result = protocol.run()
        assert not result.progressed
        assert result.detection.restarts == 1


class TestFlagForensics:
    """The right flag kinds surface for the right manipulations."""

    def run_with(self, name, target="C"):
        graph = figure1_graph()
        spec = DEVIATION_CATALOGUE[name]
        return FaithfulFPSSProtocol(
            graph,
            uniform_all_pairs(graph),
            node_factory=faithful_deviant_factory(spec, target),
        ).run()

    def test_false_announce_yields_broadcast_mismatch(self):
        result = self.run_with("false-route-announce")
        kinds = {f.kind for f in result.detection.all_flags}
        assert FlagKind.BROADCAST_MISMATCH in kinds

    def test_suppression_yields_suppressed_update(self):
        result = self.run_with("route-suppress")
        kinds = {f.kind for f in result.detection.all_flags}
        assert FlagKind.SUPPRESSED_UPDATE in kinds

    def test_copy_drop_yields_copy_missing(self):
        result = self.run_with("copy-drop")
        kinds = {f.kind for f in result.detection.all_flags}
        assert FlagKind.COPY_MISSING in kinds

    def test_copy_alter_yields_forgery(self):
        result = self.run_with("copy-alter")
        kinds = {f.kind for f in result.detection.all_flags}
        assert FlagKind.COPY_FORGERY in kinds

    def test_underreport_yields_payment_flag(self):
        result = self.run_with("payment-underreport")
        kinds = {f.kind for f in result.detection.all_flags}
        assert FlagKind.PAYMENT_UNDERREPORT in kinds

    def test_packet_drop_yields_drop_flag(self):
        result = self.run_with("packet-drop")
        kinds = {f.kind for f in result.detection.all_flags}
        assert FlagKind.PACKET_DROP in kinds

    def test_misroute_yields_misroute_flag(self):
        result = self.run_with("misroute", target="X")
        kinds = {f.kind for f in result.detection.all_flags}
        assert FlagKind.MISROUTE in kinds


class TestLargerTopology:
    def test_wheel_with_deviant_rim_node(self):
        """A rim node shades its announced path costs and is caught.

        (The hub would be a no-op deviant here: all its routes are
        zero-cost direct edges, so cost shading changes nothing — an
        unfired deviation is correctly left unflagged.)
        """
        graph = wheel_graph(6, random.Random(4))
        traffic = uniform_all_pairs(graph)
        spec = DEVIATION_CATALOGUE["false-route-announce"]
        result = FaithfulFPSSProtocol(
            graph,
            traffic,
            node_factory=faithful_deviant_factory(spec, "n01"),
        ).run()
        assert result.detection.detected_any

    def test_wheel_hub_shading_is_a_noop(self):
        """Hub routes are all direct (cost 0): shading never fires,
        nothing is flagged, and the run certifies normally."""
        graph = wheel_graph(6, random.Random(4))
        traffic = uniform_all_pairs(graph)
        spec = DEVIATION_CATALOGUE["false-route-announce"]
        result = FaithfulFPSSProtocol(
            graph,
            traffic,
            node_factory=faithful_deviant_factory(spec, "n00"),
        ).run()
        assert result.progressed
        assert not result.detection.detected_any

    def test_wheel_baseline_routes_match_oracle_costs(self):
        graph = wheel_graph(6, random.Random(4))
        traffic = uniform_all_pairs(graph)
        result = FaithfulFPSSProtocol(graph, traffic).run()
        plain = PlainFPSSProtocol(graph, traffic).run()
        assert result.progressed
        for node in graph.nodes:
            assert result.utilities[node] == pytest.approx(
                plain.utilities[node]
            )


class TestPacketPathIntegrity:
    def test_flows_traverse_the_lcp(self, fig1):
        """Trace-level check: X->Z packets visit exactly X-D-C-Z."""
        protocol = FaithfulFPSSProtocol(
            fig1, {("X", "Z"): 1.0}, trace_enabled=True
        )
        result = protocol.run()
        assert result.progressed
        oracle = lowest_cost_path(fig1, "X", "Z")
        # D and C each incurred exactly their cost once.
        assert result.incurred["D"] == pytest.approx(fig1.cost("D"))
        assert result.incurred["C"] == pytest.approx(fig1.cost("C"))
        assert result.incurred["A"] == 0.0
        assert oracle.path == ("X", "D", "C", "Z")
