"""Asynchrony: heterogeneous link delays.

The faithful extension's replay argument relies only on *per-link*
FIFO ordering ([PRINC1]/[PRINC2] forward copies before recomputing, so
on each principal->checker link the copy precedes any broadcast it
triggered).  It must therefore survive arbitrary fixed per-link delays:
no false positives on obedient runs, full detection of deviants, and
the same converged tables.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    PlainFPSSProtocol,
    faithful_deviant_factory,
)
from repro.routing import figure1_graph
from repro.workloads import (
    random_biconnected_graph,
    uniform_all_pairs,
)


def random_delays(seed):
    rng = random.Random(seed)
    cache = {}

    def delay(a, b):
        key = frozenset((a, b))
        if key not in cache:
            cache[key] = rng.uniform(0.3, 4.0)
        return cache[key]

    return delay


class TestAsynchronousBaseline:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_no_false_positives_under_random_delays(self, seed):
        """Property: the obedient baseline certifies cleanly for any
        assignment of per-link delays."""
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 6), rng)
        result = FaithfulFPSSProtocol(
            graph,
            uniform_all_pairs(graph),
            link_delays=random_delays(seed + 1),
        ).run()
        assert result.progressed
        assert not result.detection.detected_any
        assert result.detection.all_flags == []

    def test_same_utilities_as_synchronous(self, fig1, fig1_traffic):
        """The converged fixed point (and hence the settled economics)
        is delay-independent on obedient runs."""
        synchronous = FaithfulFPSSProtocol(fig1, fig1_traffic).run()
        asynchronous = FaithfulFPSSProtocol(
            fig1, fig1_traffic, link_delays=random_delays(42)
        ).run()
        for node in fig1.nodes:
            assert asynchronous.utilities[node] == pytest.approx(
                synchronous.utilities[node]
            )

    def test_plain_protocol_also_converges(self, fig1, fig1_traffic):
        result = PlainFPSSProtocol(
            fig1, fig1_traffic, link_delays=random_delays(7)
        ).run()
        assert result.progressed


class TestAsynchronousDetection:
    @pytest.mark.parametrize(
        "name",
        ["false-route-announce", "copy-alter", "payment-underreport"],
    )
    def test_deviations_still_caught(self, name, fig1, fig1_traffic):
        spec = DEVIATION_CATALOGUE[name]
        result = FaithfulFPSSProtocol(
            fig1,
            fig1_traffic,
            node_factory=faithful_deviant_factory(spec, "C"),
            link_delays=random_delays(3),
        ).run()
        assert result.detection.detected_any

    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_detection_property_random_delays(self, seed):
        rng = random.Random(seed)
        graph = random_biconnected_graph(4, rng)
        deviator = rng.choice(list(graph.nodes))
        spec = DEVIATION_CATALOGUE["copy-drop"]
        result = FaithfulFPSSProtocol(
            graph,
            uniform_all_pairs(graph),
            node_factory=faithful_deviant_factory(spec, deviator),
            link_delays=random_delays(seed),
        ).run()
        assert result.detection.detected_any
