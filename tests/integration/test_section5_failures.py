"""Section 5: other failure models interacting with faithfulness.

"Simply introducing other failures, such as general omissions or even
failstop, may cause the system to falsely detect and punish
manipulation.  Further work needs to explore how other failure models
affect faithfulness in systems with the rational-manipulation failure
model."

These tests make that discussion executable: an *obedient* node whose
channel suffers omission or failstop faults is flagged by the same
machinery that catches rational deviants — the false-punish phenomenon
the paper anticipates.
"""

import random

import pytest

from repro.faithful import FaithfulFPSSProtocol
from repro.routing import figure1_graph
from repro.sim import FailstopAdapter, OmissionAdapter
from repro.workloads import uniform_all_pairs


def omission_on(target, prob, seed=0):
    """A node_adapters hook installing send omissions on one node."""

    def install(node):
        if node.node_id == target:
            OmissionAdapter(
                node, random.Random(seed), send_drop_prob=prob
            )

    return install


def failstop_on(target, fail_time):
    def install(node):
        if node.node_id == target:
            FailstopAdapter(node, fail_time=fail_time)

    return install


class TestOmissionFalsePunish:
    def test_lossy_obedient_node_is_falsely_detected(self, fig1, fig1_traffic):
        """An obedient node with a lossy channel looks like a deviant:
        dropped copies/updates break the replay agreement."""
        result = FaithfulFPSSProtocol(
            fig1,
            fig1_traffic,
            node_adapters=omission_on("C", prob=0.3, seed=5),
        ).run()
        assert result.detection.detected_any

    def test_false_punish_harms_everyone(self, fig1, fig1_traffic):
        """Persistent omissions exhaust the restart budget: the whole
        network is punished with non-progress although nobody was
        rational — exactly the interaction Section 5 warns about."""
        result = FaithfulFPSSProtocol(
            fig1,
            fig1_traffic,
            node_adapters=omission_on("C", prob=0.5, seed=5),
        ).run()
        assert not result.progressed
        assert all(u < 0 for u in result.utilities.values())

    def test_lossless_adapter_is_harmless(self, fig1, fig1_traffic):
        """Sanity: a zero-probability omission adapter changes nothing."""
        result = FaithfulFPSSProtocol(
            fig1,
            fig1_traffic,
            node_adapters=omission_on("C", prob=0.0),
        ).run()
        assert result.progressed
        assert not result.detection.detected_any


class TestFailstopInteraction:
    def test_failstop_during_construction_detected(self, fig1, fig1_traffic):
        """A node halting mid-construction starves its checkers and is
        flagged (missing reports / digest divergence)."""
        result = FaithfulFPSSProtocol(
            fig1,
            fig1_traffic,
            node_adapters=failstop_on("D", fail_time=3.0),
        ).run()
        assert result.detection.detected_any
        assert not result.progressed

    def test_failstop_before_start_blocks_phase1(self, fig1, fig1_traffic):
        result = FaithfulFPSSProtocol(
            fig1,
            fig1_traffic,
            node_adapters=failstop_on("D", fail_time=0.0),
        ).run()
        assert not result.progressed
        # Phase 1 itself cannot certify: D's declaration never floods.
        first = result.detection.checkpoint_decisions[0]
        assert first.checkpoint == "phase1"
        assert not first.green_light
