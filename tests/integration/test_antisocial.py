"""Section 5: antisocial objectives escape the faithfulness guarantee.

"Certain nodes may make worsening the outcome of other nodes the main
goal besides maximizing their own utility.  In the real world,
companies are willing to take a short-term loss to drive competitors
out of business."

The faithful specification makes every catalogued deviation *selfishly*
losing (Theorem 1), but a spiteful objective u_i - spite * sum(u_-i)
can still rate network-torching deviations positively: catch-and-punish
deters the rational, not the vindictive.
"""

import pytest

from repro.analysis import faithful_deviation_table
from repro.routing import figure1_graph
from repro.workloads import uniform_all_pairs

GRAPH = figure1_graph()
TRAFFIC = uniform_all_pairs(GRAPH)


@pytest.fixture(scope="module")
def table():
    return faithful_deviation_table(
        GRAPH,
        TRAFFIC,
        nodes=("C",),
        deviations=("false-route-announce", "payment-underreport", "cost-lie"),
    )


class TestSelfishVsAntisocial:
    def test_selfish_gains_all_non_positive(self, table):
        """Theorem 1's guarantee: rational nodes have nothing to gain."""
        assert table.is_faithful()

    def test_construction_torching_attracts_the_spiteful(self, table):
        """Forcing non-progress costs the deviator ~750 but costs the
        other five nodes ~1000 each: spite=1 rates it positive."""
        outcome = next(
            o for o in table.outcomes if o.deviation == "false-route-announce"
        )
        assert outcome.gain < 0  # selfishly terrible
        assert outcome.others_gain < 0  # everyone else suffers more
        assert outcome.antisocial_gain(spite=1.0) > 0  # spite pays

    def test_mild_spite_is_still_deterred(self, table):
        """With a small spite coefficient the penalties still dominate:
        the guarantee degrades gradually, not at spite=0+."""
        outcome = next(
            o for o in table.outcomes if o.deviation == "payment-underreport"
        )
        # Settlement-phase fraud hurts the deviator (~-15.5) while
        # barely touching others; even spite=0.5 cannot make it pay.
        assert outcome.antisocial_gain(spite=0.5) < 0

    def test_welfare_accounting_consistent(self, table):
        for outcome in table.outcomes:
            reconstructed = outcome.gain + outcome.others_gain
            assert reconstructed == pytest.approx(
                outcome.deviant_total - outcome.baseline_total
            )
