"""Property tests on settlement arithmetic across deviation runs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    faithful_deviant_factory,
)
from repro.workloads import random_biconnected_graph, uniform_all_pairs

EXECUTION_DEVIATIONS = (
    "charge-understate",
    "payment-underreport",
    "packet-drop",
    "misroute",
    "transit-misroute",
)


class TestSettlementInvariants:
    @settings(max_examples=5, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(EXECUTION_DEVIATIONS),
    )
    def test_invariants_hold_under_any_execution_deviation(
        self, seed, deviation
    ):
        """For every execution-phase deviation run:

        * innocent nodes never pay penalties;
        * enforced charges never exceed received payments plus the
          deviator's penalties (money is not created);
        * every node's utility decomposes exactly into the four
          settlement components.
        """
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 6), rng)
        deviator = rng.choice(list(graph.nodes))
        result = FaithfulFPSSProtocol(
            graph,
            uniform_all_pairs(graph),
            node_factory=faithful_deviant_factory(
                DEVIATION_CATALOGUE[deviation], deviator
            ),
        ).run()
        assert result.progressed  # execution frauds pass construction

        for node in graph.nodes:
            if node != deviator:
                assert result.penalties[node] == 0.0
            assert result.utilities[node] == pytest.approx(
                result.received[node]
                - result.charged[node]
                - result.penalties[node]
                - result.incurred[node]
            )

        total_charged = sum(result.charged.values())
        total_received = sum(result.received.values())
        total_penalties = sum(result.penalties.values())
        # Charges fund transit payments; reimbursements to innocent
        # off-path carriers are funded from the deviator's penalties.
        assert total_received <= total_charged + total_penalties + 1e-6

    def test_faithful_baseline_is_exactly_balanced(self):
        rng = random.Random(3)
        graph = random_biconnected_graph(5, rng)
        result = FaithfulFPSSProtocol(graph, uniform_all_pairs(graph)).run()
        assert sum(result.received.values()) == pytest.approx(
            sum(result.charged.values())
        )
        assert sum(result.penalties.values()) == 0.0
