"""Integration: Theorem 1 on the full stack.

"The extended FPSS specification is a faithful implementation of the
VCG-based shortest-path interdomain routing mechanism."  These tests
exercise the complete pipeline — simulator, distributed protocol,
checkers, bank, settlement, deviation explorer — on the paper's own
network and on random biconnected graphs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    faithful_deviation_table,
    plain_deviation_table,
    routing_distributed_mechanism,
)
from repro.faithful import DEVIATION_CATALOGUE
from repro.mechanism import (
    TypeProfile,
    audit_strategyproofness,
    TypeSpace,
    proposition2_verdict,
)
from repro.routing import figure1_graph
from repro.workloads import random_biconnected_graph, uniform_all_pairs

#: A fast but representative deviation subset for sweep tests.
FAST_DEVIATIONS = (
    "cost-lie",
    "false-route-announce",
    "copy-alter",
    "payment-underreport",
    "packet-drop",
)


@pytest.mark.slow
class TestTheorem1OnFigure1:
    """Full deviation grid on Figure 1 (~25s): slow tier.

    The random-graph faithfulness property below keeps Theorem-1
    coverage in the tier-1 suite.
    """

    @pytest.fixture(scope="class")
    def table(self):
        graph = figure1_graph()
        return faithful_deviation_table(graph, uniform_all_pairs(graph))

    def test_no_deviation_profits(self, table):
        assert table.is_faithful()
        assert table.max_gain <= 1e-9

    def test_every_detectable_deviation_detected(self, table):
        assert table.detection_rate(excluding=("cost-lie",)) == 1.0

    def test_full_grid_was_explored(self, table):
        graph = figure1_graph()
        assert len(table.outcomes) == len(graph.nodes) * len(
            DEVIATION_CATALOGUE
        )


class TestPlainCounterpart:
    def test_plain_fpss_is_not_faithful(self):
        graph = figure1_graph()
        table = plain_deviation_table(
            graph,
            uniform_all_pairs(graph),
            nodes=("C", "D"),
            deviations=(
                "false-route-announce",
                "charge-understate",
                "payment-underreport",
                "packet-drop",
            ),
        )
        assert not table.is_faithful()
        names = {o.deviation for o in table.profitable}
        assert "payment-underreport" in names


class TestTheorem1OnRandomGraphs:
    @settings(max_examples=3, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000))
    def test_faithfulness_property(self, seed):
        """Property: on random biconnected graphs, a random node
        running any fast-catalogue deviation never profits against the
        faithful specification."""
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 6), rng)
        deviator = rng.choice(list(graph.nodes))
        table = faithful_deviation_table(
            graph,
            uniform_all_pairs(graph),
            nodes=[deviator],
            deviations=FAST_DEVIATIONS,
        )
        assert table.is_faithful()
        assert table.detection_rate(excluding=("cost-lie",)) == 1.0


class TestProposition2Pipeline:
    """The full Proposition-2 argument, executed end to end."""

    def test_verdict_faithful(self):
        rng = random.Random(5)
        graph = random_biconnected_graph(4, rng)
        traffic = uniform_all_pairs(graph)
        dm = routing_distributed_mechanism(
            graph, traffic, deviations=FAST_DEVIATIONS
        )

        # Premise 1: the corresponding centralized mechanism (VCG
        # transit pricing) is strategyproof; audited over cost
        # perturbations of this very graph.
        from repro.mechanism import (
            DirectRevelationMechanism,
            Outcome,
            UtilityFunction,
        )
        from repro.routing import economics_under_traffic

        spaces = {
            node: TypeSpace(
                values=(graph.cost(node), graph.cost(node) * 2.0)
            )
            for node in graph.nodes
        }

        def outcome_rule(reports):
            declared = graph.with_costs(
                {n: reports.type_of(n) for n in reports.agents}
            )
            economics = economics_under_traffic(
                declared, declared, traffic, payment_rule="vcg"
            )
            # Transfers carry the money flows; the *volume transited*
            # (recoverable as true_transit_cost / declared cost) rides
            # in the decision so the valuation can charge each agent
            # its TRUE cost for the traffic the reports routed over it.
            volumes = {
                n: (
                    economics[n].true_transit_cost / declared.cost(n)
                    if declared.cost(n) > 0
                    else 0.0
                )
                for n in graph.nodes
            }
            return Outcome(
                decision=volumes,
                transfers={
                    n: economics[n].received - economics[n].paid
                    for n in graph.nodes
                },
            )

        def valuation(agent, decision, true_type):
            return -float(true_type) * decision[agent]

        center = DirectRevelationMechanism(
            outcome_rule, spaces, UtilityFunction(valuation), name="fpss-center"
        )
        sp_report = audit_strategyproofness(center)

        # Premises 2-3 + conclusion, via the generic verifier.
        types = [TypeProfile({n: graph.cost(n) for n in graph.nodes})]
        verdict = proposition2_verdict(dm, types, sp_report)
        assert verdict.faithful, verdict.reasons
