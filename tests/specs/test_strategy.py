"""Tests for strategies and the (r, p, c) decomposition (Section 3.3)."""

import pytest

from repro.errors import SpecificationError
from repro.specs import (
    ActionClass,
    DecomposedStrategy,
    Specification,
    StateMachine,
    Strategy,
    SubStrategyProjection,
    Transition,
    computation,
    message_passing,
    revelation,
    tabular_strategy,
)


@pytest.fixture
def machine():
    return StateMachine(
        states=["s0", "s1", "s2"],
        initial_states=["s0"],
        transitions=[
            Transition("s0", revelation("report-high"), "s1"),
            Transition("s0", revelation("report-low"), "s1"),
            Transition("s1", message_passing("forward"), "s2"),
            Transition("s1", message_passing("drop"), "s2"),
            Transition("s1", computation("corrupt"), "s2"),
        ],
    )


def spec_for(machine, s0_action, s1_action, name):
    actions = {a.name: a for a in machine.actions}
    return Specification(
        machine, {"s0": actions[s0_action], "s1": actions[s1_action]}, name=name
    )


@pytest.fixture
def suggested_strategy(machine):
    truthful = spec_for(machine, "report-high", "forward", "truthful-high")
    low = spec_for(machine, "report-low", "forward", "truthful-low")
    return tabular_strategy({"high": truthful, "low": low}, name="suggested")


class TestStrategy:
    def test_tabular_selects_by_type(self, suggested_strategy):
        assert suggested_strategy("high").name == "truthful-high"
        assert suggested_strategy("low").name == "truthful-low"

    def test_missing_type_raises(self, suggested_strategy):
        with pytest.raises(SpecificationError, match="no specification"):
            suggested_strategy("medium")

    def test_behavior_runs_selected_spec(self, suggested_strategy):
        behavior = suggested_strategy.behavior("high")
        assert [a.name for a in behavior.actions] == ["report-high", "forward"]

    def test_callable_wrapper(self, machine):
        spec = spec_for(machine, "report-high", "forward", "s")
        strategy = Strategy(lambda t: spec, name="const")
        assert strategy(42) is spec


class TestProjection:
    def test_projection_extracts_class_actions(self, suggested_strategy):
        behavior = suggested_strategy.behavior("high")
        projection = SubStrategyProjection(ActionClass.MESSAGE_PASSING)
        actions = projection.project(behavior)
        assert [a.name for _, a in actions] == ["forward"]

    def test_agreement_is_positional(self, machine):
        one = spec_for(machine, "report-high", "forward", "a").run()
        two = spec_for(machine, "report-low", "forward", "b").run()
        projection = SubStrategyProjection(ActionClass.MESSAGE_PASSING)
        assert projection.agrees(one, two)


class TestDecomposedStrategy:
    def test_pure_revelation_deviation(self, machine, suggested_strategy):
        decomposed = DecomposedStrategy(suggested_strategy)
        liar = tabular_strategy(
            {
                "high": spec_for(machine, "report-low", "forward", "lie"),
                "low": spec_for(machine, "report-low", "forward", "same"),
            },
            name="liar",
        )
        profile = decomposed.deviation_profile("high", liar)
        assert profile[ActionClass.INFORMATION_REVELATION]
        assert not profile[ActionClass.MESSAGE_PASSING]
        assert not profile[ActionClass.COMPUTATION]
        assert decomposed.is_pure_deviation(
            "high", liar, ActionClass.INFORMATION_REVELATION
        )

    def test_joint_deviation_not_pure(self, machine, suggested_strategy):
        decomposed = DecomposedStrategy(suggested_strategy)
        joint = tabular_strategy(
            {
                "high": spec_for(machine, "report-low", "drop", "joint"),
                "low": spec_for(machine, "report-low", "forward", "same"),
            },
            name="joint",
        )
        profile = decomposed.deviation_profile("high", joint)
        assert profile[ActionClass.INFORMATION_REVELATION]
        assert profile[ActionClass.MESSAGE_PASSING]
        assert not decomposed.is_pure_deviation(
            "high", joint, ActionClass.MESSAGE_PASSING
        )

    def test_computation_substitution_detected(self, machine, suggested_strategy):
        decomposed = DecomposedStrategy(suggested_strategy)
        corruptor = tabular_strategy(
            {
                "high": spec_for(machine, "report-high", "corrupt", "c"),
                "low": spec_for(machine, "report-low", "forward", "same"),
            },
            name="corruptor",
        )
        profile = decomposed.deviation_profile("high", corruptor)
        # Replacing forward (MP) with corrupt (COMP) changes both
        # projections: one loses an action, the other gains one.
        assert profile[ActionClass.MESSAGE_PASSING]
        assert profile[ActionClass.COMPUTATION]

    def test_pure_deviation_requires_external_class(
        self, machine, suggested_strategy
    ):
        decomposed = DecomposedStrategy(suggested_strategy)
        with pytest.raises(SpecificationError, match="not an external"):
            decomposed.is_pure_deviation(
                "high", suggested_strategy, ActionClass.INTERNAL
            )
