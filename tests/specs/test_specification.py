"""Tests for specifications and deviation enumeration."""

import pytest

from repro.errors import SpecificationError
from repro.specs import (
    ActionClass,
    Specification,
    StateMachine,
    Transition,
    computation,
    enumerate_deviations,
    internal,
    message_passing,
    revelation,
)


@pytest.fixture
def machine():
    """Two decision points with classified alternatives."""
    return StateMachine(
        states=["s0", "s1", "s2"],
        initial_states=["s0"],
        transitions=[
            Transition("s0", revelation("tell-truth"), "s1"),
            Transition("s0", revelation("tell-lie"), "s1"),
            Transition("s1", computation("compute-honest"), "s2"),
            Transition("s1", computation("compute-corrupt"), "s2"),
            Transition("s1", message_passing("just-forward"), "s2"),
        ],
    )


@pytest.fixture
def suggested(machine):
    actions = {a.name: a for a in machine.actions}
    return Specification(
        machine,
        {"s0": actions["tell-truth"], "s1": actions["compute-honest"]},
        name="suggested",
    )


class TestSpecification:
    def test_runs_to_terminal(self, suggested):
        behavior = suggested.run()
        assert behavior.final_state == "s2"
        assert [a.name for a in behavior.actions] == [
            "tell-truth",
            "compute-honest",
        ]

    def test_rejects_disabled_choice(self, machine):
        actions = {a.name: a for a in machine.actions}
        with pytest.raises(SpecificationError, match="not enabled"):
            Specification(machine, {"s0": actions["compute-honest"]})

    def test_rejects_missing_choice_for_reachable_state(self, machine):
        actions = {a.name: a for a in machine.actions}
        with pytest.raises(SpecificationError, match="no chosen action"):
            Specification(machine, {"s0": actions["tell-truth"]})

    def test_rejects_unknown_state(self, machine, suggested):
        actions = {a.name: a for a in machine.actions}
        with pytest.raises(SpecificationError, match="unknown state"):
            Specification(
                machine,
                {
                    "s0": actions["tell-truth"],
                    "s1": actions["compute-honest"],
                    "ghost": actions["tell-lie"],
                },
            )

    def test_nonhalting_specification_detected(self):
        loop = internal("loop")
        machine = StateMachine(
            states=["a"], initial_states=["a"], transitions=[Transition("a", loop, "a")]
        )
        spec = Specification(machine, {"a": loop})
        with pytest.raises(SpecificationError, match="exceeded"):
            spec.run(max_steps=10)

    def test_run_requires_unique_initial(self):
        act = internal("x")
        machine = StateMachine(
            states=["a", "b"],
            initial_states=["a", "b"],
            transitions=[Transition("a", act, "b")],
        )
        spec = Specification(machine, {"a": act})
        with pytest.raises(SpecificationError, match="several initial"):
            spec.run()
        assert spec.run(initial="b").length == 0


class TestDeviations:
    def test_deviate_and_deviation_states(self, machine, suggested):
        actions = {a.name: a for a in machine.actions}
        deviant = suggested.deviate({"s0": actions["tell-lie"]})
        assert suggested.deviation_states(deviant) == frozenset({"s0"})

    def test_deviation_classes(self, machine, suggested):
        actions = {a.name: a for a in machine.actions}
        deviant = suggested.deviate(
            {"s0": actions["tell-lie"], "s1": actions["compute-corrupt"]}
        )
        assert suggested.deviation_classes(deviant) == frozenset(
            {ActionClass.INFORMATION_REVELATION, ActionClass.COMPUTATION}
        )

    def test_cross_machine_comparison_rejected(self, machine, suggested):
        other_machine = StateMachine(
            states=["x"], initial_states=["x"], transitions=[]
        )
        other = Specification(other_machine, {})
        with pytest.raises(SpecificationError, match="different machines"):
            suggested.deviation_states(other)

    def test_restricted_to_predicate(self, machine, suggested):
        actions = {a.name: a for a in machine.actions}
        only_revelation = suggested.restricted_to(
            [ActionClass.INFORMATION_REVELATION]
        )
        lie = suggested.deviate({"s0": actions["tell-lie"]})
        corrupt = suggested.deviate({"s1": actions["compute-corrupt"]})
        assert only_revelation(lie)
        assert not only_revelation(corrupt)


class TestEnumerateDeviations:
    def test_single_state_enumeration(self, suggested):
        deviations = list(enumerate_deviations(suggested, max_overrides=1))
        # s0 has 1 alternative; s1 has 2 alternatives.
        assert len(deviations) == 3

    def test_class_filter(self, suggested):
        mp_only = list(
            enumerate_deviations(
                suggested,
                classes=[ActionClass.MESSAGE_PASSING, ActionClass.COMPUTATION],
                max_overrides=1,
            )
        )
        # Only the two s1 alternatives qualify.
        assert len(mp_only) == 2

    def test_joint_deviations(self, suggested):
        joint = list(enumerate_deviations(suggested, max_overrides=2))
        # 3 singles + 1*2 pairs = 5.
        assert len(joint) == 5

    def test_suggested_not_yielded(self, suggested):
        for deviant in enumerate_deviations(suggested, max_overrides=2):
            assert suggested.deviation_states(deviant)
