"""Tests for phase decomposition with checkpoints (Section 3.9)."""

import pytest

from repro.errors import PhaseError
from repro.specs import (
    CertificationResult,
    Phase,
    PhasedExecution,
)


def green(ctx):
    return CertificationResult.GREEN_LIGHT


class TestPhaseConstruction:
    def test_needs_phases(self):
        with pytest.raises(PhaseError, match="at least one"):
            PhasedExecution([])

    def test_rejects_duplicate_names(self):
        phases = [
            Phase("p", lambda ctx: None),
            Phase("p", lambda ctx: None),
        ]
        with pytest.raises(PhaseError, match="duplicate"):
            PhasedExecution(phases)

    def test_rejects_negative_restarts(self):
        with pytest.raises(PhaseError, match="non-negative"):
            PhasedExecution([Phase("p", lambda ctx: None)], max_restarts_per_phase=-1)


class TestExecution:
    def test_phases_run_in_order_sharing_context(self):
        order = []
        phases = [
            Phase("one", lambda ctx: order.append("one") or ctx.update(a=1)),
            Phase("two", lambda ctx: order.append("two") or ctx.update(b=ctx["a"] + 1)),
        ]
        result = PhasedExecution(phases).run()
        assert result.completed
        assert order == ["one", "two"]
        assert result.context == {"a": 1, "b": 2}

    def test_self_certifying_phase_green_lights(self):
        result = PhasedExecution([Phase("only", lambda ctx: None)]).run()
        assert result.completed
        assert result.records[-1].result is CertificationResult.GREEN_LIGHT

    def test_restart_reruns_phase(self):
        attempts = []

        def body(ctx):
            attempts.append(len(attempts))

        def certify(ctx):
            # Fail the first attempt, pass the second.
            if len(attempts) < 2:
                return CertificationResult.RESTART
            return CertificationResult.GREEN_LIGHT

        result = PhasedExecution(
            [Phase("flaky", body, certify)], max_restarts_per_phase=3
        ).run()
        assert result.completed
        assert len(attempts) == 2
        assert result.restarts == 1
        assert result.attempts("flaky") == 2

    def test_persistent_deviation_halts_without_progress(self):
        phase = Phase(
            "stuck", lambda ctx: None, lambda ctx: CertificationResult.RESTART
        )
        result = PhasedExecution([phase], max_restarts_per_phase=2).run()
        assert not result.completed
        assert result.halted_phase == "stuck"
        # Initial attempt + 2 restarts.
        assert result.attempts("stuck") == 3

    def test_on_restart_hook_invoked(self):
        resets = []
        phase = Phase(
            "p",
            lambda ctx: None,
            lambda ctx: CertificationResult.RESTART,
        )
        PhasedExecution(
            [phase],
            max_restarts_per_phase=1,
            on_restart=lambda ph, ctx: resets.append(ph.name),
        ).run()
        assert resets == ["p"]

    def test_later_phase_never_runs_after_halt(self):
        ran = []
        phases = [
            Phase(
                "first",
                lambda ctx: ran.append("first"),
                lambda ctx: CertificationResult.RESTART,
            ),
            Phase("second", lambda ctx: ran.append("second")),
        ]
        result = PhasedExecution(phases, max_restarts_per_phase=0).run()
        assert not result.completed
        assert "second" not in ran

    def test_halted_phase_none_on_success(self):
        result = PhasedExecution([Phase("p", lambda ctx: None)]).run()
        assert result.halted_phase is None
