"""Tests for the external-action classification (Definitions 2-4)."""

import pytest

from repro.specs import (
    EXTERNAL_ACTION_CLASSES,
    Action,
    ActionClass,
    ActionKind,
    computation,
    internal,
    message_passing,
    revelation,
)


class TestActionClass:
    def test_internal_kind(self):
        assert ActionClass.INTERNAL.kind is ActionKind.INTERNAL

    @pytest.mark.parametrize(
        "cls",
        [
            ActionClass.INFORMATION_REVELATION,
            ActionClass.MESSAGE_PASSING,
            ActionClass.COMPUTATION,
        ],
    )
    def test_external_kinds(self, cls):
        assert cls.kind is ActionKind.EXTERNAL
        assert cls.is_external

    def test_internal_is_not_external(self):
        assert not ActionClass.INTERNAL.is_external

    def test_external_classes_tuple_matches_decomposition_order(self):
        # The (r, p, c) order of the sub-strategy decomposition.
        assert EXTERNAL_ACTION_CLASSES == (
            ActionClass.INFORMATION_REVELATION,
            ActionClass.MESSAGE_PASSING,
            ActionClass.COMPUTATION,
        )


class TestActionConstructors:
    def test_internal_constructor(self):
        action = internal("think")
        assert action.action_class is ActionClass.INTERNAL
        assert not action.is_external

    def test_revelation_constructor(self):
        action = revelation("declare-cost")
        assert action.action_class is ActionClass.INFORMATION_REVELATION
        assert action.is_external

    def test_message_passing_constructor(self):
        action = message_passing("relay")
        assert action.action_class is ActionClass.MESSAGE_PASSING

    def test_computation_constructor(self):
        action = computation("recompute-lcp")
        assert action.action_class is ActionClass.COMPUTATION

    def test_metadata_carried_but_not_compared(self):
        a = computation("update", table="DATA2")
        b = computation("update", table="DATA3")
        assert a.metadata["table"] == "DATA2"
        assert a == b  # metadata excluded from equality

    def test_same_name_different_class_differ(self):
        assert internal("x") != computation("x")

    def test_kind_property_delegates(self):
        assert revelation("r").kind is ActionKind.EXTERNAL
        assert internal("i").kind is ActionKind.INTERNAL

    def test_actions_are_hashable(self):
        assert len({internal("a"), internal("a"), computation("a")}) == 2
