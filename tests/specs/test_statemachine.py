"""Tests for the state-machine model (paper Section 3.1)."""

import pytest

from repro.errors import SpecificationError
from repro.specs import (
    Behavior,
    StateMachine,
    Transition,
    computation,
    internal,
    message_passing,
)


@pytest.fixture
def simple_machine():
    """idle --compute--> ready --send--> done, with a self-loop."""
    compute = internal("compute")
    send = message_passing("send")
    wait = internal("wait")
    return StateMachine(
        states=["idle", "ready", "done"],
        initial_states=["idle"],
        transitions=[
            Transition("idle", compute, "ready"),
            Transition("idle", wait, "idle"),
            Transition("ready", send, "done"),
        ],
    )


class TestConstruction:
    def test_requires_initial_state(self):
        with pytest.raises(SpecificationError, match="initial"):
            StateMachine(states=["a"], initial_states=[], transitions=[])

    def test_initial_must_be_subset(self):
        with pytest.raises(SpecificationError):
            StateMachine(states=["a"], initial_states=["b"], transitions=[])

    def test_transition_source_must_exist(self):
        t = Transition("ghost", internal("x"), "a")
        with pytest.raises(SpecificationError, match="source"):
            StateMachine(states=["a"], initial_states=["a"], transitions=[t])

    def test_transition_target_must_exist(self):
        t = Transition("a", internal("x"), "ghost")
        with pytest.raises(SpecificationError, match="target"):
            StateMachine(states=["a"], initial_states=["a"], transitions=[t])

    def test_alphabet_partitions(self, simple_machine):
        assert len(simple_machine.internal_actions) == 2
        assert len(simple_machine.external_actions) == 1
        assert simple_machine.actions == (
            simple_machine.internal_actions | simple_machine.external_actions
        )


class TestBehaviourQueries:
    def test_enabled_actions(self, simple_machine):
        names = {a.name for a in simple_machine.enabled_actions("idle")}
        assert names == {"compute", "wait"}

    def test_successor(self, simple_machine):
        compute = next(
            a for a in simple_machine.actions if a.name == "compute"
        )
        assert simple_machine.successor("idle", compute) == "ready"

    def test_successor_rejects_disabled_action(self, simple_machine):
        send = next(a for a in simple_machine.actions if a.name == "send")
        with pytest.raises(SpecificationError, match="not enabled"):
            simple_machine.successor("idle", send)

    def test_successor_rejects_nondeterminism(self):
        act = internal("go")
        machine = StateMachine(
            states=["a", "b", "c"],
            initial_states=["a"],
            transitions=[
                Transition("a", act, "b"),
                Transition("a", act, "c"),
            ],
        )
        with pytest.raises(SpecificationError, match="nondeterministic"):
            machine.successor("a", act)

    def test_terminal_state(self, simple_machine):
        assert simple_machine.is_terminal("done")
        assert not simple_machine.is_terminal("idle")

    def test_unknown_state_raises(self, simple_machine):
        with pytest.raises(SpecificationError):
            simple_machine.transitions_from("ghost")

    def test_contains(self, simple_machine):
        assert "idle" in simple_machine
        assert "ghost" not in simple_machine


class TestReachability:
    def test_all_reachable(self, simple_machine):
        assert simple_machine.reachable_states() == frozenset(
            {"idle", "ready", "done"}
        )

    def test_unreachable_detected(self):
        machine = StateMachine(
            states=["a", "b", "orphan"],
            initial_states=["a"],
            transitions=[Transition("a", internal("x"), "b")],
        )
        assert machine.unreachable_states() == frozenset({"orphan"})

    def test_iter_paths_bounded(self, simple_machine):
        paths = list(simple_machine.iter_paths(max_length=2))
        # Includes the empty path and every path of length <= 2.
        assert () in paths
        assert all(len(p) <= 2 for p in paths)
        assert len(paths) > 3


class TestBehavior:
    def test_record_and_final_state(self):
        behavior = Behavior(states=["a"])
        behavior.record(internal("x"), "b")
        assert behavior.length == 1
        assert behavior.final_state == "b"

    def test_empty_behavior_has_no_final_state(self):
        with pytest.raises(SpecificationError):
            Behavior().final_state

    def test_external_trace_filters_internals(self):
        behavior = Behavior(states=["a"])
        behavior.record(internal("think"), "b")
        behavior.record(computation("emit"), "c")
        behavior.record(message_passing("relay"), "d")
        assert [a.name for a in behavior.external_trace()] == ["emit", "relay"]
