"""Tests for the Section 3 leader-election example."""

import random

import pytest

from repro.election import (
    SERVICE_VALUE,
    ElectionNode,
    naive_election_mechanism,
    optimal_leader,
    social_cost,
    vcg_election_mechanism,
)
from repro.errors import MechanismError
from repro.mechanism import (
    TypeProfile,
    TypeSpace,
    audit_strategyproofness,
)
from repro.sim import NetworkTopology, Simulator


@pytest.fixture
def spaces():
    return {
        name: TypeSpace(values=(1.0, 4.0, 7.0)) for name in ("x", "y", "z")
    }


class TestNaiveElection:
    def test_truthful_play_elects_optimum(self, spaces):
        mech = naive_election_mechanism(spaces)
        profile = TypeProfile({"x": 4.0, "y": 1.0, "z": 7.0})
        outcome = mech.outcome(profile)
        assert outcome.decision == "y"
        assert outcome.transfers == {}

    def test_not_strategyproof(self, spaces):
        report = audit_strategyproofness(naive_election_mechanism(spaces))
        assert not report.is_strategyproof
        # The profitable lie is overstating the cost to dodge the chore.
        violation = report.violations[0]
        assert violation.misreport > violation.true_profile.type_of(
            violation.agent
        )

    def test_rational_overstating_degrades_social_cost(self, spaces):
        """When everyone maxes out, the winner is arbitrary and the
        true social cost exceeds the optimum."""
        mech = naive_election_mechanism(spaces)
        truth = TypeProfile({"x": 4.0, "y": 1.0, "z": 7.0})
        rational = TypeProfile({"x": 7.0, "y": 7.0, "z": 7.0})
        elected = mech.outcome(rational).decision
        assert social_cost(truth, elected) >= social_cost(
            truth, optimal_leader(truth)
        )


class TestVcgElection:
    def test_strategyproof(self, spaces):
        report = audit_strategyproofness(vcg_election_mechanism(spaces))
        assert report.is_strategyproof

    def test_winner_paid_second_lowest(self, spaces):
        mech = vcg_election_mechanism(spaces)
        profile = TypeProfile({"x": 4.0, "y": 1.0, "z": 7.0})
        outcome = mech.outcome(profile)
        assert outcome.decision == "y"
        assert outcome.transfer_to("y") == pytest.approx(4.0)

    def test_winner_utility_covers_cost(self, spaces):
        mech = vcg_election_mechanism(spaces)
        profile = TypeProfile({"x": 4.0, "y": 1.0, "z": 7.0})
        assert mech.agent_utility("y", profile, 1.0) == pytest.approx(
            SERVICE_VALUE - 1.0 + 4.0
        )

    def test_truthful_equilibrium_is_efficient(self, spaces):
        mech = vcg_election_mechanism(spaces)
        profile = TypeProfile({"x": 7.0, "y": 4.0, "z": 1.0})
        assert mech.outcome(profile).decision == optimal_leader(profile)

    def test_needs_two_candidates(self):
        mech = vcg_election_mechanism({"only": TypeSpace(values=(1.0,))})
        with pytest.raises(MechanismError, match="two candidates"):
            mech.outcome(TypeProfile({"only": 1.0}))


class TestDistributedElection:
    def build(self, biases):
        """Three nodes in a triangle with given report biases."""
        topo = NetworkTopology.from_edges(
            [("x", "y"), ("y", "z"), ("z", "x")]
        )
        sim = Simulator(topo)
        costs = {"x": 4.0, "y": 1.0, "z": 7.0}
        nodes = {}
        for name, cost in costs.items():
            node = ElectionNode(name, cost, report_bias=biases.get(name, 1.0))
            nodes[name] = node
            sim.add_node(node)
        sim.start()
        sim.run_until_quiescent()
        return nodes

    def test_flooding_reaches_consensus(self):
        nodes = self.build({})
        winners = {n.winner() for n in nodes.values()}
        assert winners == {"y"}

    def test_all_reports_known_everywhere(self):
        nodes = self.build({})
        for node in nodes.values():
            assert set(node.known_reports) == {"x", "y", "z"}

    def test_vcg_payment_agreed(self):
        nodes = self.build({})
        payments = {n.second_lowest_report() for n in nodes.values()}
        assert payments == {4.0}

    def test_rational_overstating_changes_outcome(self):
        # y dodges the chore by quadrupling its report.
        nodes = self.build({"y": 4.0})
        assert nodes["x"].winner() == "x"

    def test_winner_requires_reports(self):
        node = ElectionNode("lonely", 1.0)
        with pytest.raises(MechanismError, match="no reports"):
            node.winner()
