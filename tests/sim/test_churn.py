"""Churn event vocabulary, graph evolution, and seeded schedules.

The dynamic-topology subsystem starts here: events must be validated
at construction, graph evolution must be pure and order-deterministic,
and the seeded generator must keep every intermediate graph viable so
reconvergence is always well-defined.
"""

import random

import pytest

from repro.errors import ReproError, SimulationError
from repro.routing import ASGraph, figure1_graph
from repro.sim.churn import (
    EVENT_KINDS,
    ChurnEvent,
    ChurnSchedule,
    apply_churn_epoch,
    apply_churn_event,
    evolved_graphs,
    random_churn_schedule,
)
from repro.workloads import random_biconnected_graph


class TestEventValidation:
    def test_vocabulary_is_closed(self):
        with pytest.raises(SimulationError):
            ChurnEvent(kind="reboot", node="A")

    def test_cost_event_requires_node_and_cost(self):
        with pytest.raises(SimulationError):
            ChurnEvent(kind="cost", node="A")
        with pytest.raises(SimulationError):
            ChurnEvent(kind="cost", cost=2.0)
        with pytest.raises(SimulationError):
            ChurnEvent(kind="cost", node="A", cost=-1.0)

    @pytest.mark.parametrize("kind", ["link-down", "link-up"])
    def test_link_events_require_a_proper_pair(self, kind):
        with pytest.raises(SimulationError):
            ChurnEvent(kind=kind)
        with pytest.raises(SimulationError):
            ChurnEvent(kind=kind, link=("A", "A"))

    def test_join_links_must_contain_the_joiner(self):
        with pytest.raises(SimulationError):
            ChurnEvent(kind="join", node="Z", cost=1.0, links=(("A", "B"),))
        with pytest.raises(SimulationError):
            ChurnEvent(kind="join", node="Z", cost=1.0, links=())

    def test_describe_is_deterministic(self):
        down = ChurnEvent(kind="link-down", link=("B", "A"))
        # The label sorts the endpoints, so orientation cannot leak.
        assert down.describe() == "link-down:'A'-'B'"
        assert ChurnEvent(kind="cost", node="C", cost=2.5).describe() == (
            "cost:'C'=2.5"
        )


class TestGraphEvolution:
    def test_cost_change_preserves_edges(self):
        graph = figure1_graph()
        evolved = apply_churn_event(
            graph, ChurnEvent(kind="cost", node="C", cost=9.0)
        )
        assert evolved.cost("C") == 9.0
        assert evolved.edges == graph.edges
        assert graph.cost("C") != 9.0  # pure: the input graph is untouched

    def test_link_down_then_up_round_trips_edge_set(self):
        graph = figure1_graph()
        edge = graph.edges[0]
        down = apply_churn_event(graph, ChurnEvent(kind="link-down", link=edge))
        assert not down.has_edge(*edge)
        up = apply_churn_event(down, ChurnEvent(kind="link-up", link=edge))
        assert up.has_edge(*edge)
        assert sorted(map(frozenset, up.edges)) == sorted(
            map(frozenset, graph.edges)
        )

    def test_leave_drops_node_and_incident_links(self):
        graph = figure1_graph()
        evolved = apply_churn_event(graph, ChurnEvent(kind="leave", node="C"))
        assert "C" not in evolved
        assert all("C" not in pair for pair in evolved.edges)

    def test_join_adds_node_with_links(self):
        graph = figure1_graph()
        event = ChurnEvent(
            kind="join", node="N", cost=3.0, links=(("N", "A"), ("N", "C"))
        )
        evolved = apply_churn_event(graph, event)
        assert evolved.cost("N") == 3.0
        assert evolved.has_edge("N", "A") and evolved.has_edge("N", "C")

    def test_events_validate_against_the_graph(self):
        graph = figure1_graph()
        cases = [
            ChurnEvent(kind="cost", node="nope", cost=1.0),
            ChurnEvent(kind="leave", node="nope"),
            ChurnEvent(kind="link-down", link=("A", "nope")),
            ChurnEvent(kind="link-up", link=graph.edges[0]),  # already up
            ChurnEvent(kind="join", node="A", cost=1.0, links=(("A", "B"),)),
        ]
        for event in cases:
            with pytest.raises(SimulationError):
                apply_churn_event(graph, event)

    def test_epoch_folds_left_to_right(self):
        graph = figure1_graph()
        edge = graph.edges[0]
        events = [
            ChurnEvent(kind="link-down", link=edge),
            ChurnEvent(kind="link-up", link=edge),
            ChurnEvent(kind="cost", node="A", cost=5.0),
        ]
        evolved = apply_churn_epoch(graph, events)
        assert evolved.has_edge(*edge) and evolved.cost("A") == 5.0
        # Reordering makes the fold invalid: up before down must raise.
        with pytest.raises(SimulationError):
            apply_churn_epoch(graph, events[::-1])

    def test_evolved_graphs_one_per_epoch(self):
        graph = figure1_graph()
        schedule = ChurnSchedule(
            epochs=(
                (ChurnEvent(kind="cost", node="A", cost=4.0),),
                (ChurnEvent(kind="cost", node="B", cost=6.0),),
            )
        )
        snapshots = evolved_graphs(graph, schedule)
        assert len(snapshots) == len(schedule) == 2
        assert snapshots[0].cost("A") == 4.0 and snapshots[0].cost("B") != 6.0
        assert snapshots[1].cost("A") == 4.0 and snapshots[1].cost("B") == 6.0


class TestRandomSchedules:
    def test_same_seed_same_schedule(self):
        graph = random_biconnected_graph(12, random.Random(5))
        draws = [
            random_churn_schedule(
                graph,
                random.Random(42),
                epochs=3,
                events_per_epoch=2,
                kinds=EVENT_KINDS,
            )
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_unknown_kind_rejected(self):
        graph = figure1_graph()
        with pytest.raises(SimulationError):
            random_churn_schedule(graph, random.Random(0), kinds=("meteor",))

    @pytest.mark.parametrize("require", ["connected", "biconnected"])
    def test_every_epoch_graph_stays_viable(self, require):
        graph = random_biconnected_graph(10, random.Random(9))
        schedule = random_churn_schedule(
            graph,
            random.Random(1),
            epochs=4,
            events_per_epoch=2,
            kinds=EVENT_KINDS,
            require=require,
        )
        check = (
            ASGraph.is_connected
            if require == "connected"
            else ASGraph.is_biconnected
        )
        for snapshot in evolved_graphs(graph, schedule):
            assert check(snapshot)

    def test_membership_kinds_actually_drawn(self):
        graph = random_biconnected_graph(8, random.Random(2))
        schedule = random_churn_schedule(
            graph,
            random.Random(3),
            epochs=6,
            events_per_epoch=2,
            kinds=("leave", "join"),
        )
        kinds = {e.kind for events in schedule.epochs for e in events}
        assert kinds == {"leave", "join"}

    def test_small_graphs_shrink_under_skip_policy(self):
        # A triangle cannot lose a link and stay biconnected; under the
        # lenient policy the generator yields empty epochs.
        graph = ASGraph(
            {"a": 1.0, "b": 1.0, "c": 1.0},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        schedule = random_churn_schedule(
            graph,
            random.Random(0),
            epochs=2,
            events_per_epoch=1,
            kinds=("link-down",),
            require="biconnected",
            on_exhaustion="skip",
        )
        assert schedule.event_count == 0

    def test_exhaustion_raises_repro_error_naming_the_draw(self):
        # The same impossible constraint set must fail loudly by
        # default, with a diagnosable error: seed, kinds, constraint.
        graph = ASGraph(
            {"a": 1.0, "b": 1.0, "c": 1.0},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        with pytest.raises(ReproError) as excinfo:
            random_churn_schedule(
                graph,
                random.Random(7),
                epochs=1,
                events_per_epoch=1,
                kinds=("link-down",),
                require="biconnected",
                seed=7,
            )
        message = str(excinfo.value)
        assert "seed 7" in message
        assert "link-down" in message
        assert "biconnected" in message

    def test_exhaustion_error_without_seed_says_unknown(self):
        graph = ASGraph(
            {"a": 1.0, "b": 1.0, "c": 1.0},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        with pytest.raises(SimulationError, match="seed unknown"):
            random_churn_schedule(
                graph,
                random.Random(0),
                epochs=1,
                events_per_epoch=1,
                kinds=("link-down",),
                require="biconnected",
            )

    def test_unknown_exhaustion_policy_is_rejected(self):
        graph = ASGraph({"a": 1.0, "b": 1.0}, [("a", "b")])
        with pytest.raises(SimulationError, match="on_exhaustion"):
            random_churn_schedule(
                graph, random.Random(0), on_exhaustion="ignore"
            )
