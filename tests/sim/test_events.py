"""Tests for the deterministic event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("late"))
        queue.schedule(1.0, lambda: fired.append("early"))
        for event in queue.drain():
            event.callback()
        assert fired == ["early", "late"]

    def test_fifo_tie_break(self):
        queue = EventQueue()
        fired = []
        for i in range(5):
            queue.schedule(1.0, lambda i=i: fired.append(i))
        for event in queue.drain():
            event.callback()
        assert fired == [0, 1, 2, 3, 4]

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            EventQueue().schedule(-1.0, lambda: None)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError, match="empty"):
            EventQueue().pop()

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(3.5, lambda: None)
        queue.schedule(1.5, lambda: None)
        assert queue.peek_time() == 1.5

    def test_counters(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.pending == 2
        assert len(queue) == 2
        queue.pop()
        assert queue.dispatched == 1
        assert bool(queue)
        queue.pop()
        assert not queue

    def test_labels_preserved(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None, label="hello")
        assert queue.pop().label == "hello"
