"""Tests for the failure-model taxonomy (Section 3)."""

import random

import pytest

from repro.sim import (
    ByzantineAdapter,
    CrashAdapter,
    FailstopAdapter,
    FailureModel,
    NetworkTopology,
    OmissionAdapter,
    ProtocolNode,
    RationalAdapter,
    Simulator,
)


class Counter(ProtocolNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_data(self, message):
        self.received.append(message.payload.get("v"))


def make_sim():
    topo = NetworkTopology.from_edges([("a", "b")])
    sim = Simulator(topo)
    a, b = Counter("a"), Counter("b")
    sim.add_node(a)
    sim.add_node(b)
    return sim, a, b


class TestFailstop:
    def test_silent_after_fail_time(self):
        sim, a, b = make_sim()
        FailstopAdapter(a, fail_time=5.0)
        a.send("b", "data", v=1)  # t=0, delivered
        sim.run_until_quiescent()
        sim.queue.schedule(10.0, lambda: a.send("b", "data", v=2))
        sim.run_until_quiescent()
        assert b.received == [1]

    def test_inbound_also_silenced(self):
        sim, a, b = make_sim()
        FailstopAdapter(b, fail_time=0.0)
        a.send("b", "data", v=1)
        sim.run_until_quiescent()
        assert b.received == []

    def test_model_tag(self):
        sim, a, _ = make_sim()
        assert FailstopAdapter(a, 1.0).model is FailureModel.FAILSTOP


class TestCrash:
    def test_crash_time_drawn_from_rng(self):
        sim, a, _ = make_sim()
        adapter = CrashAdapter(a, random.Random(1), horizon=100.0)
        assert 0.0 <= adapter.fail_time <= 100.0
        assert adapter.model is FailureModel.CRASH

    def test_crash_reproducible(self):
        sim, a, b = make_sim()
        one = CrashAdapter(a, random.Random(9)).fail_time
        sim2, a2, _ = make_sim()
        two = CrashAdapter(a2, random.Random(9)).fail_time
        assert one == two


class TestOmission:
    def test_send_omissions_drop_messages(self):
        sim, a, b = make_sim()
        OmissionAdapter(a, random.Random(3), send_drop_prob=1.0)
        a.send("b", "data", v=1)
        sim.run_until_quiescent()
        assert b.received == []

    def test_zero_prob_is_transparent(self):
        sim, a, b = make_sim()
        OmissionAdapter(a, random.Random(3), send_drop_prob=0.0)
        a.send("b", "data", v=1)
        sim.run_until_quiescent()
        assert b.received == [1]

    def test_receive_omissions(self):
        sim, a, b = make_sim()
        OmissionAdapter(b, random.Random(3), receive_drop_prob=1.0)
        a.send("b", "data", v=1)
        sim.run_until_quiescent()
        assert b.received == []

    def test_invalid_probability_rejected(self):
        sim, a, _ = make_sim()
        with pytest.raises(ValueError):
            OmissionAdapter(a, random.Random(0), send_drop_prob=1.5)


class TestByzantine:
    def test_mutator_tampers(self):
        sim, a, b = make_sim()
        ByzantineAdapter(a, lambda m: m.altered(v=666))
        a.send("b", "data", v=1)
        sim.run_until_quiescent()
        assert b.received == [666]

    def test_mutator_can_drop(self):
        sim, a, b = make_sim()
        ByzantineAdapter(a, lambda m: None)
        a.send("b", "data", v=1)
        sim.run_until_quiescent()
        assert b.received == []


class TestRational:
    def test_tag_only(self):
        sim, a, b = make_sim()
        adapter = RationalAdapter(a, deviation_name="cost-lie")
        assert adapter.model is FailureModel.RATIONAL
        assert adapter.deviation_name == "cost-lie"
        a.send("b", "data", v=1)
        sim.run_until_quiescent()
        assert b.received == [1]  # behaviour unchanged by the tag


class TestChaining:
    def test_adapters_compose(self):
        sim, a, b = make_sim()
        ByzantineAdapter(a, lambda m: m.altered(v=2))
        OmissionAdapter(a, random.Random(0), send_drop_prob=0.0)
        a.send("b", "data", v=1)
        sim.run_until_quiescent()
        assert b.received == [2]
