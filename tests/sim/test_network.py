"""Tests for the static FIFO topology."""

import pytest

from repro.errors import SimulationError
from repro.sim import Link, NetworkTopology


class TestLink:
    def test_rejects_self_loop(self):
        with pytest.raises(SimulationError, match="self-loop"):
            Link(a="x", b="x")

    def test_rejects_non_positive_delay(self):
        with pytest.raises(SimulationError, match="positive"):
            Link(a="x", b="y", delay=0.0)

    def test_endpoints_orderless(self):
        assert Link("a", "b").endpoints == Link("b", "a").endpoints


class TestTopology:
    def test_add_node_idempotent(self):
        topo = NetworkTopology()
        topo.add_node("a")
        topo.add_node("a")
        assert len(topo) == 1

    def test_link_requires_registered_nodes(self):
        topo = NetworkTopology()
        topo.add_node("a")
        with pytest.raises(SimulationError, match="unknown node"):
            topo.add_link("a", "ghost")

    def test_duplicate_link_rejected(self):
        topo = NetworkTopology.from_edges([("a", "b")])
        with pytest.raises(SimulationError, match="already exists"):
            topo.add_link("b", "a")

    def test_neighbors_sorted(self):
        topo = NetworkTopology.from_edges([("m", "z"), ("m", "a")])
        assert topo.neighbors("m") == ("a", "z")

    def test_degree_counts_checkers(self):
        topo = NetworkTopology.from_edges([("p", "c1"), ("p", "c2"), ("p", "c3")])
        assert topo.degree("p") == 3

    def test_delay_lookup(self):
        topo = NetworkTopology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", delay=2.5)
        assert topo.delay("b", "a") == 2.5
        with pytest.raises(SimulationError, match="no link"):
            topo.delay("a", "a")

    def test_connectivity(self):
        topo = NetworkTopology.from_edges([("a", "b"), ("c", "d")])
        assert not topo.is_connected()
        topo.add_link("b", "c")
        assert topo.is_connected()

    def test_empty_topology_connected(self):
        assert NetworkTopology().is_connected()

    def test_iteration_deterministic(self):
        topo = NetworkTopology.from_edges([("b", "c"), ("a", "b")])
        assert list(topo) == ["a", "b", "c"]

    def test_unknown_neighbor_query(self):
        with pytest.raises(SimulationError):
            NetworkTopology().neighbors("ghost")
