"""Tests for the discrete-event simulator and protocol nodes."""

import pytest

from repro.errors import ConvergenceError, ProtocolError, SimulationError
from repro.sim import Message, NetworkTopology, ProtocolNode, Simulator


class Echo(ProtocolNode):
    """Replies 'pong' to every 'ping'."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.pings = 0
        self.pongs = 0

    def on_ping(self, message):
        self.pings += 1
        self.send(message.src, "pong")

    def on_pong(self, message):
        self.pongs += 1


def make_pair():
    topo = NetworkTopology.from_edges([("a", "b")])
    sim = Simulator(topo)
    a, b = Echo("a"), Echo("b")
    sim.add_node(a)
    sim.add_node(b)
    return sim, a, b


class TestRegistration:
    def test_duplicate_node_rejected(self):
        sim, a, b = make_pair()
        with pytest.raises(SimulationError, match="duplicate"):
            sim.add_node(Echo("a"))

    def test_node_must_be_topology_vertex(self):
        sim, *_ = make_pair()
        with pytest.raises(SimulationError, match="not a vertex"):
            sim.add_node(Echo("ghost"))

    def test_well_known_node_needs_no_vertex(self):
        sim, a, b = make_pair()
        bank = Echo("bank")
        sim.add_node(bank, well_known=True)
        a.send("bank", "ping")
        sim.run_until_quiescent()
        assert bank.pings == 1

    def test_double_attach_rejected(self):
        sim, a, _ = make_pair()
        with pytest.raises(SimulationError, match="already attached"):
            a.attach(sim)


class TestDelivery:
    def test_ping_pong(self):
        sim, a, b = make_pair()
        a.send("b", "ping")
        processed = sim.run_until_quiescent()
        assert b.pings == 1
        assert a.pongs == 1
        assert processed == 2

    def test_non_neighbor_send_rejected(self):
        topo = NetworkTopology.from_edges([("a", "b"), ("b", "c")])
        sim = Simulator(topo)
        for name in "abc":
            sim.add_node(Echo(name))
        with pytest.raises(SimulationError, match="non-neighbour"):
            sim.node("a").send("c", "ping")

    def test_unknown_handler_raises(self):
        sim, a, b = make_pair()
        a.send("b", "mystery")
        with pytest.raises(ProtocolError, match="no handler"):
            sim.run_until_quiescent()

    def test_fifo_per_link(self):
        received = []

        class Collector(ProtocolNode):
            def on_data(self, message):
                received.append(message.payload["n"])

        topo = NetworkTopology.from_edges([("s", "r")])
        sim = Simulator(topo)
        sender = ProtocolNode("s")
        sim.add_node(sender)
        sim.add_node(Collector("r"))
        for n in range(10):
            sender.send("r", "data", n=n)
        sim.run_until_quiescent()
        assert received == list(range(10))

    def test_time_advances_by_link_delay(self):
        topo = NetworkTopology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", delay=5.0)
        sim = Simulator(topo)
        a, b = Echo("a"), Echo("b")
        sim.add_node(a)
        sim.add_node(b)
        a.send("b", "ping")
        sim.run_until_quiescent()
        assert sim.now == 10.0  # ping at 5, pong back at 10

    def test_event_budget_enforced(self):
        class Chatter(ProtocolNode):
            def on_ping(self, message):
                self.send(message.src, "ping")

        topo = NetworkTopology.from_edges([("a", "b")])
        sim = Simulator(topo)
        sim.add_node(Chatter("a"))
        sim.add_node(Chatter("b"))
        sim.node("a").send("b", "ping")
        with pytest.raises(ConvergenceError, match="did not quiesce"):
            sim.run_until_quiescent(max_events=100)


class TestFiltersAndHooks:
    def test_outbound_filter_drop(self):
        sim, a, b = make_pair()
        a.outbound = lambda message: None
        a.send("b", "ping")
        sim.run_until_quiescent()
        assert b.pings == 0
        drops = [e for e in sim.trace.events if e.kind.value == "drop"]
        assert len(drops) == 1

    def test_inbound_filter_replace(self):
        sim, a, b = make_pair()
        b.inbound = lambda message: message.altered(tag=True)
        seen = {}
        b.on_ping = lambda message: seen.update(message.payload)
        a.send("b", "ping")
        sim.run_until_quiescent()
        assert seen == {"tag": True}

    def test_start_hooks_scheduled(self):
        started = []

        class Starter(ProtocolNode):
            def start(self):
                started.append(self.node_id)

        topo = NetworkTopology.from_edges([("a", "b")])
        sim = Simulator(topo)
        sim.add_node(Starter("a"))
        sim.add_node(Starter("b"))
        sim.start()
        sim.run_until_quiescent()
        assert started == ["a", "b"]

    def test_schedule_local_negative_delay_rejected(self):
        sim, a, _ = make_pair()
        with pytest.raises(SimulationError, match="negative"):
            a.schedule(-1.0, lambda: None)

    def test_metrics_counters(self):
        sim, a, b = make_pair()
        a.send("b", "ping")
        sim.run_until_quiescent()
        assert sim.metrics.node("a").messages_sent == 1
        assert sim.metrics.node("b").messages_received == 1
        assert sim.metrics.node("b").messages_sent == 1
        assert sim.metrics.total_messages == 2
        assert sim.metrics.events_processed == 2

    def test_detached_node_has_no_sim(self):
        node = ProtocolNode("lonely")
        with pytest.raises(SimulationError, match="not attached"):
            node.sim
