"""Tests for the immutable message envelope."""

from repro.sim import Message


class TestMessage:
    def test_author_defaults_to_src(self):
        msg = Message(src="a", dst="b", kind="hello")
        assert msg.author == "a"

    def test_unique_ids(self):
        one = Message(src="a", dst="b", kind="k")
        two = Message(src="a", dst="b", kind="k")
        assert one.msg_id != two.msg_id

    def test_forwarded_keeps_author_and_id(self):
        original = Message(src="a", dst="b", kind="k", payload={"v": 1})
        copy = original.forwarded("b", "c")
        assert copy.src == "b"
        assert copy.dst == "c"
        assert copy.author == "a"
        assert copy.msg_id == original.msg_id
        assert copy.payload == original.payload

    def test_altered_replaces_payload_fields(self):
        original = Message(src="a", dst="b", kind="k", payload={"v": 1, "w": 2})
        tampered = original.altered(v=99)
        assert tampered.payload["v"] == 99
        assert tampered.payload["w"] == 2
        assert original.payload["v"] == 1  # original untouched

    def test_readdressed(self):
        msg = Message(src="a", dst="b", kind="k")
        assert msg.readdressed("c").dst == "c"

    def test_content_key_equality(self):
        one = Message(src="a", dst="b", kind="k", payload={"x": [1, 2]})
        two = Message(src="a", dst="c", kind="k", payload={"x": [1, 2]})
        assert one.content_key() == two.content_key()

    def test_content_key_detects_tampering(self):
        one = Message(src="a", dst="b", kind="k", payload={"x": 1})
        assert one.content_key() != one.altered(x=2).content_key()

    def test_content_key_nested_structures(self):
        msg = Message(
            src="a",
            dst="b",
            kind="k",
            payload={"table": {"d": (1.0, ("a", "b"))}, "tags": {1, 2}},
        )
        assert msg.content_key() == msg.forwarded("b", "c").content_key()

    def test_size_counts_scalars(self):
        msg = Message(
            src="a", dst="b", kind="k", payload={"v": [1, 2, 3], "w": 4}
        )
        assert msg.size == 4

    def test_size_minimum_one(self):
        assert Message(src="a", dst="b", kind="k").size == 1
