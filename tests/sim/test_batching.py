"""Tests for batched delivery: the inbox, ordering, and node hooks."""

import pytest

from repro.errors import SimulationError
from repro.sim import Message, NetworkTopology, ProtocolNode, Simulator
from repro.sim.events import DeliveryInbox


class Recorder(ProtocolNode):
    """Collects payloads and batch boundaries."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen = []
        self.batches = []

    def deliver_batch(self, messages):
        self.batches.append([m.payload.get("n") for m in messages])
        super().deliver_batch(messages)

    def on_data(self, message):
        self.seen.append(message.payload["n"])


def star(batch_delivery=True):
    topo = NetworkTopology.from_edges([("a", "c"), ("b", "c")])
    sim = Simulator(topo, batch_delivery=batch_delivery)
    nodes = {name: Recorder(name) for name in "abc"}
    for node in nodes.values():
        sim.add_node(node)
    return sim, nodes


class TestDeliveryInbox:
    def test_first_message_opens_slot(self):
        inbox = DeliveryInbox()
        assert inbox.add(1.0, "x", "m1") is True
        assert inbox.add(1.0, "x", "m2") is False
        assert inbox.add(2.0, "x", "m3") is True
        assert inbox.pending == 3
        assert inbox.collect(1.0, "x") == ("m1", "m2")
        assert inbox.pending == 1

    def test_collect_missing_slot_raises(self):
        with pytest.raises(SimulationError, match="no pending"):
            DeliveryInbox().collect(1.0, "x")


class TestBatchedDelivery:
    def test_same_instant_messages_coalesce(self):
        sim, nodes = star()
        nodes["a"].send("c", "data", n=1)
        nodes["b"].send("c", "data", n=2)
        processed = sim.run_until_quiescent()
        # Two messages, one delivery event.
        assert processed == 1
        assert nodes["c"].batches == [[1, 2]]
        assert nodes["c"].seen == [1, 2]

    def test_send_order_preserved_within_batch(self):
        sim, nodes = star()
        for n in range(6):
            (nodes["a"] if n % 2 else nodes["b"]).send("c", "data", n=n)
        sim.run_until_quiescent()
        assert nodes["c"].seen == list(range(6))

    def test_different_instants_stay_separate(self):
        topo = NetworkTopology()
        for name in "abc":
            topo.add_node(name)
        topo.add_link("a", "c", delay=1.0)
        topo.add_link("b", "c", delay=2.0)
        sim = Simulator(topo)
        nodes = {name: Recorder(name) for name in "abc"}
        for node in nodes.values():
            sim.add_node(node)
        nodes["a"].send("c", "data", n=1)
        nodes["b"].send("c", "data", n=2)
        sim.run_until_quiescent()
        assert nodes["c"].batches == [[1], [2]]

    def test_per_message_metrics_unchanged(self):
        sim, nodes = star()
        nodes["a"].send("c", "data", n=1)
        nodes["b"].send("c", "data", n=2)
        sim.run_until_quiescent()
        assert sim.metrics.node("c").messages_received == 2
        assert sim.metrics.total_messages == 2

    def test_inbound_filter_applies_per_message(self):
        sim, nodes = star()
        nodes["c"].inbound = lambda m: None if m.payload["n"] == 1 else m
        nodes["a"].send("c", "data", n=1)
        nodes["b"].send("c", "data", n=2)
        sim.run_until_quiescent()
        assert nodes["c"].seen == [2]

    def test_unbatched_mode_matches_seed_behaviour(self):
        sim, nodes = star(batch_delivery=False)
        nodes["a"].send("c", "data", n=1)
        nodes["b"].send("c", "data", n=2)
        processed = sim.run_until_quiescent()
        assert processed == 2
        assert nodes["c"].batches == []  # deliver_batch never invoked
        assert nodes["c"].seen == [1, 2]


class TestMulticastSizing:
    def test_multicast_shares_one_size(self):
        sim, nodes = star()
        payload_vector = tuple((i, float(i), ("p", "q")) for i in range(5))
        nodes["c"].multicast(("a", "b"), "data", n=0, vector=payload_vector)
        sim.run_until_quiescent()
        sent = sim.metrics.node("c")
        assert sent.messages_sent == 2
        # Both copies accounted with the same (full) payload size.
        assert sent.payload_units_sent % 2 == 0

    def test_size_cache_not_inherited_by_altered(self):
        message = Message(src="a", dst="b", kind="x", payload={"v": (1, 2, 3)})
        assert message.size == 3
        altered = message.altered(v=(1,))
        assert altered.size == 1
