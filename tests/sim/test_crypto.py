"""Tests for simulated signing and stable hashing."""

import pytest

from repro.errors import SignatureError
from repro.sim import Message, SigningAuthority, stable_hash


class TestSigning:
    def setup_method(self):
        self.authority = SigningAuthority()
        self.authority.register("alice")
        self.authority.register("bank")
        self.msg = Message(
            src="alice", dst="bank", kind="report", payload={"total": 42}
        )

    def test_sign_and_verify(self):
        signed = self.authority.sign("alice", self.msg)
        assert signed.signature is not None
        assert self.authority.verify("alice", signed)

    def test_unsigned_fails_verification(self):
        assert not self.authority.verify("alice", self.msg)

    def test_tampered_payload_fails(self):
        signed = self.authority.sign("alice", self.msg)
        tampered = signed.altered(total=0)
        assert not self.authority.verify("alice", tampered)

    def test_wrong_signer_fails(self):
        signed = self.authority.sign("alice", self.msg)
        assert not self.authority.verify("bank", signed)

    def test_unknown_key_raises(self):
        with pytest.raises(SignatureError, match="no key"):
            self.authority.sign("mallory", self.msg)

    def test_require_valid(self):
        signed = self.authority.sign("alice", self.msg)
        self.authority.require_valid("alice", signed)
        with pytest.raises(SignatureError, match="failed"):
            self.authority.require_valid("alice", self.msg)

    def test_registration_idempotent(self):
        self.authority.register("alice")
        signed = self.authority.sign("alice", self.msg)
        assert self.authority.verify("alice", signed)

    def test_is_registered(self):
        assert self.authority.is_registered("alice")
        assert not self.authority.is_registered("mallory")

    def test_signature_covers_author(self):
        signed = self.authority.sign("alice", self.msg)
        relabelled = Message(
            src=signed.src,
            dst=signed.dst,
            kind=signed.kind,
            payload=signed.payload,
            author="eve",
            msg_id=signed.msg_id,
            signature=signed.signature,
        )
        assert not self.authority.verify("alice", relabelled)


class TestStableHash:
    def test_deterministic(self):
        value = {"b": 2, "a": (1, 2, 3)}
        assert stable_hash(value) == stable_hash({"a": (1, 2, 3), "b": 2})

    def test_distinguishes_values(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_normalises_integral_floats(self):
        assert stable_hash({"x": 2.0}) == stable_hash({"x": 2})

    def test_handles_sets(self):
        assert stable_hash({"tags": {3, 1, 2}}) == stable_hash({"tags": {1, 2, 3}})

    def test_nested_structures(self):
        one = {"table": {"d": (1.0, ("a", "b")), "e": [frozenset({"x"})]}}
        two = {"table": {"e": [frozenset({"x"})], "d": (1, ("a", "b"))}}
        assert stable_hash(one) == stable_hash(two)

    def test_sequence_order_matters(self):
        assert stable_hash([1, 2]) != stable_hash([2, 1])
