"""Tests for traces and overhead metrics."""

from repro.sim import (
    Message,
    MetricsRegistry,
    NetworkTopology,
    ProtocolNode,
    Simulator,
    Trace,
    TraceKind,
)


class TestTrace:
    def test_record_and_filter(self):
        trace = Trace()
        msg = Message(src="a", dst="b", kind="k")
        trace.record(0.0, TraceKind.SEND, "a", msg)
        trace.record(1.0, TraceKind.DELIVER, "b", msg)
        trace.record(2.0, TraceKind.DETECT, None, None, reason="mismatch")
        assert len(trace) == 3
        assert len(trace.sends()) == 1
        assert len(trace.deliveries("b")) == 1
        assert len(trace.detections()) == 1
        assert trace.detections()[0].detail["reason"] == "mismatch"

    def test_predicate_filter(self):
        trace = Trace()
        for i in range(5):
            trace.record(float(i), TraceKind.COMPUTE, "n", None, step=i)
        evens = trace.filter(predicate=lambda e: e.detail["step"] % 2 == 0)
        assert len(evens) == 3

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(0.0, TraceKind.SEND, "a")
        assert len(trace) == 0

    def test_messages_by_kind(self):
        trace = Trace()
        for kind in ("rt-update", "rt-update", "price-update"):
            trace.record(
                0.0, TraceKind.SEND, "a", Message(src="a", dst="b", kind=kind)
            )
        assert trace.messages_by_kind() == {"rt-update": 2, "price-update": 1}

    def test_clear(self):
        trace = Trace()
        trace.record(0.0, TraceKind.SEND, "a")
        trace.clear()
        assert len(trace) == 0


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.record_send("a", payload_units=3)
        metrics.record_send("a", payload_units=2)
        metrics.record_receive("b")
        metrics.record_computation("a")
        metrics.record_computation("a", as_checker=True)
        assert metrics.node("a").messages_sent == 2
        assert metrics.node("a").payload_units_sent == 5
        assert metrics.node("b").messages_received == 1
        assert metrics.node("a").computations == 1
        assert metrics.node("a").checker_computations == 1

    def test_aggregates(self):
        metrics = MetricsRegistry()
        metrics.record_send("a", 2)
        metrics.record_send("b", 4)
        metrics.record_computation("a")
        summary = metrics.summary()
        assert summary["total_messages"] == 2
        assert summary["total_payload_units"] == 6
        assert summary["total_computations"] == 1
        assert summary["total_checker_computations"] == 0

    def test_as_dict(self):
        metrics = MetricsRegistry()
        metrics.record_send("a")
        d = metrics.node("a").as_dict()
        assert d["messages_sent"] == 1

    def test_per_node_view_is_copy(self):
        metrics = MetricsRegistry()
        metrics.record_send("a")
        view = metrics.per_node
        view.clear()
        assert metrics.node("a").messages_sent == 1


class TestTraceInSimulation:
    def test_simulation_produces_send_and_deliver_events(self):
        class Sink(ProtocolNode):
            def on_data(self, message):
                pass

        topo = NetworkTopology.from_edges([("a", "b")])
        sim = Simulator(topo, trace_enabled=True)
        a = ProtocolNode("a")
        sim.add_node(a)
        sim.add_node(Sink("b"))
        a.send("b", "data")
        sim.run_until_quiescent()
        kinds = [e.kind for e in sim.trace.events]
        assert kinds == [TraceKind.SEND, TraceKind.DELIVER]
