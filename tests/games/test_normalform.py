"""Tests for explicit normal-form games and ex post families."""

import pytest

from repro.errors import MechanismError
from repro.games import GameFamily, NormalFormGame


def prisoners_dilemma():
    payoffs = {
        ("c", "c"): (3.0, 3.0),
        ("c", "d"): (0.0, 5.0),
        ("d", "c"): (5.0, 0.0),
        ("d", "d"): (1.0, 1.0),
    }
    return NormalFormGame(
        ["row", "col"], [("c", "d"), ("c", "d")], lambda p: payoffs[p]
    )


def coordination_game():
    payoffs = {
        ("a", "a"): (2.0, 2.0),
        ("a", "b"): (0.0, 0.0),
        ("b", "a"): (0.0, 0.0),
        ("b", "b"): (1.0, 1.0),
    }
    return NormalFormGame(
        ["row", "col"], [("a", "b"), ("a", "b")], lambda p: payoffs[p]
    )


class TestConstruction:
    def test_arity_checks(self):
        with pytest.raises(MechanismError):
            NormalFormGame(["p"], [], lambda p: (0.0,))
        with pytest.raises(MechanismError):
            NormalFormGame([], [], lambda p: ())
        with pytest.raises(MechanismError):
            NormalFormGame(["p"], [()], lambda p: (0.0,))

    def test_bad_payoff_arity_detected(self):
        game = NormalFormGame(["p", "q"], [("x",), ("x",)], lambda p: (0.0,))
        with pytest.raises(MechanismError, match="arity"):
            game.payoffs(("x", "x"))

    def test_payoffs_cached(self):
        calls = []

        def payoff(profile):
            calls.append(profile)
            return (0.0, 0.0)

        game = NormalFormGame(["p", "q"], [("x",), ("x",)], payoff)
        game.payoffs(("x", "x"))
        game.payoffs(("x", "x"))
        assert len(calls) == 1


class TestSolutionConcepts:
    def test_pd_unique_equilibrium(self):
        game = prisoners_dilemma()
        assert game.pure_nash_equilibria() == [("d", "d")]

    def test_pd_defect_is_dominant(self):
        game = prisoners_dilemma()
        assert game.is_dominant("row", "d")
        assert not game.is_dominant("row", "c")

    def test_coordination_two_equilibria(self):
        game = coordination_game()
        assert set(game.pure_nash_equilibria()) == {("a", "a"), ("b", "b")}

    def test_coordination_has_no_dominant_strategy(self):
        game = coordination_game()
        assert not game.is_dominant("row", "a")
        assert not game.is_dominant("row", "b")

    def test_best_responses(self):
        game = prisoners_dilemma()
        assert game.best_responses("row", ("c", "c")) == ["d"]
        assert game.best_responses("row", ("c", "d")) == ["d"]

    def test_unknown_player(self):
        with pytest.raises(MechanismError):
            prisoners_dilemma().index_of("ghost")

    def test_is_nash_rejects_profitable_deviation(self):
        game = prisoners_dilemma()
        assert not game.is_nash(("c", "c"))
        assert game.is_nash(("d", "d"))


class TestGameFamily:
    """A two-state family where honesty is ex post, cheating is not."""

    @staticmethod
    def payoff_for_types(types, profile):
        # Each player gets 10; cheating subtracts its own type value.
        result = []
        for player, strategy in zip(("p", "q"), profile):
            penalty = types[player] if strategy == "cheat" else 0.0
            result.append(10.0 - penalty)
        return tuple(result)

    def make_family(self, type_profiles):
        return GameFamily(
            ["p", "q"],
            [("honest", "cheat"), ("honest", "cheat")],
            self.payoff_for_types,
            type_profiles,
        )

    def test_honest_profile_is_ex_post(self):
        family = self.make_family(
            [{"p": 1.0, "q": 1.0}, {"p": 5.0, "q": 0.5}]
        )
        assert family.is_ex_post_nash(("honest", "honest"))

    def test_state_dependent_equilibrium_fails_ex_post(self):
        # With a negative-penalty state, cheating profits there, so
        # honesty is Nash in one state but not ex post over the family.
        family = GameFamily(
            ["p", "q"],
            [("honest", "cheat"), ("honest", "cheat")],
            lambda types, profile: tuple(
                10.0 - (types[pl] if s == "cheat" else 0.0)
                for pl, s in zip(("p", "q"), profile)
            ),
            [{"p": 1.0, "q": 1.0}, {"p": -1.0, "q": 1.0}],
        )
        assert not family.is_ex_post_nash(("honest", "honest"))
        assert family.game_at({"p": 1.0, "q": 1.0}).is_nash(
            ("honest", "honest")
        )

    def test_ex_post_enumeration(self):
        family = self.make_family([{"p": 1.0, "q": 1.0}])
        equilibria = family.ex_post_equilibria()
        assert ("honest", "honest") in equilibria

    def test_empty_family_rejected(self):
        with pytest.raises(MechanismError):
            self.make_family([])
