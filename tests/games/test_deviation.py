"""Tests for the deviation explorer."""

import pytest

from repro.errors import MechanismError
from repro.games import DeviationTable, explore_deviations
from repro.games.deviation import DeviationOutcome


def runner_with(gains, detected=()):
    """gains[(node, deviation)] -> utility delta; baseline is 10."""

    def runner(node, deviation):
        utilities = {n: 10.0 for n in ("a", "b")}
        if node is not None:
            utilities[node] += gains.get((node, deviation), 0.0)
        flagged = node is not None and (node, deviation) in detected
        return utilities, flagged

    return runner


class TestExplore:
    def test_grid_shape(self):
        table = explore_deviations(
            runner_with({}), nodes=("a", "b"), deviations=("d1", "d2")
        )
        assert len(table.outcomes) == 4

    def test_gains_computed(self):
        table = explore_deviations(
            runner_with({("a", "d1"): 2.0}),
            nodes=("a",),
            deviations=("d1", "d2"),
        )
        by_dev = {o.deviation: o for o in table.outcomes}
        assert by_dev["d1"].gain == pytest.approx(2.0)
        assert by_dev["d2"].gain == pytest.approx(0.0)
        assert table.max_gain == pytest.approx(2.0)
        assert [o.deviation for o in table.profitable] == ["d1"]
        assert not table.is_faithful()

    def test_faithful_when_no_gains(self):
        table = explore_deviations(
            runner_with({("a", "d1"): -1.0}),
            nodes=("a",),
            deviations=("d1",),
        )
        assert table.is_faithful()

    def test_unsound_detector_rejected(self):
        def runner(node, deviation):
            return {"a": 10.0}, True  # flags even the baseline

        with pytest.raises(MechanismError, match="unsound"):
            explore_deviations(runner, nodes=("a",), deviations=("d",))

    def test_empty_nodes_rejected(self):
        with pytest.raises(MechanismError, match="no nodes"):
            explore_deviations(runner_with({}), nodes=(), deviations=("d",))


class TestDetectionRate:
    def test_full_detection(self):
        table = explore_deviations(
            runner_with(
                {("a", "d1"): 1.0}, detected={("a", "d1")}
            ),
            nodes=("a",),
            deviations=("d1",),
        )
        assert table.detection_rate() == 1.0

    def test_missed_detection(self):
        table = explore_deviations(
            runner_with({("a", "d1"): 1.0, ("a", "d2"): 1.0},
                        detected={("a", "d1")}),
            nodes=("a",),
            deviations=("d1", "d2"),
        )
        assert table.detection_rate() == pytest.approx(0.5)

    def test_excluding_permitted_deviations(self):
        table = explore_deviations(
            runner_with({("a", "cost-lie"): -1.0}),
            nodes=("a",),
            deviations=("cost-lie",),
        )
        assert table.detection_rate() == 0.0
        assert table.detection_rate(excluding=("cost-lie",)) == 1.0

    def test_noop_deviations_ignored(self):
        table = explore_deviations(
            runner_with({}), nodes=("a",), deviations=("d1",)
        )
        assert table.detection_rate() == 1.0

    def test_by_deviation_grouping(self):
        table = DeviationTable(
            outcomes=[
                DeviationOutcome("a", "d1", 10.0, 10.0, False),
                DeviationOutcome("b", "d1", 10.0, 11.0, True),
            ]
        )
        grouped = table.by_deviation()
        assert set(grouped) == {"d1"}
        assert len(grouped["d1"]) == 2
