"""Tests for the telemetry event bus and its sinks."""

import json
import os

import pytest

from repro.errors import TelemetryError
from repro.obs import (
    BUS,
    EventBus,
    JsonlSink,
    MemorySink,
    NullSink,
    TelemetryEvent,
    read_feed,
)


class TestEventBus:
    def test_disabled_emit_returns_none(self):
        bus = EventBus()
        assert not bus.enabled
        assert bus.emit("marker", "x") is None

    def test_attach_enables_detach_disables(self):
        bus = EventBus()
        sink = MemorySink()
        bus.attach(sink)
        assert bus.enabled
        bus.detach(sink)
        assert not bus.enabled

    def test_events_fan_out_to_all_sinks(self):
        bus = EventBus()
        first, second = MemorySink(), MemorySink()
        bus.attach(first)
        bus.attach(second)
        bus.emit("marker", "x", sim_time=1.0, attrs={"a": 1})
        assert len(first.events) == len(second.events) == 1
        assert first.events[0] is second.events[0]

    def test_sequence_numbers_monotonic(self):
        bus = EventBus()
        sink = MemorySink()
        bus.attach(sink)
        for _ in range(3):
            bus.emit("marker", "x")
        assert [e.seq for e in sink.events] == [1, 2, 3]

    def test_capture_restores_state(self):
        bus = EventBus()
        with bus.capture() as sink:
            bus.emit("marker", "inside")
        assert not bus.enabled
        assert [e.name for e in sink.events] == ["inside"]
        assert bus.emit("marker", "after") is None

    def test_nested_captures_compose(self):
        bus = EventBus()
        with bus.capture() as outer:
            bus.emit("marker", "one")
            with bus.capture() as inner:
                bus.emit("marker", "two")
            bus.emit("marker", "three")
        assert [e.name for e in outer.events] == ["one", "two", "three"]
        assert [e.name for e in inner.events] == ["two"]

    def test_default_bus_starts_disabled(self):
        assert not BUS.enabled
        assert not BUS.verbose


class TestMemorySink:
    def test_ring_evicts_oldest(self):
        bus = EventBus()
        sink = MemorySink(maxlen=2)
        bus.attach(sink)
        for name in ("a", "b", "c"):
            bus.emit("marker", name)
        assert [e.name for e in sink.events] == ["b", "c"]
        assert sink.dropped == 1

    def test_null_sink_swallows(self):
        bus = EventBus()
        bus.attach(NullSink())
        event = bus.emit("marker", "x")
        assert event is not None and event.seq == 1


class TestEventJson:
    def test_round_trip(self):
        event = TelemetryEvent(
            kind="counters", name="kernel", seq=7, sim_time=2.5,
            attrs={"rows": 3},
        )
        clone = TelemetryEvent.from_json_obj(
            json.loads(json.dumps(event.to_json_obj()))
        )
        assert clone == event

    def test_wall_time_omitted_unless_stamped(self):
        event = TelemetryEvent(kind="marker", name="x", seq=1)
        assert "wall_time" not in event.to_json_obj()

    def test_malformed_record_raises(self):
        with pytest.raises(TelemetryError):
            TelemetryEvent.from_json_obj({"kind": "marker"})


class TestJsonlSink:
    def _emit(self, directory, names, stamp_wall=True):
        bus = EventBus()
        sink = JsonlSink(os.path.join(directory, "t.jsonl"), stamp_wall=stamp_wall)
        bus.attach(sink)
        for name in names:
            bus.emit("marker", name)
        sink.close()
        return sink.path

    def test_write_and_read_back(self, tmp_path):
        path = self._emit(str(tmp_path), ["a", "b"])
        events = read_feed(path)
        assert [e.name for e in events] == ["a", "b"]
        assert all(e.wall_time is not None for e in events)

    def test_stamp_wall_false_keeps_records_clockless(self, tmp_path):
        path = self._emit(str(tmp_path), ["a"], stamp_wall=False)
        assert read_feed(path)[0].wall_time is None

    def test_missing_feed_is_empty(self, tmp_path):
        assert read_feed(str(tmp_path / "absent.jsonl")) == []

    def test_torn_tail_dropped_on_read(self, tmp_path):
        path = self._emit(str(tmp_path), ["a", "b"])
        with open(path, "a") as handle:
            handle.write('{"kind": "marker", "na')
        events = read_feed(path)
        assert [e.name for e in events] == ["a", "b"]

    def test_torn_tail_truncated_before_append(self, tmp_path):
        path = self._emit(str(tmp_path), ["a"])
        with open(path, "a") as handle:
            handle.write('{"torn')
        self._emit(str(tmp_path), ["b"])
        assert [e.name for e in read_feed(path)] == ["a", "b"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = self._emit(str(tmp_path), ["a", "b"])
        lines = open(path).read().splitlines()
        lines[0] = '{"broken'
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(TelemetryError):
            read_feed(path)
