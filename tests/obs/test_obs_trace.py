"""Tests for tracing spans and counter emission."""

import pytest

from repro.errors import ReproError
from repro.obs import (
    KIND_COUNTERS,
    KIND_MARKER,
    KIND_SPAN_END,
    KIND_SPAN_START,
    NOOP_SPAN,
    EventBus,
    MemorySink,
    aggregate_counters,
    emit_counters,
    emit_marker,
    span,
)


def _captured(bus):
    sink = MemorySink()
    bus.attach(sink)
    return sink


class TestSpan:
    def test_disabled_returns_shared_noop(self):
        bus = EventBus()
        first = span("x", bus=bus)
        second = span("y", bus=bus, anything=1)
        assert first is NOOP_SPAN and second is NOOP_SPAN
        with first:
            first.note(ignored=True)

    def test_start_end_pairing(self):
        bus = EventBus()
        sink = _captured(bus)
        with span("work", sim_time=1.0, bus=bus, label="L"):
            pass
        start, end = sink.events
        assert (start.kind, end.kind) == (KIND_SPAN_START, KIND_SPAN_END)
        assert start.name == end.name == "work"
        assert start.attrs == {"label": "L"}
        assert end.attrs["span"] == start.seq

    def test_note_rides_on_end_record(self):
        bus = EventBus()
        sink = _captured(bus)
        with span("work", sim_time=0.0, bus=bus) as live:
            live.note(events=12, sim_time=4.5)
        end = sink.events[-1]
        assert end.attrs["events"] == 12
        assert end.sim_time == 4.5

    def test_exception_noted_and_propagates(self):
        bus = EventBus()
        sink = _captured(bus)
        with pytest.raises(ReproError):
            with span("work", bus=bus):
                raise ReproError("boom")
        assert sink.events[-1].attrs["exception"] == "ReproError"

    def test_counters_and_markers(self):
        bus = EventBus()
        sink = _captured(bus)
        emit_counters("kernel", {"rows": 3}, sim_time=1.0, bus=bus)
        emit_marker("protocol.phase", bus=bus, phase="phase2")
        counters, marker = sink.events
        assert counters.kind == KIND_COUNTERS
        assert counters.attrs == {"rows": 3}
        assert marker.kind == KIND_MARKER
        assert marker.attrs == {"phase": "phase2"}

    def test_disabled_counter_emission_is_noop(self):
        emit_counters("kernel", {"rows": 3}, bus=EventBus())
        emit_marker("x", bus=EventBus())


class TestAggregateCounters:
    def test_sums_deltas_per_name_and_key(self):
        bus = EventBus()
        sink = _captured(bus)
        emit_counters("kernel", {"rows": 2, "rescans": 1}, bus=bus)
        emit_counters("kernel", {"rows": 3}, bus=bus)
        emit_counters("sim.metrics", {"rows": 5}, bus=bus)
        assert aggregate_counters(sink.events) == {
            "kernel.rows": 5,
            "kernel.rescans": 1,
            "sim.metrics.rows": 5,
        }

    def test_ignores_non_counter_records_and_labels(self):
        bus = EventBus()
        sink = _captured(bus)
        with span("work", bus=bus):
            emit_counters(
                "kernel", {"rows": 2, "owner": "A", "flag": True}, bus=bus
            )
        totals = aggregate_counters(sink.events)
        assert totals == {"kernel.rows": 2}
