"""Telemetry of the dynamic-topology subsystem.

Reconvergence must be observable: every epoch emits a ``churn.epoch``
marker plus ``churn`` counter deltas on the default bus (and into
``telemetry.jsonl`` when a sink is attached), the faithful epoch
runner emits ``mirror.epoch`` markers for the pool bumps, and the
sweep status renderer surfaces churn progress.
"""

import random

from repro.faithful.epochs import run_checked_churn
from repro.obs import BUS, JsonlSink, feed_status, read_feed, render_status
from repro.obs.trace import aggregate_counters
from repro.routing import figure1_graph
from repro.routing.dynamic import run_dynamic_fpss
from repro.sim.churn import ChurnEvent, ChurnSchedule, random_churn_schedule
from repro.workloads import random_biconnected_graph


def two_epoch_schedule(graph):
    return random_churn_schedule(
        graph, random.Random(3), epochs=2, events_per_epoch=1
    )


class TestEpochMarkers:
    def test_dynamic_run_emits_one_marker_per_epoch(self):
        graph = random_biconnected_graph(8, random.Random(1))
        schedule = two_epoch_schedule(graph)
        with BUS.capture() as sink:
            run_dynamic_fpss(graph, schedule)
        markers = [e for e in sink.events if e.kind == "marker"
                   and e.name == "churn.epoch"]
        assert [m.attrs["epoch"] for m in markers] == [1, 2]
        for marker, events in zip(markers, schedule.epochs):
            assert marker.attrs["events"] == [e.describe() for e in events]
            assert marker.attrs["reconvergence_messages"] >= 0

    def test_counters_aggregate_per_run(self):
        graph = random_biconnected_graph(8, random.Random(1))
        schedule = two_epoch_schedule(graph)
        with BUS.capture() as sink:
            run_dynamic_fpss(graph, schedule)
        totals = aggregate_counters(sink.events)
        assert totals["churn.epochs"] == 2
        assert totals["churn.events"] == schedule.event_count
        assert totals["churn.reconvergence_messages"] > 0

    def test_checked_churn_emits_mirror_epoch_markers(self):
        schedule = ChurnSchedule.single(
            ChurnEvent(kind="cost", node="C", cost=2.0)
        )
        with BUS.capture() as sink:
            run_checked_churn(figure1_graph(), schedule)
        bumps = [e for e in sink.events if e.kind == "marker"
                 and e.name == "mirror.epoch"]
        # One bump per construction: the initial one plus the epoch.
        assert [b.attrs["epoch"] for b in bumps] == [0, 1]
        totals = aggregate_counters(sink.events)
        assert totals["churn.checked_epochs"] == 1
        assert totals["churn.reconvergence_events"] > 0

    def test_markers_reach_a_jsonl_sink(self, tmp_path):
        graph = random_biconnected_graph(6, random.Random(4))
        schedule = two_epoch_schedule(graph)
        path = tmp_path / "telemetry.jsonl"
        sink = JsonlSink(str(path))
        BUS.attach(sink)
        try:
            run_dynamic_fpss(graph, schedule)
        finally:
            BUS.detach(sink)
            sink.close()
        events = read_feed(str(path))
        names = [e.name for e in events if e.kind == "marker"]
        assert names.count("churn.epoch") == 2

    def test_silent_without_a_sink(self):
        """The default bus is disabled unless observed: a plain run
        must not pay for (or leak) any telemetry."""
        graph = random_biconnected_graph(6, random.Random(4))
        assert not BUS.enabled
        run_dynamic_fpss(graph, two_epoch_schedule(graph))
        assert not BUS.enabled


class TestStatusRendering:
    def test_render_status_surfaces_churn_progress(self):
        with BUS.capture() as sink:
            graph = random_biconnected_graph(8, random.Random(1))
            run_dynamic_fpss(graph, two_epoch_schedule(graph))
        totals = aggregate_counters(sink.events)
        status = feed_status([])
        status.counters.update(totals)
        rendered = render_status(status)
        assert "churn: 2 reconvergence epoch(s)" in rendered
        assert "reconvergence messages" in rendered

    def test_render_status_stays_quiet_without_churn(self):
        rendered = render_status(feed_status([]))
        assert "churn:" not in rendered
