"""Tests for the sweep telemetry feed: writer, status, follower."""

import pytest

from repro.experiments import ScenarioSpec
from repro.experiments.runner import ScenarioResult
from repro.obs import (
    FeedFollower,
    SweepFeed,
    feed_path,
    feed_status,
    read_feed,
    render_event,
    render_status,
)


def _spec(seed=0, **over):
    return ScenarioSpec(size=6, seed=seed, **over)


def _result(spec, error=None, wall_time=0.25):
    return ScenarioResult(
        spec=spec,
        scenario_id=spec.scenario_id(),
        nodes=6,
        edges=9,
        flows=4,
        total_volume=4.0,
        wall_time=wall_time,
        values={} if error else {"overpayment_ratio": 1.5},
        error=error,
    )


def _write_feed(directory, stamp_wall=True):
    ok_spec, bad_spec = _spec(0), _spec(1)
    with SweepFeed(str(directory), stamp_wall=stamp_wall) as feed:
        feed.sweep_start(name="grid", total=3, pending=2, reused=1, workers=2)
        feed.cell_reused(_result(_spec(2)))
        feed.cell_start(ok_spec)
        feed.cell_start(bad_spec)
        feed.cell_result(_result(ok_spec), {"kernel.rows_ingested": 7})
        feed.cell_result(
            _result(bad_spec, error="GraphError: zero anchor"),
            {"kernel.rows_ingested": 3},
        )
        feed.sweep_finish(completed=3, failures=1)
    return feed_path(str(directory))


class TestFeedPath:
    def test_directory_resolves_to_feed_file(self, tmp_path):
        assert feed_path(str(tmp_path)).endswith("telemetry.jsonl")

    def test_file_passes_through(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        assert feed_path(path) == path


class TestSweepFeed:
    def test_full_run_vocabulary(self, tmp_path):
        events = read_feed(_write_feed(tmp_path))
        assert [e.kind for e in events] == [
            "sweep_start",
            "cell_reused",
            "cell_start",
            "cell_start",
            "cell_finish",
            "cell_error",
            "sweep_finish",
        ]

    def test_error_record_carries_class_and_message(self, tmp_path):
        events = read_feed(_write_feed(tmp_path))
        error = next(e for e in events if e.kind == "cell_error")
        assert error.attrs["error_class"] == "GraphError"
        assert error.attrs["error"] == "GraphError: zero anchor"
        assert error.attrs["counters"] == {"kernel.rows_ingested": 3}

    def test_sweep_finish_keeps_the_sweep_name(self, tmp_path):
        events = read_feed(_write_feed(tmp_path))
        assert events[-1].kind == "sweep_finish"
        assert events[-1].name == "grid"

    def test_finish_record_carries_key_probe_counters(self, tmp_path):
        events = read_feed(_write_feed(tmp_path))
        finish = next(e for e in events if e.kind == "cell_finish")
        assert finish.attrs["key"] == _spec(0).content_key()
        assert finish.attrs["probe"] == "payments"
        assert finish.attrs["wall_time"] == 0.25
        assert finish.attrs["counters"] == {"kernel.rows_ingested": 7}


class TestFeedStatus:
    def test_complete_run(self, tmp_path):
        status = feed_status(read_feed(_write_feed(tmp_path)))
        assert status.name == "grid"
        assert (status.total, status.reused) == (3, 1)
        assert (status.started, status.finished, status.errors) == (2, 1, 1)
        assert status.completed == 3
        assert status.remaining == 0
        assert status.in_flight == 0
        assert status.complete
        assert status.error_classes == {"GraphError": 1}
        assert status.probe_errors == {"payments": 1}
        assert status.failed_cells == [(_spec(1).content_key(), "GraphError")]
        assert status.counters == {"kernel.rows_ingested": 10}
        assert status.scenario_time == pytest.approx(0.5)

    def test_truncated_prefix_reports_correct_counts(self, tmp_path):
        path = _write_feed(tmp_path)
        lines = open(path).read().splitlines()
        # Cut after the first completion record, mid-way through the
        # next one (a kill mid-append).
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:5]) + "\n" + lines[5][:20])
        status = feed_status(read_feed(path))
        assert (status.started, status.finished, status.errors) == (2, 1, 0)
        assert status.reused == 1
        assert status.in_flight == 1
        assert status.remaining == 1
        assert not status.complete

    def test_rate_and_eta_from_record_stamps(self, tmp_path):
        path = _write_feed(tmp_path)
        events = read_feed(path)
        # Re-stamp deterministically: 1 second per record.
        for index, event in enumerate(events):
            event.wall_time = 100.0 + index
        status = feed_status(events)
        assert status.elapsed == pytest.approx(6.0)
        assert status.rate == pytest.approx(2 / 6.0)
        assert status.eta == pytest.approx(0.0)  # nothing remaining
        assert status.to_json_obj()["rate"] == status.rate

    def test_unstamped_feed_has_no_rate(self, tmp_path):
        status = feed_status(read_feed(_write_feed(tmp_path, stamp_wall=False)))
        assert status.elapsed == 0.0
        assert status.rate == 0.0
        assert status.eta is None

    def test_single_record_feed_reports_na_not_nonsense(self, tmp_path):
        # Regression: a feed with exactly one record (a run killed the
        # instant it started) has one wall stamp — no interval to
        # derive a rate from.  Status must stay rate-less and render
        # "n/a" instead of dividing by a zero elapsed time.
        with SweepFeed(str(tmp_path)) as feed:
            feed.sweep_start(name="grid", total=4, pending=4, reused=0,
                             workers=1)
        events = read_feed(feed_path(str(tmp_path)))
        assert len(events) == 1
        status = feed_status(events)
        assert status.elapsed == 0.0
        assert status.rate == 0.0
        assert status.eta is None
        text = render_status(status)
        assert "rate:  n/a" in text
        assert "eta:   n/a for 4 cells" in text

    def test_identical_stamps_do_not_divide_by_zero(self, tmp_path):
        # Two completions inside the stamp resolution: elapsed is zero,
        # so the rate must stay unknown rather than infinite.
        events = read_feed(_write_feed(tmp_path))
        for event in events:
            event.wall_time = 100.0
        status = feed_status(events)
        assert status.elapsed == 0.0
        assert status.rate == 0.0
        assert status.eta is None

    def test_empty_feed(self):
        status = feed_status([])
        assert status.total == 0 and status.completed == 0
        assert not status.complete


class TestRendering:
    def test_render_status_mentions_counts_and_errors(self, tmp_path):
        status = feed_status(read_feed(_write_feed(tmp_path)))
        text = render_status(status)
        assert "3/3 cells done" in text
        assert "GraphError x1" in text
        assert f"[GraphError] {_spec(1).content_key()}" in text
        assert "kernel.rows_ingested" in text

    def test_render_event_lines(self, tmp_path):
        events = read_feed(_write_feed(tmp_path))
        lines = [render_event(e) for e in events]
        assert any("cell_error" in line and "GraphError" in line for line in lines)
        assert all(line for line in lines)


def _write_settlement_feed(directory):
    """A feed whose cells carry the bank's settlement counters."""
    specs = [_spec(seed, probe="settlement") for seed in (0, 1)]
    with SweepFeed(str(directory)) as feed:
        feed.sweep_start(name="grid", total=2, pending=2, reused=0, workers=1)
        for index, spec in enumerate(specs):
            feed.cell_start(spec)
            feed.cell_result(
                _result(spec),
                {
                    "bank.nets": 1,
                    "bank.flows_settled": 240 + index,
                    "bank.transfer_records": 156,
                    "bank.net_transfers": 15,
                    "bank.net_payouts": 47,
                    "bank.forced_settlements": index,
                    "bank.deposit_draws": index,
                },
            )
        feed.sweep_finish(completed=2, failures=0)
    return feed_path(str(directory))


class TestSettlementStatus:
    def test_settlement_line_sums_bank_counters(self, tmp_path):
        status = feed_status(read_feed(_write_settlement_feed(tmp_path)))
        assert status.counters["bank.flows_settled"] == 481
        assert status.counters["bank.net_transfers"] == 30
        text = render_status(status)
        assert (
            "settlement: 481 flow(s) settled into 30 net transfer(s) "
            "(312 per-flow records), 1 forced, 1 deposit draw(s)" in text
        )

    def test_no_settlement_line_without_bank_counters(self, tmp_path):
        status = feed_status(read_feed(_write_feed(tmp_path)))
        assert "settlement:" not in render_status(status)

    def test_truncated_feed_keeps_partial_settlement_totals(self, tmp_path):
        path = _write_settlement_feed(tmp_path)
        lines = open(path).read().splitlines()
        # Kill mid-append during the second cell's finish record: the
        # status must reduce the intact prefix (one finished cell) and
        # still render its settlement roll-up.
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:4]) + "\n" + lines[4][:25])
        status = feed_status(read_feed(path))
        assert (status.started, status.finished) == (2, 1)
        assert status.in_flight == 1
        assert not status.complete
        assert status.counters["bank.flows_settled"] == 240
        text = render_status(status)
        assert "settlement: 240 flow(s) settled into 15 net transfer(s)" in text


class TestFeedFollower:
    def test_poll_yields_only_fresh_records(self, tmp_path):
        follower = FeedFollower(feed_path(str(tmp_path)))
        assert follower.poll() == []  # file may not exist yet
        path = _write_feed(tmp_path)
        first = follower.poll()
        assert len(first) == 7
        assert follower.poll() == []
        with open(path, "a") as handle:
            handle.write('{"kind": "marker", "name": "x", "seq": 99, '
                         '"sim_time": null, "attrs": {}}\n')
        assert [e.name for e in follower.poll()] == ["x"]

    def test_follow_bounded_by_max_polls(self, tmp_path):
        _write_feed(tmp_path)
        follower = FeedFollower(feed_path(str(tmp_path)))
        events = list(follower.follow(poll_interval=0.0, max_polls=2))
        assert len(events) == 7
