"""Checked construction across reconvergence epochs.

Reproduces: Section 4 of Shneidman & Parkes (PODC'04) in the
recomputation setting — checker mirrors must re-anchor at every epoch
boundary, a missed :meth:`MirrorKernelPool.new_epoch` bump must be
detected (loud pool stats, never silent corruption), and every
catalogued construction deviation must still be caught when the
network has already reconverged once or twice.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulRoutingNode,
    construction_deviations,
    faithful_deviant_factory,
)
from repro.faithful.epochs import run_checked_churn
from repro.faithful.manipulations import _deviant_class
from repro.routing import figure1_graph
from repro.sim.churn import ChurnEvent, ChurnSchedule, random_churn_schedule
from repro.workloads import random_biconnected_graph, uniform_all_pairs


def cost_schedule(epochs=2):
    """A deterministic membership-preserving schedule on figure 1."""
    nodes = ("C", "D", "A", "X")
    return ChurnSchedule(
        epochs=tuple(
            (ChurnEvent(kind="cost", node=nodes[i % len(nodes)],
                        cost=2.0 + i),)
            for i in range(epochs)
        )
    )


def link_schedule():
    """Gain and lose a figure-1 chord (biconnected throughout —
    figure 1 has no removable link of its own)."""
    return ChurnSchedule(
        epochs=(
            (ChurnEvent(kind="link-up", link=("A", "C")),),
            (ChurnEvent(kind="link-down", link=("A", "C")),),
        )
    )


class TestObedientEpochs:
    """Obedient networks across epochs: zero flags, verified digests
    (run_checked_churn's own oracle), shared/private parity."""

    @pytest.mark.parametrize("schedule_fn", [cost_schedule, link_schedule])
    def test_no_flags_any_epoch(self, schedule_fn):
        run = run_checked_churn(figure1_graph(), schedule_fn())
        assert run.initial.flags == []
        for report in run.epochs:
            assert report.flags == []
        assert run.all_flags == []
        assert run.seed_mismatches == 0
        assert run.kernel_stats().shared_hits > 0

    def test_epoch_reports_carry_their_graphs(self):
        run = run_checked_churn(figure1_graph(), cost_schedule(2))
        assert [r.epoch for r in run.epochs] == [1, 2]
        assert run.epochs[0].graph.cost("C") == 2.0
        assert run.epochs[1].graph.cost("D") == 3.0
        assert run.graph is run.epochs[-1].graph
        for report in run.epochs:
            assert report.phase1_events > 0 and report.phase2_events > 0

    def test_shared_vs_private_parity_across_epochs(self):
        rng = random.Random(5)
        graph = random_biconnected_graph(8, rng)
        schedule = random_churn_schedule(
            graph,
            random.Random(11),
            epochs=2,
            events_per_epoch=1,
            kinds=("cost", "link-down", "link-up"),
            require="biconnected",
        )
        runs = {
            mode: run_checked_churn(graph, schedule, shared_checking=mode)
            for mode in (True, False)
        }
        for mode, run in runs.items():
            assert run.all_flags == []
        shared_nodes, private_nodes = runs[True].nodes, runs[False].nodes
        for node_id in shared_nodes:
            assert (
                shared_nodes[node_id].comp.full_digest()
                == private_nodes[node_id].comp.full_digest()
            )
            for principal, mirror in shared_nodes[node_id].mirrors.items():
                twin = private_nodes[node_id].mirrors[principal]
                assert mirror.routing_digest() == twin.routing_digest()
                assert mirror.pricing_digest() == twin.pricing_digest()
        assert runs[True].seed_mismatches == 0
        assert runs[False].kernel_stats().shared_hits == 0

    def test_traffic_routed_and_paid_every_epoch(self):
        graph = figure1_graph()
        run = run_checked_churn(
            graph, cost_schedule(2), traffic=uniform_all_pairs(graph)
        )
        for report in (run.initial, *run.epochs):
            assert report.routed_flows == 30
            assert report.unroutable_flows == 0
            assert report.payments_total > 0

    def test_membership_churn_is_rejected(self):
        schedule = ChurnSchedule.single(ChurnEvent(kind="leave", node="B"))
        with pytest.raises(SimulationError):
            run_checked_churn(figure1_graph(), schedule)


class TestMissedEpochBump:
    """Satellite regression: skipping MirrorKernelPool.new_epoch on
    reconvergence must be loud (sharing refused, mismatches counted),
    never a silent reuse of a consumed op log."""

    def test_missed_bump_is_detected_not_silent(self):
        graph = figure1_graph()
        schedule = cost_schedule(1)
        bumped = run_checked_churn(graph, schedule, epoch_bump=True)
        skipped = run_checked_churn(graph, schedule, epoch_bump=False)
        assert bumped.seed_mismatches == 0
        # Every mirror's acquire() is refused against the stale epoch.
        assert skipped.seed_mismatches > 0

    def test_missed_bump_still_converges_correctly(self):
        """The fallback is per-neighbour replay: digests stay correct
        (verify=True would raise otherwise) and no false flags fire."""
        run = run_checked_churn(
            figure1_graph(), cost_schedule(2), epoch_bump=False, verify=True
        )
        assert run.all_flags == []
        assert run.seed_mismatches > 0

    def test_bumped_epochs_share_again(self):
        """With the bump in place, reconvergence epochs keep sharing:
        hits strictly grow after the second construction."""
        graph = figure1_graph()
        single = run_checked_churn(graph, ChurnSchedule(epochs=()))
        churned = run_checked_churn(graph, cost_schedule(2))
        assert (
            churned.kernel_stats().shared_hits
            > single.kernel_stats().shared_hits
        )


#: Deviations whose mixin misbehaves on *every* construction pass and
#: is caught by the checker mirrors themselves.  ``copy-spoof`` fires
#: once per node lifetime and the digest lies surface at the bank's
#: checkpoint comparison, so those are pinned via the epoch-injection
#: seam below instead.
PERSISTENT_DEVIATIONS = [
    s.name
    for s in construction_deviations()
    if s.name
    not in ("cost-lie", "copy-spoof", "routing-digest-lie",
            "pricing-digest-lie")
]

ALL_CONSTRUCTION_DEVIATIONS = [
    s.name for s in construction_deviations() if s.name != "cost-lie"
]


def bank_digest_disagreement(nodes):
    """The BANK1/BANK2 checkpoint comparison: does any checker's
    replayed digest disagree with what its principal would report?

    Catches both directions of digest fraud — a principal reporting a
    fabricated digest against honest mirrors, and a lazy checker whose
    stale mirror disagrees with an honest principal's report.
    """
    for checker_id in sorted(nodes, key=repr):
        for principal, mirror in sorted(
            nodes[checker_id].mirrors.items(), key=lambda kv: repr(kv[0])
        ):
            if mirror.comp is None:
                continue
            node = nodes[principal]
            if (
                mirror.routing_digest() != node.report_routing_digest()
                or mirror.pricing_digest() != node.report_pricing_digest()
            ):
                return True
    return False


class TestDeviantEpochs:
    """Persistently deviating nodes are re-caught at every epoch's
    checkpoint, and each flag lands in the report of the epoch that
    raised it."""

    @pytest.fixture(scope="class")
    def deviant_runs(self):
        graph = figure1_graph()
        runs = {}
        for name in PERSISTENT_DEVIATIONS:
            spec = DEVIATION_CATALOGUE[name]
            runs[name] = run_checked_churn(
                graph,
                cost_schedule(2),
                node_factory=faithful_deviant_factory(spec, "C"),
                verify=False,  # deviant tables need not match the oracle
            )
        return runs

    @pytest.mark.parametrize("deviation", PERSISTENT_DEVIATIONS)
    def test_detected_in_every_epoch(self, deviant_runs, deviation):
        run = deviant_runs[deviation]
        assert run.initial.flags, f"{deviation} missed at initial construction"
        for report in run.epochs:
            assert report.flags, (
                f"{deviation} missed in reconvergence epoch {report.epoch}"
            )

    @pytest.mark.parametrize("deviation", PERSISTENT_DEVIATIONS)
    def test_flags_carry_their_epoch(self, deviant_runs, deviation):
        run = deviant_runs[deviation]
        epochs_seen = {epoch for epoch, _flag in run.all_flags}
        # The deviation fired in the later epochs, not just epoch 0,
        # and the per-epoch reports partition the flag multiset.
        assert 2 in epochs_seen
        assert sorted(
            flag for report in (run.initial, *run.epochs)
            for flag in report.flags
        ) == sorted(flag for _epoch, flag in run.all_flags)

    def test_shared_and_private_agree_on_deviant_epochs(self):
        spec = DEVIATION_CATALOGUE[PERSISTENT_DEVIATIONS[0]]
        runs = {
            mode: run_checked_churn(
                figure1_graph(),
                cost_schedule(2),
                shared_checking=mode,
                node_factory=faithful_deviant_factory(spec, "C"),
                verify=False,
            )
            for mode in (True, False)
        }
        shared = sorted(runs[True].all_flags, key=repr)
        private = sorted(runs[False].all_flags, key=repr)
        assert shared == private and shared


class TestEpochInjectedDeviations:
    """The ISSUE's headline deviant property: every catalogued
    construction deviation is still detected when *injected* in epoch
    2 — a node that behaved through the initial construction and the
    first reconvergence turns rational afterwards.  Injection swaps
    the node's class through the ``on_epoch_start`` seam (state is
    untouched; only the deviation seams resolve differently)."""

    @pytest.mark.parametrize("deviation", ALL_CONSTRUCTION_DEVIATIONS)
    def test_injected_in_epoch_two_is_detected(self, deviation):
        spec = DEVIATION_CATALOGUE[deviation]
        deviant_cls = _deviant_class(FaithfulRoutingNode, spec)

        def inject(epoch, nodes):
            if epoch == 2:
                nodes["C"].__class__ = deviant_cls
                # Dispatch caches bound handlers; rebind through the
                # deviant class so message-seam overrides take effect.
                nodes["C"]._handlers.clear()

        run = run_checked_churn(
            figure1_graph(),
            cost_schedule(2),
            on_epoch_start=inject,
            verify=False,
        )
        # Clean while everyone was obedient.
        assert run.initial.flags == []
        assert run.epochs[0].flags == []
        # Caught in the epoch the deviation was injected: either by the
        # checkers' own checkpoint flags or by the bank's digest
        # comparison (the digest lies' detection point).
        detected = bool(run.epochs[1].flags) or bank_digest_disagreement(
            run.nodes
        )
        assert detected, f"{deviation} undetected after epoch-2 injection"
