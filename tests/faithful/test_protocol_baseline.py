"""Soundness of the faithful protocol on all-obedient networks.

The detector must never flag a faithful run (no false positives), the
construction outcome must equal the plain protocol's and the oracle's,
and the economics must balance.
"""

import random

import pytest

from repro.faithful import FaithfulFPSSProtocol, PlainFPSSProtocol
from repro.routing import (
    figure1_graph,
    route_payments,
)
from repro.workloads import (
    random_biconnected_graph,
    ring_graph,
    uniform_all_pairs,
    wheel_graph,
)


class TestFaithfulBaselineFigure1:
    @pytest.fixture(autouse=True)
    def _run(self, fig1, fig1_traffic):
        self.graph = fig1
        self.traffic = fig1_traffic
        self.result = FaithfulFPSSProtocol(fig1, fig1_traffic).run()

    def test_progresses_without_restarts(self):
        assert self.result.progressed
        assert self.result.detection.restarts == 0

    def test_no_flags_raised(self):
        assert self.result.detection.all_flags == []
        assert not self.result.detection.detected_any

    def test_no_penalties(self):
        assert all(p == 0.0 for p in self.result.penalties.values())

    def test_charges_match_vcg_oracle(self):
        """Each source is charged exactly the oracle's VCG payments."""
        for source in self.graph.nodes:
            expected = 0.0
            for destination in self.graph.nodes:
                if destination == source:
                    continue
                expected += route_payments(
                    self.graph, source, destination
                ).total_payment
            assert self.result.charged[source] == pytest.approx(expected)

    def test_money_conservation(self):
        """Every unit charged is received by some transit node."""
        assert sum(self.result.charged.values()) == pytest.approx(
            sum(self.result.received.values())
        )

    def test_transit_profit_non_negative(self):
        """VCG payments cover true transit costs for obedient nodes."""
        for node in self.graph.nodes:
            margin = self.result.received[node] - self.result.incurred[node]
            assert margin >= -1e-9

    def test_utilities_match_components(self):
        for node in self.graph.nodes:
            assert self.result.utilities[node] == pytest.approx(
                self.result.received[node]
                - self.result.charged[node]
                - self.result.penalties[node]
                - self.result.incurred[node]
            )


class TestFaithfulEqualsPlainWhenObedient:
    @pytest.mark.parametrize("size", [4, 5])
    def test_same_utilities_on_rings(self, size):
        graph = ring_graph(size, random.Random(size))
        traffic = uniform_all_pairs(graph)
        faithful = FaithfulFPSSProtocol(graph, traffic).run()
        plain = PlainFPSSProtocol(graph, traffic).run()
        for node in graph.nodes:
            assert faithful.utilities[node] == pytest.approx(
                plain.utilities[node]
            )

    def test_same_utilities_on_wheel(self):
        graph = wheel_graph(5, random.Random(2))
        traffic = uniform_all_pairs(graph)
        faithful = FaithfulFPSSProtocol(graph, traffic).run()
        plain = PlainFPSSProtocol(graph, traffic).run()
        for node in graph.nodes:
            assert faithful.utilities[node] == pytest.approx(
                plain.utilities[node]
            )


class TestOverheadAccounting:
    def test_checker_work_counted(self, fig1, fig1_traffic):
        faithful = FaithfulFPSSProtocol(fig1, fig1_traffic).run()
        plain = PlainFPSSProtocol(fig1, fig1_traffic).run()
        assert faithful.metrics["total_checker_computations"] > 0
        assert plain.metrics["total_checker_computations"] == 0
        # Redundancy and copies make the faithful run strictly dearer.
        assert (
            faithful.metrics["total_messages"]
            > plain.metrics["total_messages"]
        )

    def test_random_graph_baseline_clean(self):
        rng = random.Random(77)
        graph = random_biconnected_graph(5, rng)
        result = FaithfulFPSSProtocol(graph, uniform_all_pairs(graph)).run()
        assert result.progressed
        assert not result.detection.detected_any


class TestPreconditions:
    def test_non_biconnected_graph_rejected(self):
        from repro.errors import NotBiconnectedError
        from repro.routing import ASGraph

        chain = ASGraph({"a": 1, "b": 1, "c": 1}, [("a", "b"), ("b", "c")])
        with pytest.raises(NotBiconnectedError):
            FaithfulFPSSProtocol(chain, {})
        with pytest.raises(NotBiconnectedError):
            PlainFPSSProtocol(chain, {})

    def test_zero_volume_flows_skipped(self, fig1):
        result = FaithfulFPSSProtocol(fig1, {("X", "Z"): 0.0}).run()
        assert result.progressed
        assert all(c == 0.0 for c in result.charged.values())
