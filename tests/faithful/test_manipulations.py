"""Detection and incentive tests for every catalogued manipulation.

These tests operationalise Theorem 1: under the extended specification
no catalogued deviation strictly profits, construction deviations are
caught by the BANK1/BANK2 checkpoints, and execution deviations are
caught at settlement.  The plain-FPSS counterparts document which
manipulations *do* profit without the extension.
"""

import pytest

from repro.errors import MechanismError
from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    PlainFPSSProtocol,
    construction_deviations,
    execution_deviations,
    faithful_deviant_factory,
    plain_deviant_factory,
)
from repro.routing import figure1_graph
from repro.workloads import uniform_all_pairs

GRAPH = figure1_graph()
TRAFFIC = uniform_all_pairs(GRAPH)
TARGET = "C"  # the paper's Example 1 manipulator


@pytest.fixture(scope="module")
def faithful_baseline():
    return FaithfulFPSSProtocol(GRAPH, TRAFFIC).run()


@pytest.fixture(scope="module")
def plain_baseline():
    return PlainFPSSProtocol(GRAPH, TRAFFIC).run()


def run_faithful(spec, target=TARGET):
    return FaithfulFPSSProtocol(
        GRAPH, TRAFFIC, node_factory=faithful_deviant_factory(spec, target)
    ).run()


def run_plain(spec, target=TARGET):
    return PlainFPSSProtocol(
        GRAPH, TRAFFIC, node_factory=plain_deviant_factory(spec, target)
    ).run()


class TestCatalogueStructure:
    def test_catalogue_covers_all_four_manipulation_arms(self):
        names = set(DEVIATION_CATALOGUE)
        # Section 4.3's manipulations 1-4 plus execution frauds.
        assert {"copy-drop", "copy-alter", "copy-spoof"} <= names
        assert {"false-route-announce", "route-suppress"} <= names
        assert {"false-price-announce"} <= names
        assert {"charge-understate", "payment-underreport"} <= names

    def test_stage_partition(self):
        names = {s.name for s in construction_deviations()} | {
            s.name for s in execution_deviations()
        }
        assert names == set(DEVIATION_CATALOGUE)

    def test_with_params_override(self):
        spec = DEVIATION_CATALOGUE["cost-lie"].with_params(declared=9.0)
        assert spec.params["declared"] == 9.0
        assert DEVIATION_CATALOGUE["cost-lie"].params.get("declared") is None

    def test_plain_factory_rejects_faithful_only(self):
        with pytest.raises(MechanismError, match="no counterpart"):
            plain_deviant_factory(DEVIATION_CATALOGUE["copy-drop"], TARGET)


@pytest.mark.parametrize(
    "name", [s.name for s in construction_deviations() if s.name != "cost-lie"]
)
class TestConstructionDetection:
    def test_detected_and_unprofitable(self, name, faithful_baseline):
        spec = DEVIATION_CATALOGUE[name]
        result = run_faithful(spec)
        assert result.detection.detected_any, f"{name} went undetected"
        gain = result.utilities[TARGET] - faithful_baseline.utilities[TARGET]
        assert gain <= 1e-9, f"{name} profited by {gain}"


@pytest.mark.parametrize("name", [s.name for s in execution_deviations()])
class TestExecutionDetection:
    def test_detected_and_unprofitable(self, name, faithful_baseline):
        spec = DEVIATION_CATALOGUE[name]
        result = run_faithful(spec)
        assert result.progressed  # execution frauds pass construction
        assert result.detection.detected_any, f"{name} went undetected"
        gain = result.utilities[TARGET] - faithful_baseline.utilities[TARGET]
        assert gain <= 1e-9, f"{name} profited by {gain}"


class TestCostLie:
    """Example 1's deviation is permitted (consistent revelation) but
    neutralised by VCG: undetected AND unprofitable."""

    def test_not_detected(self):
        result = run_faithful(DEVIATION_CATALOGUE["cost-lie"])
        assert result.progressed
        assert not result.detection.detected_any

    def test_not_profitable_faithful(self, faithful_baseline):
        result = run_faithful(DEVIATION_CATALOGUE["cost-lie"])
        assert (
            result.utilities[TARGET]
            <= faithful_baseline.utilities[TARGET] + 1e-9
        )

    def test_not_profitable_plain_under_vcg(self, plain_baseline):
        result = run_plain(DEVIATION_CATALOGUE["cost-lie"])
        assert (
            result.utilities[TARGET]
            <= plain_baseline.utilities[TARGET] + 1e-9
        )


class TestPlainIsManipulable:
    """The holes the extension closes: strict gains in plain FPSS."""

    @pytest.mark.parametrize(
        "name",
        ["false-route-announce", "charge-understate", "payment-underreport",
         "packet-drop"],
    )
    def test_profitable_in_plain(self, name, plain_baseline):
        result = run_plain(DEVIATION_CATALOGUE[name])
        gain = result.utilities[TARGET] - plain_baseline.utilities[TARGET]
        assert gain > 1e-9, f"{name} did not profit in plain FPSS"

    @pytest.mark.parametrize(
        "name",
        ["false-route-announce", "charge-understate", "payment-underreport",
         "packet-drop"],
    )
    def test_same_deviation_never_profits_in_faithful(
        self, name, faithful_baseline
    ):
        result = run_faithful(DEVIATION_CATALOGUE[name])
        gain = result.utilities[TARGET] - faithful_baseline.utilities[TARGET]
        assert gain <= 1e-9


class TestCheckpointSemantics:
    def test_construction_deviant_blocks_progress(self):
        result = run_faithful(DEVIATION_CATALOGUE["false-route-announce"])
        # A persistent construction deviant exhausts the restart
        # budget: the mechanism halts rather than certify bad tables.
        assert not result.progressed
        assert result.detection.restarts >= 1

    def test_settlement_identifies_the_culprit(self):
        result = run_faithful(DEVIATION_CATALOGUE["payment-underreport"])
        assert TARGET in result.detection.suspects()

    def test_execution_deviant_pays_penalty(self):
        result = run_faithful(DEVIATION_CATALOGUE["payment-underreport"])
        assert result.penalties[TARGET] > 0
        innocent = [n for n in GRAPH.nodes if n != TARGET]
        assert all(result.penalties[n] == 0.0 for n in innocent)

    def test_packet_drop_denies_payment(self, faithful_baseline):
        result = run_faithful(DEVIATION_CATALOGUE["packet-drop"])
        assert result.received[TARGET] < faithful_baseline.received[TARGET]


class TestOtherTargets:
    """Deviations are caught wherever they sit in the topology."""

    @pytest.mark.parametrize("target", ["A", "D", "X"])
    def test_false_route_announce_caught_everywhere(self, target):
        spec = DEVIATION_CATALOGUE["false-route-announce"]
        result = run_faithful(spec, target=target)
        assert result.detection.detected_any

    @pytest.mark.parametrize("target", ["A", "D"])
    def test_payment_underreport_caught_everywhere(self, target):
        spec = DEVIATION_CATALOGUE["payment-underreport"]
        result = run_faithful(spec, target=target)
        assert result.detection.detected_any
