"""Unit tests for the faithful node's reporting and setup surface."""

import pytest

from repro.errors import ProtocolError
from repro.faithful import (
    BANK_ID,
    BankNode,
    FaithfulFPSSProtocol,
    FaithfulRoutingNode,
)
from repro.routing import figure1_graph
from repro.sim import Message, NetworkTopology, SigningAuthority, Simulator
from repro.workloads import uniform_all_pairs


def converged_network(fig1, fig1_traffic):
    """Run a full faithful protocol and hand back live pieces.

    The protocol object rebuilds its own simulator, so for node-level
    inspection we re-run construction manually on a fresh simulator.
    """
    from repro.routing.convergence import topology_from_graph

    signing = SigningAuthority()
    simulator = Simulator(topology_from_graph(fig1))
    nodes = {}
    for node_id in fig1.nodes:
        signing.register(node_id)
        node = FaithfulRoutingNode(node_id, fig1.cost(node_id), signing)
        nodes[node_id] = node
        simulator.add_node(node)
    signing.register(BANK_ID)
    bank = BankNode(signing)
    simulator.add_node(bank, well_known=True)

    for node_id, node in sorted(nodes.items(), key=repr):
        simulator.schedule_local(node_id, 0.0, node.start_phase1)
    simulator.run_until_quiescent()
    for node_id, node in sorted(nodes.items(), key=repr):
        node.prepare_checking(
            {n: fig1.neighbors(n) for n in fig1.neighbors(node_id)}
        )
        simulator.schedule_local(node_id, 0.0, node.start_phase2)
    simulator.run_until_quiescent()
    return simulator, nodes, bank


@pytest.fixture(scope="module")
def network(request):
    fig1 = figure1_graph()
    return converged_network(fig1, uniform_all_pairs(fig1))


class TestSetup:
    def test_phase2_requires_connectivity_info(self, fig1):
        signing = SigningAuthority()
        topo = NetworkTopology.from_edges([("A", "X"), ("A", "Z")])
        sim = Simulator(topo)
        nodes = {}
        for name in ("A", "X", "Z"):
            signing.register(name)
            nodes[name] = FaithfulRoutingNode(name, 5.0, signing)
            sim.add_node(nodes[name])
        nodes["A"].start_phase1()
        with pytest.raises(ProtocolError, match="prepare_checking"):
            nodes["A"].start_phase2()

    def test_phase2_requires_phase1(self, fig1):
        signing = SigningAuthority()
        signing.register("A")
        node = FaithfulRoutingNode("A", 5.0, signing)
        with pytest.raises(ProtocolError, match="before 1"):
            node.start_phase2()


class TestMirrorsAfterConvergence:
    def test_every_neighbor_mirrored(self, network, fig1=figure1_graph()):
        _, nodes, _ = network
        for node_id, node in nodes.items():
            assert set(node.mirrors) == set(fig1.neighbors(node_id))

    def test_mirrors_agree_with_principals(self, network):
        _, nodes, _ = network
        for node in nodes.values():
            for principal_id, mirror in node.mirrors.items():
                principal = nodes[principal_id]
                assert (
                    mirror.routing_digest()
                    == principal.comp.routing_digest()
                )
                assert (
                    mirror.pricing_digest()
                    == principal.comp.pricing_digest()
                )

    def test_no_flags_on_obedient_network(self, network):
        _, nodes, _ = network
        for node in nodes.values():
            for mirror in node.mirrors.values():
                assert mirror.checkpoint_flags() == []


class TestBankReporting:
    def test_bank1_report_shape(self, network):
        simulator, nodes, bank = network
        bank.request_reports("bank1", sorted(nodes, key=repr))
        simulator.run_until_quiescent()
        report = bank.reports["bank1"]["A"]
        assert "routing_digest" in report
        mirror_digests = dict(report["mirror_routing"])
        assert set(mirror_digests) == set(nodes["A"].mirrors)

    def test_reports_are_signature_checked(self, network):
        _, nodes, bank = network
        from repro.errors import SignatureError

        forged = Message(
            src="A",
            dst=BANK_ID,
            kind="bank-report",
            payload={"stage": "bank1", "routing_digest": "x"},
        )
        with pytest.raises(SignatureError):
            bank.on_bank_report(forged)

    def test_unknown_bank_stage_rejected(self, network):
        _, nodes, bank = network
        node = nodes["A"]
        request = Message(
            src=BANK_ID,
            dst="A",
            kind="bank-request",
            payload={"stage": "audit-me"},
        )
        signed = node.signing.sign(BANK_ID, request)
        with pytest.raises(ProtocolError, match="unknown bank stage"):
            node.on_bank_request(signed)


class TestExecutionReport:
    def test_report_contains_all_sections(self, fig1):
        result_protocol = FaithfulFPSSProtocol(
            fig1, {("X", "Z"): 2.0, ("B", "D"): 1.0}
        )
        # Access the node state through a full run with tracing.
        result = result_protocol.run()
        assert result.progressed
        # X's flow crossed D and C; both were charged and received.
        assert result.charged["X"] > 0
        assert result.received["C"] > 0
        assert result.received["D"] > 0
        # The direct B->D flow has no transit nodes: no charges.
        assert result.charged["B"] == 0.0
