"""Per-flow vs. columnar vs. netted settlement equivalence.

The columnar engine behind :meth:`BankNode.settle` and the epoch
netting behind :meth:`BankNode.settle_netted` are pure performance
reworks: both must produce *bit-identical* settlement records, flag
lists, and per-node net money positions to the per-flow oracle
(:meth:`BankNode.settle_per_flow`) on every input — honest traffic,
every catalogued manipulation, and reports collected across churn
epochs.  Both engines feed the same fsum-reduced contribution tally,
so equality here is exact ``==``, never ``approx``.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faithful import (
    DEVIATION_CATALOGUE,
    BankNode,
    FaithfulFPSSProtocol,
    faithful_deviant_factory,
    net_positions,
    settlement_audit,
    synthesize_execution_reports,
)
from repro.faithful.epochs import run_checked_churn
from repro.routing import figure1_graph
from repro.sim.churn import ChurnEvent, ChurnSchedule
from repro.workloads import random_biconnected_graph, uniform_all_pairs

GRAPH = figure1_graph()
TRAFFIC = uniform_all_pairs(GRAPH)
TARGET = "C"  # the paper's Example 1 manipulator


def assert_engines_equivalent(bank, node_ids, declared_costs, epsilon):
    """All three settlement paths agree exactly on the same reports."""
    per_flow_records, per_flow_flags = bank.settle_per_flow(
        node_ids, declared_costs, epsilon=epsilon
    )
    columnar_records, columnar_flags = bank.settle(
        node_ids, declared_costs, epsilon=epsilon
    )
    assert columnar_records == per_flow_records
    assert columnar_flags == per_flow_flags

    netted = bank.settle_netted(node_ids, declared_costs, epsilon=epsilon)
    assert netted.records == per_flow_records
    assert netted.flags == per_flow_flags

    # Netting compresses the transfer list but must not move money:
    # net positions of the batch transfers are bit-identical to the
    # per-flow transfer list's (same pair-grouped fsum reduction).
    per_flow_positions = net_positions(
        netted.per_flow_transfers, nodes=node_ids
    )
    netted_positions = net_positions(netted.transfers, nodes=node_ids)
    assert netted_positions == per_flow_positions

    # After the epoch close, every pair's audited unpaid balance is
    # exactly zero — the batch transfer discharged the whole epoch.
    for transfer in netted.transfers:
        for payee, _amount in transfer.payouts:
            report = settlement_audit(
                netted.ledger.trace,
                netted.ledger.transfers,
                transfer.debtor,
                payee,
                at_time=0.0,
            )
            assert report.unpaid == 0.0
    return netted


def resettle(protocol):
    """Re-run settlement over the reports a protocol run collected."""
    bank = protocol.bank
    assert bank is not None and protocol.nodes is not None
    if "execution" not in bank.reports:
        return None  # run never reached settlement (no-progress outcome)
    node_ids = tuple(sorted(protocol.nodes, key=repr))
    declared = {
        n: protocol.nodes[n].comp.costs.cost(n)
        for n in node_ids
        if protocol.nodes[n].comp is not None
    }
    return assert_engines_equivalent(
        bank, node_ids, declared, protocol.epsilon
    )


class TestObedientEquivalence:
    def test_figure1_obedient(self):
        protocol = FaithfulFPSSProtocol(GRAPH, TRAFFIC)
        protocol.run()
        netted = resettle(protocol)
        assert netted is not None
        assert netted.flags == []
        assert netted.flows_settled > 0
        # Batch transfers: at most one per debtor principal.
        assert len(netted.transfers) <= len(GRAPH.nodes)

    def test_grouping_collapses_repeated_flows(self):
        reports = synthesize_execution_reports(GRAPH, TRAFFIC, repeats=5)
        bank = BankNode()
        bank.reports["execution"] = reports
        node_ids = tuple(sorted(GRAPH.nodes, key=repr))
        declared = {n: GRAPH.cost(n) for n in node_ids}
        netted = assert_engines_equivalent(bank, node_ids, declared, 0.01)
        assert netted.flows_settled == 5 * netted.flow_groups


@pytest.mark.parametrize("name", sorted(DEVIATION_CATALOGUE))
class TestCatalogueEquivalence:
    """Every catalogued manipulation settles identically on all paths."""

    def test_deviant_run_equivalent(self, name):
        protocol = FaithfulFPSSProtocol(
            GRAPH,
            TRAFFIC,
            node_factory=faithful_deviant_factory(
                DEVIATION_CATALOGUE[name], TARGET
            ),
        )
        protocol.run()
        resettle(protocol)  # None (no execution) is a valid outcome


class TestRandomizedEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        size=st.integers(min_value=4, max_value=12),
        repeats=st.integers(min_value=1, max_value=3),
    )
    def test_synthesized_reports_equivalent(self, seed, size, repeats):
        rng = random.Random(seed)
        graph = random_biconnected_graph(size, rng)
        traffic = uniform_all_pairs(graph)
        reports = synthesize_execution_reports(
            graph, traffic, repeats=repeats
        )
        bank = BankNode()
        bank.reports["execution"] = reports
        node_ids = tuple(sorted(graph.nodes, key=repr))
        declared = {n: graph.cost(n) for n in node_ids}
        netted = assert_engines_equivalent(bank, node_ids, declared, 0.01)
        assert netted.flags == []
        assert netted.flows_settled == repeats * netted.flow_groups


class TestChurnNetting:
    def test_epochs_net_and_conserve(self):
        schedule = ChurnSchedule(
            epochs=(
                (ChurnEvent(kind="cost", node="C", cost=3.0),),
                (ChurnEvent(kind="link-up", link=("A", "C")),),
            )
        )
        run = run_checked_churn(GRAPH, schedule, traffic=TRAFFIC)
        assert run.ledger is not None
        node_count = len(run.nodes)
        epochs = [run.initial] + run.epochs
        for report in epochs:
            assert report.routed_flows > 0
            # One batch transfer per net debtor, at most one per node.
            assert report.net_transfers <= node_count
            assert report.per_flow_transfers >= report.net_payouts
        assert run.ledger.epochs_closed == len(epochs)
        # The whole run conserves money: the obligation trace and the
        # batch transfers net to bit-identical positions.
        node_ids = tuple(sorted(run.nodes, key=repr))
        trace_positions = net_positions(
            [(o.debtor, o.creditor, o.amount) for o in run.ledger.trace],
            nodes=node_ids,
        )
        transfer_positions = net_positions(
            run.ledger.transfers, nodes=node_ids
        )
        assert transfer_positions == trace_positions

    def test_no_traffic_no_ledger(self):
        run = run_checked_churn(
            GRAPH,
            ChurnSchedule(
                epochs=((ChurnEvent(kind="cost", node="C", cost=3.0),),)
            ),
        )
        assert run.ledger is None
        assert run.initial.net_transfers == 0
