"""Tests for the detection vocabulary."""

from repro.faithful import (
    CheckpointDecision,
    DetectionReport,
    Flag,
    FlagKind,
    decode_flag,
    encode_flag,
)


class TestFlag:
    def test_make_sorts_detail(self):
        flag = Flag.make(
            FlagKind.MISROUTE, "c", "p", "execution", z=1, a=2
        )
        assert flag.detail == (("a", 2), ("z", 1))
        assert flag.detail_dict() == {"a": 2, "z": 1}

    def test_wire_roundtrip(self):
        flag = Flag.make(
            FlagKind.COPY_FORGERY, "c", "p", "construction-2", reason="x"
        )
        assert decode_flag(encode_flag(flag)) == flag

    def test_flags_hashable(self):
        one = Flag.make(FlagKind.PACKET_DROP, None, "p", "execution")
        two = Flag.make(FlagKind.PACKET_DROP, None, "p", "execution")
        assert one == two
        assert len({one, two}) == 1


class TestCheckpointDecision:
    def test_deviation_detected(self):
        good = CheckpointDecision(checkpoint="bank1", green_light=True)
        bad = CheckpointDecision(checkpoint="bank1", green_light=False)
        assert not good.deviation_detected
        assert bad.deviation_detected


class TestDetectionReport:
    def test_restart_counting(self):
        report = DetectionReport()
        report.record(CheckpointDecision(checkpoint="bank1", green_light=False))
        report.record(CheckpointDecision(checkpoint="bank1", green_light=True))
        assert report.restarts == 1
        assert report.detected_any

    def test_clean_report(self):
        report = DetectionReport()
        report.record(CheckpointDecision(checkpoint="bank1", green_light=True))
        assert not report.detected_any
        assert report.all_flags == []

    def test_settlement_flags_count(self):
        report = DetectionReport()
        flag = Flag.make(FlagKind.PAYMENT_UNDERREPORT, None, "p", "execution")
        report.settlement_flags.append(flag)
        assert report.detected_any
        assert report.all_flags == [flag]
        assert report.suspects() == ["p"]

    def test_suspects_deduplicated(self):
        report = DetectionReport()
        report.record(
            CheckpointDecision(
                checkpoint="bank1", green_light=False, suspects=["p", "q"]
            )
        )
        report.record(
            CheckpointDecision(
                checkpoint="bank2", green_light=False, suspects=["p"]
            )
        )
        assert report.suspects() == ["p", "q"]


class TestFlagOrdering:
    def test_sort_key_is_repr_stable(self):
        flags = [
            Flag.make(
                FlagKind.BROADCAST_MISMATCH,
                checker=c,
                principal=p,
                phase="construction-2",
            )
            for c, p in [("b", "a"), ("a", "b"), ("a", "a")]
        ]
        ordered = sorted(flags, key=Flag.sort_key)
        assert ordered == sorted(ordered, key=Flag.sort_key)
        # Principal orders before checker in the key.
        assert [f.principal for f in ordered] == ["a", "a", "b"]

    def test_sort_key_distinguishes_detail(self):
        base = dict(
            checker="c", principal="p", phase="execution"
        )
        one = Flag.make(FlagKind.MISROUTE, origin="x", **base)
        two = Flag.make(FlagKind.MISROUTE, origin="y", **base)
        assert one.sort_key() != two.sort_key()
