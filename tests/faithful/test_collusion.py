"""Tests for the collusion boundary (Section 1's 'without collusion')."""

import pytest

from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
)
from repro.faithful.collusion import ComplicitCheckerMixin, coalition_factory
from repro.routing import figure1_graph
from repro.workloads import uniform_all_pairs

GRAPH = figure1_graph()
TRAFFIC = uniform_all_pairs(GRAPH)
SPEC = DEVIATION_CATALOGUE["false-route-announce"]
PRINCIPAL = "C"
CHECKERS = GRAPH.neighbors(PRINCIPAL)


def run_with(accomplices):
    return FaithfulFPSSProtocol(
        GRAPH,
        TRAFFIC,
        node_factory=coalition_factory(SPEC, PRINCIPAL, accomplices),
    ).run()


class TestCoalitionEvasion:
    def test_full_coalition_evades_detection(self):
        result = run_with(CHECKERS)
        assert result.progressed
        assert not result.detection.detected_any

    def test_principal_profits_inside_full_coalition(self):
        baseline = FaithfulFPSSProtocol(GRAPH, TRAFFIC).run()
        result = run_with(CHECKERS)
        assert (
            result.utilities[PRINCIPAL]
            > baseline.utilities[PRINCIPAL] + 1e-9
        )

    @pytest.mark.parametrize("honest_index", range(len(CHECKERS)))
    def test_one_honest_checker_suffices(self, honest_index):
        """Leave any single checker honest: the deviation is caught —
        the paper's 'at least one checker' argument."""
        accomplices = [
            c for i, c in enumerate(CHECKERS) if i != honest_index
        ]
        result = run_with(accomplices)
        assert result.detection.detected_any

    def test_empty_coalition_is_unilateral_case(self):
        result = run_with([])
        assert result.detection.detected_any
        assert not result.progressed


class TestComplicitCheckersAreOtherwiseFaithful:
    def test_accomplices_without_deviant_principal_are_clean(self):
        """Complicit checkers shielding an honest principal change
        nothing observable: the run certifies with no flags."""
        from repro.faithful.manipulations import DeviationSpec
        from repro.specs import ActionClass

        # A 'deviation' that is actually the faithful behaviour.
        class NoopMixin:
            dev_params = {}

        noop = DeviationSpec(
            "noop", NoopMixin, frozenset({ActionClass.COMPUTATION})
        )
        result = FaithfulFPSSProtocol(
            GRAPH,
            TRAFFIC,
            node_factory=coalition_factory(noop, PRINCIPAL, CHECKERS),
        ).run()
        assert result.progressed
        assert not result.detection.detected_any
