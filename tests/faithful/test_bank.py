"""Unit tests for the bank's decisions and settlement arithmetic."""

import pytest

from repro.errors import ProtocolError
from repro.faithful import BANK_ID, BankNode
from repro.sim import NetworkTopology, Simulator


def make_bank_with_reports(stage, reports):
    """A detached bank pre-loaded with collected reports."""
    bank = BankNode()
    bank.reports[stage] = dict(reports)
    return bank


class TestPhase1Decision:
    def test_all_equal_green_lights(self):
        bank = make_bank_with_reports(
            "phase1",
            {n: {"cost_digest": "same"} for n in ("a", "b", "c")},
        )
        decision = bank.decide_phase1(("a", "b", "c"))
        assert decision.green_light
        assert decision.suspects == []

    def test_minority_digest_suspected(self):
        bank = make_bank_with_reports(
            "phase1",
            {
                "a": {"cost_digest": "same"},
                "b": {"cost_digest": "same"},
                "c": {"cost_digest": "different"},
            },
        )
        decision = bank.decide_phase1(("a", "b", "c"))
        assert not decision.green_light
        assert decision.suspects == ["c"]

    def test_missing_report_blocks(self):
        bank = make_bank_with_reports(
            "phase1", {"a": {"cost_digest": "x"}}
        )
        decision = bank.decide_phase1(("a", "b"))
        assert not decision.green_light
        assert "b" in decision.suspects

    def test_unrequested_stage_raises(self):
        with pytest.raises(ProtocolError, match="no reports"):
            BankNode().decide_phase1(("a",))


class TestBank1Decision:
    CHECKERS = {"p": ("c1", "c2"), "c1": ("p",), "c2": ("p",)}

    def make_reports(self, p_digest="good", c1_mirror="good", c2_mirror="good",
                     c1_flags=()):
        return {
            "p": {
                "routing_digest": p_digest,
                "mirror_routing": [("c1", "good"), ("c2", "good")],
                "flags": [],
            },
            "c1": {
                "routing_digest": "good",
                "mirror_routing": [("p", c1_mirror)],
                "flags": list(c1_flags),
            },
            "c2": {
                "routing_digest": "good",
                "mirror_routing": [("p", c2_mirror)],
                "flags": [],
            },
        }

    def test_agreement_green_lights(self):
        bank = make_bank_with_reports("bank1", self.make_reports())
        decision = bank.decide_bank1(self.CHECKERS)
        assert decision.green_light

    def test_principal_vs_checker_mismatch(self):
        bank = make_bank_with_reports(
            "bank1", self.make_reports(p_digest="lie")
        )
        decision = bank.decide_bank1(self.CHECKERS)
        assert not decision.green_light
        assert "p" in decision.suspects

    def test_checker_vs_checker_mismatch(self):
        """Divergent mirrors (spoof fed to a subset) also veto."""
        bank = make_bank_with_reports(
            "bank1", self.make_reports(c2_mirror="diverged")
        )
        decision = bank.decide_bank1(self.CHECKERS)
        assert not decision.green_light
        assert "p" in decision.suspects

    def test_checker_flags_veto(self):
        from repro.faithful import Flag, FlagKind, encode_flag

        flag = Flag.make(
            FlagKind.COPY_MISSING, "c1", "p", "construction-2"
        )
        bank = make_bank_with_reports(
            "bank1", self.make_reports(c1_flags=[encode_flag(flag)])
        )
        decision = bank.decide_bank1(self.CHECKERS)
        assert not decision.green_light
        assert "p" in decision.suspects
        assert decision.flags[0].kind is FlagKind.COPY_MISSING


def execution_report(reported=(), receipts=(), delivered=(), observations=(),
                     flags=()):
    return {
        "reported_payments": list(reported),
        "receipts": list(receipts),
        "delivered": list(delivered),
        "observations": list(observations),
        "flags": list(flags),
    }


class TestSettlement:
    """Flow o -> k -> d: transit k is owed 4.0 per unit."""

    NODES = ("o", "k", "d")
    COSTS = {"o": 1.0, "k": 2.0, "d": 1.0}

    def make_reports(self, reported_total=4.0, k_forwards=True):
        path = ("o", "k", "d")
        reports = {
            "o": execution_report(
                reported=[("k", reported_total)] if reported_total else [],
            ),
            "k": execution_report(
                receipts=[("o", "d", "o", 1.0)],
                observations=[("o", "d", 1.0, path, [("k", 4.0)])],
            ),
            "d": execution_report(
                receipts=[("o", "d", "k", 1.0)] if k_forwards else [],
                delivered=[("o", "d", 1.0)] if k_forwards else [],
            ),
        }
        return reports

    def settle(self, reports, epsilon=0.01):
        bank = make_bank_with_reports("execution", reports)
        return bank.settle(self.NODES, self.COSTS, epsilon=epsilon)

    def test_clean_flow_settles_exactly(self):
        records, flags = self.settle(self.make_reports())
        assert flags == []
        assert records["o"].charged == pytest.approx(4.0)
        assert records["k"].received == pytest.approx(4.0)
        assert records["o"].penalties == 0.0

    def test_underreport_penalised_epsilon_above(self):
        records, flags = self.settle(self.make_reports(reported_total=1.0))
        assert any(f.kind.value == "payment-underreport" for f in flags)
        # Penalty = shortfall + epsilon, and charges enforced in full.
        assert records["o"].penalties == pytest.approx(3.0 + 0.01)
        assert records["o"].charged == pytest.approx(4.0)

    def test_drop_denies_payment_and_penalises(self):
        records, flags = self.settle(self.make_reports(k_forwards=False))
        assert any(f.kind.value == "packet-drop" for f in flags)
        assert records["k"].received == 0.0
        assert records["k"].penalties == pytest.approx(0.01)
        # The origin is not charged for the undelivered segment.
        assert records["o"].charged == pytest.approx(0.0)

    def test_reported_and_expected_totals_recorded(self):
        records, _ = self.settle(self.make_reports())
        assert records["o"].reported_total == pytest.approx(4.0)
        assert records["o"].expected_total == pytest.approx(4.0)


class TestSignedChannel:
    def test_unsigned_report_rejected_when_signing_enabled(self):
        from repro.errors import SignatureError
        from repro.sim import Message, SigningAuthority

        signing = SigningAuthority()
        signing.register(BANK_ID)
        signing.register("a")
        topo = NetworkTopology()
        topo.add_node("a")
        sim = Simulator(topo)
        bank = BankNode(signing)
        sim.add_node(bank, well_known=True)
        unsigned = Message(
            src="a", dst=BANK_ID, kind="bank-report", payload={"stage": "x"}
        )
        with pytest.raises(SignatureError):
            bank.on_bank_report(unsigned)
