"""Batched delivery is observably equivalent in the faithful protocol.

The checker architecture rests on exact replay: mirrors must predict
every broadcast a principal makes.  Batched delivery changes *when*
nodes recompute (once per arrival instant instead of once per
message), so these tests pin the property that actually matters: an
obedient network certifies with zero flags in both modes, and every
catalogued construction manipulation is detected in both modes — the
detection verdict never depends on the delivery mode.
"""

import pytest

from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    construction_deviations,
    faithful_deviant_factory,
)
from repro.routing import figure1_graph
from repro.sim.simulator import Simulator
from repro.workloads import uniform_all_pairs


def run_protocol(graph, traffic, batch_delivery, node_factory=None):
    """One faithful run with the simulator's delivery mode forced."""
    protocol = FaithfulFPSSProtocol(graph, traffic, node_factory=node_factory)
    original_build = protocol._build

    def build():
        simulator, nodes, bank = original_build()
        simulator.batch_delivery = batch_delivery
        return simulator, nodes, bank

    protocol._build = build
    return protocol.run()


@pytest.fixture(scope="module")
def graph():
    return figure1_graph()


@pytest.fixture(scope="module")
def traffic(graph):
    return uniform_all_pairs(graph, volume=1.0)


class TestObedientParity:
    def test_obedient_network_clean_in_both_modes(self, graph, traffic):
        """No false flags: replay stays exact under batching."""
        for batch in (True, False):
            result = run_protocol(graph, traffic, batch_delivery=batch)
            assert result.progressed
            assert result.detection.restarts == 0
            assert not result.detection.detected_any
            assert not result.detection.all_flags

    def test_obedient_economics_identical_across_modes(self, graph, traffic):
        """The settled money flows do not depend on the delivery mode."""
        batched = run_protocol(graph, traffic, batch_delivery=True)
        unbatched = run_protocol(graph, traffic, batch_delivery=False)
        for node in batched.utilities:
            assert batched.utilities[node] == pytest.approx(
                unbatched.utilities[node]
            )
            assert batched.charged[node] == pytest.approx(
                unbatched.charged[node]
            )


class TestDeviantParity:
    @pytest.mark.parametrize(
        "deviation",
        [
            spec.name
            for spec in construction_deviations()
            # A consistent cost lie is a type misreport: VCG makes it
            # unprofitable rather than detectable, in either mode.
            if spec.name != "cost-lie"
        ],
    )
    def test_construction_deviation_detected_in_both_modes(
        self, graph, traffic, deviation
    ):
        """Every catalogued construction manipulation is caught whether
        deliveries are batched or not."""
        spec = DEVIATION_CATALOGUE[deviation]
        verdicts = {}
        for batch in (True, False):
            result = run_protocol(
                graph,
                traffic,
                batch_delivery=batch,
                node_factory=faithful_deviant_factory(spec, "C"),
            )
            verdicts[batch] = result.detection.detected_any
        assert verdicts[True] and verdicts[False]

    def test_cost_lie_parity(self, graph, traffic):
        """The undetectable (but unprofitable) cost lie behaves the
        same in both delivery modes: certified, never flagged."""
        spec = DEVIATION_CATALOGUE["cost-lie"]
        for batch in (True, False):
            result = run_protocol(
                graph,
                traffic,
                batch_delivery=batch,
                node_factory=faithful_deviant_factory(spec, "C"),
            )
            assert result.progressed
            assert not result.detection.detected_any

    @pytest.mark.parametrize("deviation", ["packet-drop", "misroute"])
    def test_execution_deviation_parity(self, graph, traffic, deviation):
        """Execution-phase frauds settle to the same verdict either way."""
        spec = DEVIATION_CATALOGUE[deviation]
        results = {
            batch: run_protocol(
                graph,
                traffic,
                batch_delivery=batch,
                node_factory=faithful_deviant_factory(spec, "C"),
            )
            for batch in (True, False)
        }
        assert (
            results[True].detection.detected_any
            == results[False].detection.detected_any
        )
        assert results[True].progressed == results[False].progressed


def test_simulator_default_is_batched(graph):
    """The incremental engine's batched delivery is the default mode."""
    from repro.routing.convergence import topology_from_graph

    assert Simulator(topology_from_graph(graph)).batch_delivery
