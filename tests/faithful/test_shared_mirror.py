"""Shared-kernel mirrors are bit-identical to per-neighbour replay.

Reproduces: the checker redundancy of Section 4.2/4.3 (PODC'04).  The
shared replay kernel deduplicates the k-fold mirror computation, but
detection is only sound if it changes *nothing observable*: these
tests pin that shared-kernel mirrors emit bit-identical flags and
digests to the retained per-neighbour replay across delivery modes,
heterogeneous link delays, withdrawal-carrying streams, and every
catalogued manipulation — including the deviations that force mirrors
to fork off the shared log (unequal copies, lazy checkers).
"""

import random

import pytest

from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    PrincipalMirror,
    construction_deviations,
    faithful_deviant_factory,
    run_checked_construction,
    verify_checked_network,
)
from repro.faithful.node import encode_flag
from repro.routing import MirrorKernelPool, figure1_graph
from repro.routing.kernel import KIND_PRICE_UPDATE, KIND_RT_UPDATE
from repro.workloads import random_biconnected_graph, uniform_all_pairs


def sorted_flags(detection):
    """Stable, comparable encoding of a run's full flag multiset."""
    return sorted((encode_flag(f) for f in detection.all_flags), key=repr)


def run_protocol(graph, traffic, shared, batch=True, node_factory=None,
                 link_delays=1.0):
    protocol = FaithfulFPSSProtocol(
        graph,
        traffic,
        node_factory=node_factory,
        link_delays=link_delays,
        shared_checking=shared,
    )
    original_build = protocol._build

    def build():
        simulator, nodes, bank = original_build()
        simulator.batch_delivery = batch
        return simulator, nodes, bank

    protocol._build = build
    return protocol.run()


@pytest.fixture(scope="module")
def graph():
    return figure1_graph()


@pytest.fixture(scope="module")
def traffic(graph):
    return uniform_all_pairs(graph, volume=1.0)


class TestObedientParity:
    @pytest.mark.parametrize("batch", [True, False])
    def test_clean_run_identical(self, graph, traffic, batch):
        """Obedient networks: same progress, no flags, same money."""
        shared = run_protocol(graph, traffic, shared=True, batch=batch)
        private = run_protocol(graph, traffic, shared=False, batch=batch)
        assert shared.progressed and private.progressed
        assert not shared.detection.detected_any
        assert not private.detection.detected_any
        assert sorted_flags(shared.detection) == sorted_flags(private.detection)
        for node in shared.utilities:
            assert shared.utilities[node] == pytest.approx(
                private.utilities[node]
            )

    def test_checked_construction_digest_parity(self):
        """Every mirror digest matches in both modes, bit for bit."""
        rng = random.Random(7)
        g = random_biconnected_graph(10, rng)
        runs = {
            mode: run_checked_construction(g, shared_checking=mode)
            for mode in (True, False)
        }
        for mode, checked in runs.items():
            verify_checked_network(g, checked)
        shared_nodes = runs[True].nodes
        private_nodes = runs[False].nodes
        for node_id in shared_nodes:
            for principal in shared_nodes[node_id].mirrors:
                sm = shared_nodes[node_id].mirrors[principal]
                pm = private_nodes[node_id].mirrors[principal]
                assert sm.routing_digest() == pm.routing_digest()
                assert sm.pricing_digest() == pm.pricing_digest()
        # The dedup actually happened: strictly fewer checker-side
        # relaxations, positive shared-hit count, zero forks.
        assert runs[True].kernel_stats.shared_hits > 0
        assert runs[True].kernel_stats.forks == 0
        # Per-neighbour mirrors account their work too (private
        # kernels are collected, not just the pool).
        assert runs[False].kernel_stats.rows_ingested > 0
        assert runs[False].kernel_stats.shared_hits == 0
        assert (
            runs[True].metrics["total_checker_computations"]
            < runs[False].metrics["total_checker_computations"]
        )

    def test_heterogeneous_delays_parity(self):
        """Per-link asynchrony: sharing stays exact (batches shift but
        the per-principal op streams do not)."""
        rng = random.Random(11)
        g = random_biconnected_graph(8, rng)

        def delays(a, b, _rng=random.Random(13)):
            return _rng.uniform(1.0, 2.5)

        shared = run_checked_construction(g, link_delays=delays)
        private = run_checked_construction(
            g, link_delays=delays, shared_checking=False
        )
        assert shared.flags == [] and private.flags == []
        for node_id in shared.nodes:
            assert (
                shared.nodes[node_id].comp.full_digest()
                == private.nodes[node_id].comp.full_digest()
            )
        assert shared.kernel_stats.forks == 0

    @pytest.mark.parametrize("batch", [True, False])
    def test_unbatched_mode_shares_too(self, batch):
        rng = random.Random(3)
        g = random_biconnected_graph(6, rng)
        checked = run_checked_construction(g, batch_delivery=batch)
        verify_checked_network(g, checked)
        assert checked.kernel_stats.shared_hits > 0

    def test_collected_flags_identical_across_modes(self):
        """The canonical flag collection (Flag.sort_key ordering) is
        bit-identical between shared and per-neighbour runs."""
        from repro.faithful import collect_construction_flags

        rng = random.Random(17)
        g = random_biconnected_graph(8, rng)
        shared = run_checked_construction(g, shared_checking=True)
        private = run_checked_construction(g, shared_checking=False)
        assert collect_construction_flags(shared.nodes) == (
            collect_construction_flags(private.nodes)
        )


class TestDeviantParity:
    """Every catalogued manipulation: identical detection verdict and
    flag multiset whether mirrors share or replay per neighbour."""

    @pytest.mark.parametrize(
        "deviation", sorted(DEVIATION_CATALOGUE)
    )
    def test_detection_verdict_and_flags_identical(
        self, graph, traffic, deviation
    ):
        spec = DEVIATION_CATALOGUE[deviation]
        results = {
            mode: run_protocol(
                graph,
                traffic,
                shared=mode,
                node_factory=faithful_deviant_factory(spec, "C"),
            )
            for mode in (True, False)
        }
        assert (
            results[True].detection.detected_any
            == results[False].detection.detected_any
        )
        assert results[True].progressed == results[False].progressed
        assert sorted_flags(results[True].detection) == sorted_flags(
            results[False].detection
        )

    @pytest.mark.parametrize(
        "deviation",
        [s.name for s in construction_deviations() if s.name != "cost-lie"],
    )
    def test_construction_deviations_detected_with_sharing(
        self, graph, traffic, deviation
    ):
        """No detection regressions: everything the per-neighbour path
        catches, the shared path catches."""
        spec = DEVIATION_CATALOGUE[deviation]
        result = run_protocol(
            graph,
            traffic,
            shared=True,
            node_factory=faithful_deviant_factory(spec, "C"),
        )
        assert result.detection.detected_any

    def test_copy_alter_forces_forks_not_misses(self, graph, traffic):
        """Altered copies reach every checker identically, so mirrors
        replay the altered stream in lockstep — detection comes from
        ledger checks and broadcast mismatches, not forks — while a
        *spoofed* one-off copy still detects under sharing."""
        spec = DEVIATION_CATALOGUE["copy-alter"]
        result = run_protocol(
            graph,
            traffic,
            shared=True,
            node_factory=faithful_deviant_factory(spec, "C"),
        )
        assert result.detection.detected_any


class TestMirrorLevelStream:
    """Direct mirror-level parity on randomized delta streams, with
    withdrawals, driven without any simulator."""

    def _mirrors(self, shared_pool=True):
        graph = figure1_graph()
        principal = "C"
        checkers = [n for n in graph.neighbors(principal)]
        known = {n: graph.cost(n) for n in graph.nodes}
        pool = MirrorKernelPool()
        mirrors = {}
        reference = {}
        for checker in checkers:
            m = PrincipalMirror(checker, principal)
            kwargs = dict(
                principal_neighbors=graph.neighbors(principal),
                declared_cost=graph.cost(principal),
                known_costs=known,
            )
            shared = pool.acquire(principal, graph.neighbors(principal),
                                  graph.cost(principal), known)
            m.start_phase2(shared=shared if shared_pool else None, **kwargs)
            mirrors[checker] = m
            r = PrincipalMirror(checker, principal)
            r.start_phase2(**kwargs)
            reference[checker] = r
        return graph, principal, mirrors, reference

    def _random_stream(self, graph, principal, rng, steps=40):
        """A plausible op stream with upserts and withdrawals."""
        neighbors = graph.neighbors(principal)
        others = [n for n in graph.nodes if n != principal]
        stream = []
        announced = set()
        for _ in range(steps):
            src = rng.choice(neighbors)
            if rng.random() < 0.5:
                dest = rng.choice(others)
                if announced and rng.random() < 0.25:
                    dest = rng.choice(sorted(announced, key=repr))
                    rows = ((dest, None, ()),)  # withdrawal
                    announced.discard(dest)
                else:
                    announced.add(dest)
                    rows = ((dest, rng.randint(0, 9) * 1.0, (src, dest)),)
                stream.append((KIND_RT_UPDATE, src, rows))
            else:
                dest = rng.choice(others)
                avoided = rng.choice(
                    [n for n in graph.nodes if n not in (principal, dest)]
                )
                if rng.random() < 0.2:
                    rows = ((dest, avoided, None, ()),)  # withdrawal
                else:
                    rows = (
                        (dest, avoided, rng.randint(0, 9) * 1.0, (src, dest)),
                    )
                stream.append((KIND_PRICE_UPDATE, src, rows))
        return stream

    @pytest.mark.parametrize("seed", range(6))
    def test_random_streams_with_withdrawals_bit_identical(self, seed):
        graph, principal, mirrors, reference = self._mirrors()
        rng = random.Random(seed)
        stream = self._random_stream(graph, principal, rng)
        for kind, src, rows in stream:
            defer = rng.random() < 0.5
            for checker in mirrors:
                mirrors[checker].apply_copy(kind, src, rows, defer=defer)
                reference[checker].apply_copy(kind, src, rows, defer=defer)
            if defer:
                for checker in mirrors:
                    mirrors[checker].flush_pending()
                    reference[checker].flush_pending()
        for checker in mirrors:
            shared_m, ref = mirrors[checker], reference[checker]
            assert list(shared_m._expected_route) == list(ref._expected_route)
            assert list(shared_m._expected_price) == list(ref._expected_price)
            assert shared_m.routing_digest() == ref.routing_digest()
            assert shared_m.pricing_digest() == ref.pricing_digest()
            assert [f.kind for f in shared_m.flags] == [
                f.kind for f in ref.flags
            ]

    def test_divergent_stream_forks_and_stays_exact(self):
        """One checker fed a different copy forks off the log and ends
        bit-identical to a private mirror fed its own stream."""
        graph, principal, mirrors, reference = self._mirrors()
        checkers = sorted(mirrors, key=repr)
        leader, victim = checkers[0], checkers[1]
        src = graph.neighbors(principal)[0]
        common = ((("x"), 1.0, (src, "x")),)
        altered = ((("x"), 7.0, (src, "x")),)
        # Everyone agrees on op 0.
        for checker in checkers:
            mirrors[checker].apply_copy(KIND_RT_UPDATE, src, common)
            reference[checker].apply_copy(KIND_RT_UPDATE, src, common)
        # Op 1 differs for the victim (deviant principal behaviour).
        for checker in checkers:
            rows = altered if checker == victim else common
            mirrors[checker].apply_copy(KIND_RT_UPDATE, src, rows)
            reference[checker].apply_copy(KIND_RT_UPDATE, src, rows)
        victim_mirror = mirrors[victim]
        assert victim_mirror._private is not None  # forked
        assert mirrors[leader]._private is None  # still sharing
        for checker in checkers:
            assert (
                mirrors[checker].routing_digest()
                == reference[checker].routing_digest()
            )
            assert list(mirrors[checker]._expected_route) == list(
                reference[checker]._expected_route
            )

    def test_straggler_digest_forks_to_own_position(self):
        """A mirror that stopped replaying (lazy checker) must report
        its own stale digest, not the shared frontier's."""
        graph, principal, mirrors, reference = self._mirrors()
        checkers = sorted(mirrors, key=repr)
        lazy, diligent = checkers[0], checkers[1]
        src = graph.neighbors(principal)[0]
        rows = ((("x"), 1.0, (src, "x")),)
        # Only the diligent checkers replay the copy.
        for checker in checkers:
            if checker != lazy:
                mirrors[checker].apply_copy(KIND_RT_UPDATE, src, rows)
                reference[checker].apply_copy(KIND_RT_UPDATE, src, rows)
        assert (
            mirrors[lazy].routing_digest() == reference[lazy].routing_digest()
        )
        assert (
            mirrors[diligent].routing_digest()
            != mirrors[lazy].routing_digest()
        )
