"""Unit tests for the checker's principal mirror."""

import pytest

from repro.faithful import FlagKind, PrincipalMirror
from repro.routing import (
    KIND_PRICE_UPDATE,
    KIND_RT_UPDATE,
    RouteEntry,
    encode_route_vector,
)


@pytest.fixture
def mirror():
    """Checker 'c' mirroring principal 'p' in a triangle c-p-q."""
    m = PrincipalMirror("c", "p")
    m.start_phase2(
        principal_neighbors=("c", "q"),
        declared_cost=2.0,
        known_costs={"c": 1.0, "p": 2.0, "q": 3.0},
    )
    return m


def initial_vector_of(mirror):
    """The first expected broadcast (direct routes of 'p')."""
    return mirror._expected_route[0]


class TestLifecycle:
    def test_initial_expected_broadcasts_queued(self, mirror):
        # start_phase2 predicts the principal's unconditional initial
        # announcements of both vectors.
        assert len(mirror._expected_route) == 1
        assert len(mirror._expected_price) == 1

    def test_initial_routes_are_direct(self, mirror):
        vector = dict(
            (dest, (cost, tuple(path)))
            for dest, cost, path in initial_vector_of(mirror)
        )
        assert vector == {
            "c": (0.0, ("p", "c")),
            "q": (0.0, ("p", "q")),
        }


class TestBroadcastObservation:
    def test_matching_broadcast_passes(self, mirror):
        expected = initial_vector_of(mirror)
        mirror.observe_route_broadcast(expected)
        assert mirror.flags == []

    def test_mismatched_broadcast_flagged(self, mirror):
        fake = encode_route_vector({"q": RouteEntry(9.0, ("p", "q"))})
        mirror.observe_route_broadcast(fake)
        assert mirror.flags[0].kind is FlagKind.BROADCAST_MISMATCH

    def test_unexpected_broadcast_flagged(self, mirror):
        expected = initial_vector_of(mirror)
        mirror.observe_route_broadcast(expected)
        mirror.observe_route_broadcast(expected)  # nothing pending
        assert mirror.flags[0].kind is FlagKind.UNEXPECTED_BROADCAST


class TestCopies:
    def test_spoofed_author_ignored_and_flagged(self, mirror):
        mirror.apply_copy(KIND_RT_UPDATE, "stranger", ())
        assert mirror.flags[0].kind is FlagKind.SPOOFED_COPY
        # The spoof was not applied: no new expected broadcast.
        assert len(mirror._expected_route) == 1

    def test_unknown_kind_flagged(self, mirror):
        mirror.apply_copy("weird-kind", "q", ())
        assert mirror.flags[0].kind is FlagKind.SPOOFED_COPY

    def test_copy_return_matches_ledger(self, mirror):
        vector = encode_route_vector({"x": RouteEntry(1.0, ("c", "x"))})
        mirror.record_sent(KIND_RT_UPDATE, vector)
        mirror.apply_copy(KIND_RT_UPDATE, "c", vector)
        assert all(f.kind is not FlagKind.COPY_FORGERY for f in mirror.flags)

    def test_copy_forgery_detected(self, mirror):
        sent = encode_route_vector({"x": RouteEntry(1.0, ("c", "x"))})
        altered = encode_route_vector({"x": RouteEntry(5.0, ("c", "x"))})
        mirror.record_sent(KIND_RT_UPDATE, sent)
        mirror.apply_copy(KIND_RT_UPDATE, "c", altered)
        assert any(f.kind is FlagKind.COPY_FORGERY for f in mirror.flags)

    def test_copy_of_unsent_message_flagged(self, mirror):
        vector = encode_route_vector({"x": RouteEntry(1.0, ("c", "x"))})
        mirror.apply_copy(KIND_RT_UPDATE, "c", vector)
        assert mirror.flags[0].kind is FlagKind.COPY_FORGERY

    def test_copy_updates_replay_and_expectations(self, mirror):
        # q tells p about destination z.
        vector = encode_route_vector(
            {"z": RouteEntry(0.0, ("q", "z")), "p": RouteEntry(0.0, ("q", "p"))}
        )
        mirror.apply_copy(KIND_RT_UPDATE, "q", vector)
        # The replay must now predict a new announcement containing z.
        assert len(mirror._expected_route) == 2
        latest = dict(
            (dest, tuple(path))
            for dest, cost, path in mirror._expected_route[-1]
        )
        assert latest["z"] == ("p", "q", "z")


class TestCheckpoint:
    def test_clean_checkpoint_after_all_observed(self, mirror):
        mirror.observe_route_broadcast(mirror._expected_route[0])
        mirror.observe_price_broadcast(mirror._expected_price[0])
        assert mirror.checkpoint_flags() == []

    def test_suppressed_update_flagged(self, mirror):
        flags = mirror.checkpoint_flags()
        kinds = {f.kind for f in flags}
        assert FlagKind.SUPPRESSED_UPDATE in kinds

    def test_missing_copy_flagged(self, mirror):
        mirror.observe_route_broadcast(mirror._expected_route[0])
        mirror.observe_price_broadcast(mirror._expected_price[0])
        mirror.record_sent(KIND_RT_UPDATE, ())
        flags = mirror.checkpoint_flags()
        assert any(f.kind is FlagKind.COPY_MISSING for f in flags)

    def test_digests_available(self, mirror):
        assert len(mirror.routing_digest()) == 64
        assert len(mirror.pricing_digest()) == 64
