"""NettingLedger, settlement audit, and forced settlement.

The Concent-style settlement layer: per-epoch obligations net into one
lump-sum :class:`BatchTransfer` per debtor whose ``closure_time``
covers everything accepted before it; :func:`settlement_audit`
reconstructs any pair's unpaid balance from the signed trace; and
:func:`forced_settlement` draws audited shortfalls from deposits with
the paper's epsilon penalty on top.  Money conservation of the forced
path is property-tested.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.faithful import (
    BankNode,
    BatchTransfer,
    NettingLedger,
    forced_settlement,
    net_positions,
    settlement_audit,
    synthesize_execution_reports,
)
from repro.routing import figure1_graph
from repro.workloads import uniform_all_pairs


class TestNettingLedger:
    def test_nets_pairwise_and_batches_per_debtor(self):
        ledger = NettingLedger()
        ledger.record("A", "B", 3.0, accepted_at=0.0)
        ledger.record("B", "A", 1.0, accepted_at=0.0)
        ledger.record("A", "C", 2.0, accepted_at=0.0)
        transfers = ledger.close_epoch(0.0)
        assert len(transfers) == 1
        (transfer,) = transfers
        assert transfer.debtor == "A"
        assert transfer.closure_time == 0.0
        assert transfer.payouts == (("B", 2.0), ("C", 2.0))
        assert transfer.total == pytest.approx(4.0)
        assert ledger.pending_count == 0
        assert ledger.epochs_closed == 1

    def test_fully_netted_pair_produces_no_transfer(self):
        ledger = NettingLedger()
        ledger.record("A", "B", 2.5, accepted_at=0.0)
        ledger.record("B", "A", 2.5, accepted_at=0.0)
        assert ledger.close_epoch(0.0) == []
        # The trace still remembers both obligations for audit.
        assert len(ledger.trace) == 2

    def test_closure_time_must_cover_pending(self):
        ledger = NettingLedger()
        ledger.record("A", "B", 1.0, accepted_at=5.0)
        with pytest.raises(ProtocolError, match="does not cover"):
            ledger.close_epoch(4.0)

    def test_self_obligation_rejected(self):
        ledger = NettingLedger()
        with pytest.raises(ProtocolError, match="same node"):
            ledger.record("A", "A", 1.0, accepted_at=0.0)

    def test_record_many(self):
        ledger = NettingLedger()
        ledger.record_many(
            [("A", "B", 1.0), ("B", "C", 2.0)], accepted_at=1.0
        )
        assert ledger.pending_count == 2
        transfers = ledger.close_epoch(1.0)
        assert {t.debtor for t in transfers} == {"A", "B"}


class TestSettlementAudit:
    def test_unpaid_before_close_zero_after(self):
        ledger = NettingLedger()
        ledger.record("A", "B", 3.0, accepted_at=0.0)
        ledger.record("B", "A", 1.0, accepted_at=0.0)
        before = settlement_audit(ledger.trace, ledger.transfers, "A", "B", 0.0)
        assert before.owed == pytest.approx(2.0)
        assert before.paid == 0.0
        assert before.shortfall == pytest.approx(2.0)
        ledger.close_epoch(0.0)
        after = settlement_audit(ledger.trace, ledger.transfers, "A", "B", 0.0)
        assert after.unpaid == 0.0

    def test_at_time_filters_trace_and_transfers(self):
        ledger = NettingLedger()
        ledger.record("A", "B", 1.0, accepted_at=0.0)
        ledger.close_epoch(0.0)
        ledger.record("A", "B", 4.0, accepted_at=2.0)
        ledger.close_epoch(2.0)
        early = settlement_audit(ledger.trace, ledger.transfers, "A", "B", 1.0)
        assert early.owed == pytest.approx(1.0)
        assert early.unpaid == 0.0
        late = settlement_audit(ledger.trace, ledger.transfers, "A", "B", 2.0)
        assert late.owed == pytest.approx(5.0)
        assert late.unpaid == 0.0

    def test_reverse_direction_is_negative(self):
        ledger = NettingLedger()
        ledger.record("A", "B", 3.0, accepted_at=0.0)
        report = settlement_audit(ledger.trace, ledger.transfers, "B", "A", 0.0)
        assert report.owed == pytest.approx(-3.0)
        assert report.shortfall == 0.0


class TestForcedSettlement:
    def test_draws_shortfall_from_deposit(self):
        ledger = NettingLedger()
        ledger.record("A", "B", 5.0, accepted_at=0.0)
        # A never pays: no close_epoch, so the audit finds 5 unpaid.
        deposits = {"A": 3.0}
        outcomes = forced_settlement(ledger, deposits, at_time=0.0)
        assert len(outcomes) == 1
        (outcome,) = outcomes
        assert outcome.debtor == "A" and outcome.creditor == "B"
        assert outcome.shortfall == pytest.approx(5.0)
        assert outcome.drawn == pytest.approx(3.0)  # deposit-capped
        assert outcome.penalty == pytest.approx(0.01)
        assert deposits["A"] == 0.0
        # The forced transfer enters the record: re-auditing sees it.
        report = settlement_audit(ledger.trace, ledger.transfers, "A", "B", 0.0)
        assert report.unpaid == pytest.approx(2.0)

    def test_settled_pairs_untouched(self):
        ledger = NettingLedger()
        ledger.record("A", "B", 5.0, accepted_at=0.0)
        ledger.close_epoch(0.0)
        deposits = {"A": 10.0}
        assert forced_settlement(ledger, deposits, at_time=0.0) == []
        assert deposits["A"] == 10.0

    def test_no_deposit_draws_nothing_still_penalized(self):
        ledger = NettingLedger()
        ledger.record("A", "B", 5.0, accepted_at=0.0)
        deposits = {}
        outcomes = forced_settlement(ledger, deposits, at_time=0.0)
        (outcome,) = outcomes
        assert outcome.drawn == 0.0
        assert outcome.penalty == pytest.approx(0.01)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
                st.floats(
                    min_value=0.01,
                    max_value=100.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            min_size=1,
            max_size=30,
        ),
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=50.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=5,
            max_size=5,
        ),
    )
    def test_money_conservation(self, obligations, balances):
        """Deposits fund forced transfers exactly; nothing leaks."""
        names = [f"n{i}" for i in range(5)]
        ledger = NettingLedger()
        for debtor_i, creditor_i, amount in obligations:
            if debtor_i == creditor_i:
                continue
            ledger.record(
                names[debtor_i], names[creditor_i], amount, accepted_at=0.0
            )
        deposits = dict(zip(names, balances, strict=True))
        before = dict(deposits)
        transfers_before = len(ledger.transfers)
        outcomes = forced_settlement(ledger, deposits, at_time=0.0)
        forced = ledger.transfers[transfers_before:]
        # Exact conservation: every drawn unit appears as a forced
        # batch-transfer payout, bit for bit.
        assert math.fsum(o.drawn for o in outcomes) == math.fsum(
            t.total for t in forced
        )
        # No deposit goes negative, and each decreases by its draw.
        for name in names:
            assert deposits[name] >= 0.0
            drawn = math.fsum(
                o.drawn for o in outcomes if o.debtor == name
            )
            assert deposits[name] == pytest.approx(before[name] - drawn)
        # After enforcement, every funded debtor's residual shortfall
        # equals what its deposit could not cover.
        for outcome in outcomes:
            report = settlement_audit(
                ledger.trace,
                ledger.transfers,
                outcome.debtor,
                outcome.creditor,
                0.0,
            )
            assert report.shortfall == pytest.approx(
                outcome.shortfall - outcome.drawn, abs=1e-9
            )


class TestBankDeposits:
    def test_fund_and_draw_through_bank(self):
        bank = BankNode()
        bank.fund_deposit("A", 4.0)
        bank.fund_deposit("A", 1.0)
        assert bank.deposit_balance("A") == pytest.approx(5.0)
        assert bank.deposit_balance("Z") == 0.0
        ledger = NettingLedger()
        ledger.record("A", "B", 2.0, accepted_at=0.0)
        outcomes = bank.run_forced_settlement(ledger, at_time=0.0)
        assert len(outcomes) == 1
        assert outcomes[0].drawn == pytest.approx(2.0)
        assert bank.deposit_balance("A") == pytest.approx(3.0)

    def test_negative_funding_rejected(self):
        bank = BankNode()
        with pytest.raises(ProtocolError, match=">= 0"):
            bank.fund_deposit("A", -1.0)


class TestSynthesizedReports:
    def test_honest_reports_settle_clean(self):
        graph = figure1_graph()
        traffic = uniform_all_pairs(graph)
        reports = synthesize_execution_reports(graph, traffic)
        bank = BankNode()
        bank.reports["execution"] = reports
        node_ids = tuple(sorted(graph.nodes, key=repr))
        declared = {n: graph.cost(n) for n in node_ids}
        records, flags = bank.settle(node_ids, declared)
        assert flags == []
        for node_id in node_ids:
            record = records[node_id]
            assert record.penalties == 0.0
            assert record.reported_total == pytest.approx(
                record.expected_total
            )

    def test_repeats_scale_observations_not_receipt_rows(self):
        graph = figure1_graph()
        traffic = uniform_all_pairs(graph)
        once = synthesize_execution_reports(graph, traffic, repeats=1)
        thrice = synthesize_execution_reports(graph, traffic, repeats=3)
        for node in graph.nodes:
            assert len(thrice[node]["observations"]) == 3 * len(
                once[node]["observations"]
            )
            assert len(thrice[node]["receipts"]) == len(
                once[node]["receipts"]
            )

    def test_bad_repeats_rejected(self):
        graph = figure1_graph()
        with pytest.raises(ProtocolError, match="repeats"):
            synthesize_execution_reports(graph, {}, repeats=0)


class TestNetPositions:
    def test_mixed_triples_and_batches(self):
        triples = [("A", "B", 2.0), ("B", "C", 1.0)]
        batch = BatchTransfer(
            debtor="C", closure_time=0.0, payouts=(("A", 0.5),)
        )
        positions = net_positions(triples + [batch], nodes=("A", "B", "C", "D"))
        assert positions["A"] == pytest.approx(-1.5)
        assert positions["B"] == pytest.approx(1.0)
        assert positions["C"] == pytest.approx(0.5)
        assert positions["D"] == 0.0
        # A closed system always nets to zero overall.
        assert math.fsum(positions.values()) == pytest.approx(0.0)
