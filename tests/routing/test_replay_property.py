"""Property: FPSSComputation is a pure function of its message sequence.

This is the invariant the entire checker scheme rests on (Figure 2): a
mirror fed the same inputs in the same order must reproduce the
principal's tables bit-for-bit, and the converged *fixed point* must
not depend on the interleaving of inputs from different neighbours
(confluence), because copies from different neighbours may reach
different checkers in different relative orders between broadcasts.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import FPSSComputation, RouteEntry
from repro.workloads import random_biconnected_graph


def build_computation(graph, owner):
    comp = FPSSComputation(owner, graph.neighbors(owner), graph.cost(owner))
    for node in graph.nodes:
        comp.note_cost_declaration(node, graph.cost(node))
    return comp


def random_route_vector(rng, graph, sender):
    """A plausible routing vector a neighbour might announce."""
    vector = {}
    for destination in graph.nodes:
        if destination == sender or rng.random() < 0.4:
            continue
        intermediate = [
            n for n in graph.nodes if n not in (sender, destination)
        ]
        rng.shuffle(intermediate)
        path = (sender,) + tuple(intermediate[: rng.randint(0, 2)]) + (
            destination,
        )
        vector[destination] = RouteEntry(
            cost=round(rng.uniform(0.0, 20.0), 3), path=path
        )
    return vector


def apply_sequence(comp, sequence):
    for sender, vector in sequence:
        comp.apply_route_update(sender, vector)
        comp.recompute_routes()
        comp.recompute_avoidance()
        comp.derive_pricing()


class TestReplayDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_identical_sequences_give_identical_digests(self, seed):
        """Bit-for-bit replay: same inputs, same order -> same state."""
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 7), rng)
        owner = rng.choice(list(graph.nodes))
        sequence = [
            (rng.choice(graph.neighbors(owner)), random_route_vector(rng, graph, s))
            for s in [rng.choice(graph.neighbors(owner)) for _ in range(6)]
        ]
        # Regenerate sender-consistent vectors.
        sequence = [
            (sender, random_route_vector(random.Random(seed + i), graph, sender))
            for i, (sender, _) in enumerate(sequence)
        ]
        principal = build_computation(graph, owner)
        mirror = build_computation(graph, owner)
        apply_sequence(principal, sequence)
        apply_sequence(mirror, sequence)
        assert principal.routing_digest() == mirror.routing_digest()
        assert principal.pricing_digest() == mirror.pricing_digest()
        assert principal.full_digest() == mirror.full_digest()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_fixed_point_is_interleaving_confluent(self, seed):
        """Confluence: the *final* neighbour vectors determine the
        converged tables, regardless of the interleaving of earlier
        updates — which is why mirrors at different checkers agree at
        quiescence even though they saw different prefixes."""
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 6), rng)
        owner = rng.choice(list(graph.nodes))
        neighbors = graph.neighbors(owner)
        final_vectors = {
            sender: random_route_vector(random.Random(seed + hash(sender) % 97), graph, sender)
            for sender in neighbors
        }

        def stale_version(sender):
            """An earlier, worse announcement from the same sender.

            Protocol announcements are monotone: later vectors cover at
            least the same destinations at no-worse costs (tables only
            gain destinations and improve).  The stale version drops
            some destinations and inflates the costs of the rest.
            """
            stale_rng = random.Random(seed + 7)
            return {
                destination: RouteEntry(
                    cost=entry.cost + stale_rng.uniform(0.5, 5.0),
                    path=entry.path,
                )
                for destination, entry in final_vectors[sender].items()
                if stale_rng.random() < 0.6
            }

        def converge(order, stale_first):
            comp = build_computation(graph, owner)
            if stale_first:
                for sender in order:
                    comp.apply_route_update(sender, stale_version(sender))
                    comp.recompute_routes()
                    comp.recompute_avoidance()
            for sender in order:
                comp.apply_route_update(sender, final_vectors[sender])
            comp.recompute_routes()
            comp.recompute_avoidance()
            comp.derive_pricing()
            return comp

        orders = [list(neighbors), list(reversed(neighbors))]
        digests = set()
        for order in orders:
            for stale_first in (False, True):
                comp = converge(order, stale_first)
                digests.add(
                    (comp.routing_digest(), comp.pricing_digest())
                )
        assert len(digests) == 1
