"""Property: the incremental relaxations equal the full rescans.

The incremental FPSS engine (dirty-key tracking, fused monotone
adoption, argmin-supplier invalidation) must be *observably identical*
to the retained full-table reference: same tables, same digests, and
the same changed flags after every input.  These properties are what
lets the protocol run the delta engine on the hot path while the full
rescan stays the semantic definition.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (
    FPSSComputation,
    FullRecomputeFPSSNode,
    RouteEntry,
    run_plain_fpss,
    verify_against_oracle,
)
from repro.routing.fpss import encode_avoid_delta, encode_route_delta
from repro.workloads import random_biconnected_graph


def build_computation(graph, owner):
    comp = FPSSComputation(owner, graph.neighbors(owner), graph.cost(owner))
    for node in graph.nodes:
        comp.note_cost_declaration(node, graph.cost(node))
    return comp


def random_route_vector(rng, graph, sender):
    """A plausible routing vector a neighbour might announce."""
    vector = {}
    for destination in graph.nodes:
        if destination == sender or rng.random() < 0.4:
            continue
        intermediate = [
            n for n in graph.nodes if n not in (sender, destination)
        ]
        rng.shuffle(intermediate)
        path = (sender,) + tuple(intermediate[: rng.randint(0, 2)]) + (
            destination,
        )
        vector[destination] = RouteEntry(
            cost=round(rng.uniform(0.0, 20.0), 3), path=path
        )
    return vector


def random_avoid_vector(rng, graph, sender):
    """A plausible avoidance vector a neighbour might announce."""
    vector = {}
    for destination in graph.nodes:
        if destination == sender:
            continue
        for avoided in graph.nodes:
            if avoided in (sender, destination) or rng.random() < 0.6:
                continue
            intermediate = [
                n
                for n in graph.nodes
                if n not in (sender, destination, avoided)
            ]
            rng.shuffle(intermediate)
            path = (sender,) + tuple(intermediate[: rng.randint(0, 2)]) + (
                destination,
            )
            vector[(destination, avoided)] = RouteEntry(
                cost=round(rng.uniform(0.0, 20.0), 3), path=path
            )
    return vector


def digests(comp):
    return (comp.routing_digest(), comp.pricing_digest())


class TestDictPathEquivalence:
    """Full-vector (dict) updates: incremental == full, step by step."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_stepwise_flags_and_digests_match(self, seed):
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 7), rng)
        owner = rng.choice(list(graph.nodes))
        reference = build_computation(graph, owner)
        incremental = build_computation(graph, owner)

        # Initial full relaxation on both (a phase start).
        for comp in (reference, incremental):
            comp.recompute_routes()
            comp.recompute_avoidance()
            comp.derive_pricing()
        assert digests(reference) == digests(incremental)

        neighbors = graph.neighbors(owner)
        for step in range(8):
            sender = rng.choice(neighbors)
            step_rng = random.Random(seed * 1000 + step)
            route_vector = random_route_vector(step_rng, graph, sender)
            avoid_vector = random_avoid_vector(step_rng, graph, sender)
            # Shrinking vectors (withdrawals) exercise the universe
            # reference counts and the rescan fallback.
            reference.apply_route_update(sender, route_vector)
            incremental.apply_route_update(sender, route_vector)
            reference.apply_avoid_update(sender, avoid_vector)
            incremental.apply_avoid_update(sender, avoid_vector)

            ref_routes = reference.recompute_routes()
            inc_routes = incremental.recompute_routes_incremental()
            ref_avoid = reference.recompute_avoidance()
            inc_avoid = incremental.recompute_avoidance_incremental()
            ref_price = reference.derive_pricing()
            inc_price = incremental.derive_pricing_incremental()

            assert ref_routes == inc_routes
            assert ref_avoid == inc_avoid
            assert ref_price == inc_price
            assert digests(reference) == digests(incremental)


class TestDeltaPathEquivalence:
    """Wire deltas with fused adoption: incremental == full rescans."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_delta_stream_matches_full_rescan(self, seed):
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 7), rng)
        owner = rng.choice(list(graph.nodes))
        reference = build_computation(graph, owner)
        incremental = build_computation(graph, owner)
        for comp in (reference, incremental):
            comp.recompute_routes()
            comp.recompute_avoidance()
            comp.derive_pricing()

        neighbors = graph.neighbors(owner)
        last_routes = {sender: {} for sender in neighbors}
        last_avoid = {sender: {} for sender in neighbors}
        for step in range(8):
            sender = rng.choice(neighbors)
            step_rng = random.Random(seed * 1000 + step)
            route_vector = random_route_vector(step_rng, graph, sender)
            avoid_vector = random_avoid_vector(step_rng, graph, sender)
            route_delta = encode_route_delta(route_vector, last_routes[sender])
            avoid_delta = encode_avoid_delta(avoid_vector, last_avoid[sender])
            last_routes[sender] = route_vector
            last_avoid[sender] = avoid_vector

            for comp in (reference, incremental):
                comp.apply_route_delta(sender, route_delta)
                comp.apply_avoid_delta(sender, avoid_delta)
            ref_changed = (
                reference.recompute_routes(),
                reference.recompute_avoidance(),
                reference.derive_pricing(),
            )
            inc_changed = (
                incremental.recompute_routes_incremental(),
                incremental.recompute_avoidance_incremental(),
                incremental.derive_pricing_incremental(),
            )
            assert ref_changed == inc_changed
            assert digests(reference) == digests(incremental)


class TestProtocolEquivalence:
    """Whole-protocol runs agree across engine and delivery modes."""

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_converged_tables_identical_across_modes(self, seed):
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(5, 9), random.Random(seed))
        runs = {
            "batched-incremental": run_plain_fpss(graph),
            "unbatched-incremental": run_plain_fpss(
                graph, batch_delivery=False
            ),
            "unbatched-full": run_plain_fpss(
                graph,
                node_factory=lambda n, c: FullRecomputeFPSSNode(n, c),
                batch_delivery=False,
            ),
            "batched-full": run_plain_fpss(
                graph, node_factory=lambda n, c: FullRecomputeFPSSNode(n, c)
            ),
        }
        reference = None
        for mode, (_, nodes, _) in runs.items():
            verify_against_oracle(graph, nodes, check_prices=True)
            tables = {
                node_id: (
                    node.comp.routing_digest(),
                    node.comp.pricing_digest(),
                )
                for node_id, node in nodes.items()
            }
            if reference is None:
                reference = tables
            else:
                assert tables == reference, f"{mode} diverged"

    def test_heterogeneous_delays_still_agree(self):
        """Asynchrony across links does not break mode equivalence."""
        rng = random.Random(7)
        graph = random_biconnected_graph(8, rng)
        delay_rng = random.Random(8)
        delays = {
            frozenset((a, b)): delay_rng.choice((0.5, 1.0, 1.7, 2.3))
            for a, b in graph.edges
        }
        batched = run_plain_fpss(graph, link_delays=delays)[1]
        unbatched = run_plain_fpss(
            graph, link_delays=delays, batch_delivery=False
        )[1]
        verify_against_oracle(graph, batched, check_prices=True)
        verify_against_oracle(graph, unbatched, check_prices=True)
        for node_id in graph.nodes:
            assert (
                batched[node_id].comp.full_digest()
                == unbatched[node_id].comp.full_digest()
            )
