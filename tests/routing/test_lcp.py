"""Tests for the LCP oracle, including the paper's Figure 1 claims."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, RoutingError
from repro.routing import (
    ASGraph,
    all_pairs_lcp,
    figure1_graph,
    lcp_cost,
    lcp_tree,
    lowest_cost_path,
    total_routing_cost,
)
from repro.workloads import random_biconnected_graph


class TestFigure1Claims:
    """The exact numbers stated in Section 4.1."""

    def setup_method(self):
        self.graph = figure1_graph()

    def test_x_to_z_costs_two_via_d_c(self):
        result = lowest_cost_path(self.graph, "X", "Z")
        assert result.cost == 2.0
        assert result.path == ("X", "D", "C", "Z")

    def test_z_to_d_costs_one(self):
        assert lcp_cost(self.graph, "Z", "D") == 1.0

    def test_b_to_d_costs_zero_direct(self):
        result = lowest_cost_path(self.graph, "B", "D")
        assert result.cost == 0.0
        assert result.path == ("B", "D")
        assert result.transit_nodes == ()

    def test_example1_lie_diverts_traffic(self):
        """If C declared cost 5, X-A-Z becomes the X-to-Z LCP."""
        lied = self.graph.with_costs({"C": 5.0})
        result = lowest_cost_path(lied, "X", "Z")
        assert result.path == ("X", "A", "Z")
        assert result.cost == 5.0

    def test_example1_damages_efficiency(self):
        """The lie reroutes X->Z onto a path of true cost 5 > 2."""
        lied = self.graph.with_costs({"C": 5.0})
        honest_total = total_routing_cost(self.graph)
        lied_total = total_routing_cost(lied, truthful_graph=self.graph)
        assert lied_total > honest_total


class TestOracleBasics:
    def test_source_equals_destination(self, fig1):
        result = lowest_cost_path(fig1, "A", "A")
        assert result.cost == 0.0
        assert result.path == ("A",)
        assert result.hops == 0

    def test_unknown_nodes_rejected(self, fig1):
        with pytest.raises(GraphError):
            lowest_cost_path(fig1, "ghost", "A")
        with pytest.raises(GraphError):
            lowest_cost_path(fig1, "A", "ghost")

    def test_avoiding_endpoint_rejected(self, fig1):
        with pytest.raises(RoutingError, match="endpoint"):
            lowest_cost_path(fig1, "X", "Z", avoiding="X")

    def test_avoiding_transit_finds_detour(self, fig1):
        detour = lowest_cost_path(fig1, "X", "Z", avoiding="C")
        assert "C" not in detour.path
        assert detour.cost >= lcp_cost(fig1, "X", "Z")

    def test_no_path_raises(self):
        graph = ASGraph(
            {"a": 1, "b": 1, "c": 1, "d": 1},
            [("a", "b"), ("c", "d")],
        )
        with pytest.raises(RoutingError, match="no path"):
            lowest_cost_path(graph, "a", "c")

    def test_tie_break_prefers_fewer_hops(self):
        # Two zero-cost routes; the direct edge must win.
        graph = ASGraph(
            {"a": 1, "b": 0, "c": 1},
            [("a", "c"), ("a", "b"), ("b", "c")],
        )
        assert lowest_cost_path(graph, "a", "c").path == ("a", "c")

    def test_lcp_tree_covers_all_destinations(self, fig1):
        tree = lcp_tree(fig1, "Z")
        assert set(tree) == set(fig1.nodes) - {"Z"}
        # The bold tree of Figure 1: all of Z's LCP costs.
        assert tree["C"].cost == 0.0
        assert tree["D"].cost == 1.0
        assert tree["X"].cost == 2.0
        assert tree["A"].cost == 0.0
        assert tree["B"].cost == 1.0

    def test_all_pairs_count(self, fig1):
        pairs = all_pairs_lcp(fig1)
        assert len(pairs) == 6 * 5

    def test_paths_are_symmetric_in_cost(self, fig1):
        # Undirected graph with node costs: reversing a path preserves
        # its interior, so LCP costs are symmetric.
        for (s, d), forward in all_pairs_lcp(fig1).items():
            backward = lowest_cost_path(fig1, d, s)
            assert backward.cost == pytest.approx(forward.cost)


def _nx_transit_cost_graph(graph: ASGraph) -> nx.DiGraph:
    """Encode node-weighted LCP as edge-weighted digraph for networkx:
    weight(u -> v) = cost(u) if u is not the path source else 0 is not
    expressible; instead weight(u -> v) = cost(v) for v != destination
    is handled by subtracting the destination cost afterwards."""
    digraph = nx.DiGraph()
    for a, b in graph.edges:
        for u, v in ((a, b), (b, a)):
            digraph.add_edge(u, v, weight=graph.cost(v))
    return digraph


class TestAgainstNetworkx:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_lcp_cost_matches_networkx(self, seed):
        """Property: for random biconnected graphs, our LCP cost equals
        networkx Dijkstra on the edge-encoded graph."""
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 9), rng)
        digraph = _nx_transit_cost_graph(graph)
        nodes = graph.nodes
        source, destination = rng.sample(list(nodes), 2)
        expected = nx.dijkstra_path_length(
            digraph, source, destination
        ) - graph.cost(destination)
        ours = lcp_cost(graph, source, destination)
        assert ours == pytest.approx(max(0.0, expected))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_avoiding_matches_networkx_on_reduced_graph(self, seed):
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 9), rng)
        nodes = list(graph.nodes)
        source, destination, avoided = rng.sample(nodes, 3)
        ours = lcp_cost(graph, source, destination, avoiding=avoided)
        reduced = graph.without_node(avoided)
        expected = lcp_cost(reduced, source, destination)
        assert ours == pytest.approx(expected)
