"""Columnar-vs-dict kernel equivalence property suite.

:class:`~repro.routing.kernel.ReplayKernel` stores its tables in flat
parallel arrays over interned key ids; the retained
:class:`~repro.routing.kernel_dict.DictReplayKernel` is the verbatim
pre-columnar implementation, kept as the oracle.  The layout change is
only sound if the two are *observationally identical* — same digests,
same wire deltas, same work counters — under every op sequence the
protocol can produce.  This suite drives both through:

* whole-run fixed points (random, tie-heavy, and the paper's Figure 1
  graphs),
* a tandem synchronous-round driver that compares every emitted delta
  and digest *stepwise*, including under withdrawal streams and churn
  epochs (cost changes, link failures, departures),
* op-log replay: the verified :class:`SharedKernel` logs of checked
  construction runs — honest and across the construction-stage
  manipulation catalogue, under heterogeneous link delays, with shared
  and private checking — replayed through the dict kernel, and
* ``PYTHONHASHSEED`` 0 vs 1 in subprocesses.

Plus a reflection-based completeness gate on
:class:`~repro.routing.kernel.KernelStats`: ``merge``/``as_dict`` must
cover every counter field, so adding a counter to the dataclass without
threading it through aggregation fails loudly.
"""

import dataclasses
import json
import os
import random
import subprocess
import sys

import pytest

from repro.faithful.manipulations import (
    construction_deviations,
    faithful_deviant_factory,
)
from repro.faithful.protocol import run_checked_construction
from repro.routing import ASGraph, figure1_graph
from repro.routing.kernel import (
    KIND_PRICE_UPDATE,
    KIND_RT_UPDATE,
    KernelStats,
    ReplayKernel,
    kernel_fixed_point,
)
from repro.routing.kernel_dict import DictReplayKernel
from repro.sim.churn import EVENT_KINDS, evolved_graphs, random_churn_schedule
from repro.workloads import random_biconnected_graph

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def _digests(kernel):
    """All four digest views of one kernel."""
    return (
        kernel.cost_digest(),
        kernel.routing_digest(),
        kernel.pricing_digest(),
        kernel.full_digest(),
    )


def _unit_cost_graph(size, seed):
    """A biconnected graph where every transit cost ties at 1.0.

    Equal costs everywhere force the lex tie-breaks on every
    relaxation, which is exactly where an id-rank permutation that
    disagreed with repr order would surface.
    """
    base = random_biconnected_graph(size, random.Random(seed))
    return ASGraph({node: 1.0 for node in base.nodes}, base.edges)


class TestFixedPointParity:
    """Whole-run parity: same graph, both kernels, identical tables."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs(self, seed):
        graph = random_biconnected_graph(12, random.Random(seed))
        columnar = kernel_fixed_point(graph, kernel_cls=ReplayKernel)
        reference = kernel_fixed_point(graph, kernel_cls=DictReplayKernel)
        assert sorted(columnar, key=repr) == sorted(reference, key=repr)
        for node in columnar:
            assert _digests(columnar[node]) == _digests(reference[node]), node
            assert (
                columnar[node].computation_count
                == reference[node].computation_count
            ), node
            assert (
                columnar[node].stats.as_dict()
                == reference[node].stats.as_dict()
            ), node

    def test_tie_heavy_unit_costs(self):
        graph = _unit_cost_graph(14, seed=6)
        columnar = kernel_fixed_point(graph, kernel_cls=ReplayKernel)
        reference = kernel_fixed_point(graph, kernel_cls=DictReplayKernel)
        for node in columnar:
            assert _digests(columnar[node]) == _digests(reference[node]), node

    def test_figure1_graph(self):
        graph = figure1_graph()
        columnar = kernel_fixed_point(graph, kernel_cls=ReplayKernel)
        reference = kernel_fixed_point(graph, kernel_cls=DictReplayKernel)
        for node in columnar:
            assert _digests(columnar[node]) == _digests(reference[node]), node


class _TandemNet:
    """Both kernel implementations driven through the same rounds.

    Mirrors the synchronous rounds of
    :func:`~repro.routing.kernel.kernel_fixed_point`, but runs a
    (columnar, dict) pair per vertex and asserts after *every* settle
    that the emitted deltas — the wire-visible behaviour — and the
    digests are identical, not just the final fixed point.  Mutation
    methods replicate the kernel-level event application of
    :class:`~repro.routing.dynamic.DynamicTopologyEngine`.
    """

    def __init__(self, graph):
        self.order = sorted(graph.nodes, key=repr)
        self.pairs = {
            node: (
                ReplayKernel(node, graph.neighbors(node), graph.cost(node)),
                DictReplayKernel(node, graph.neighbors(node), graph.cost(node)),
            )
            for node in self.order
        }
        for pair in self.pairs.values():
            for kernel in pair:
                for node in self.order:
                    kernel.note_cost_declaration(node, graph.cost(node))
        self.mailbox = {node: [] for node in self.order}
        for node in self.order:
            for kernel in self.pairs[node]:
                kernel.reset_phase2()
                kernel.recompute_routes()
                kernel.recompute_avoidance()
                kernel.derive_pricing()
            columnar, reference = self.pairs[node]
            route = self._matched(
                node, columnar.consume_route_delta(), reference.consume_route_delta()
            )
            avoid = self._matched(
                node, columnar.consume_avoid_delta(), reference.consume_avoid_delta()
            )
            self._post(node, KIND_RT_UPDATE, route)
            self._post(node, KIND_PRICE_UPDATE, avoid)

    def _matched(self, node, columnar_rows, reference_rows):
        assert columnar_rows == reference_rows, f"delta divergence at {node!r}"
        return columnar_rows

    def _post(self, src, kind, rows):
        if not rows:
            return
        columnar, _ = self.pairs[src]
        for neighbor in columnar.neighbors:
            if neighbor in self.mailbox:
                self.mailbox[neighbor].append((kind, src, rows))

    def _settle_and_broadcast(self, node):
        columnar, reference = self.pairs[node]
        route_delta, avoid_delta = columnar.settle()
        assert (route_delta, avoid_delta) == reference.settle(), node
        assert columnar.full_digest() == reference.full_digest(), node
        if route_delta is not None:
            self._post(node, KIND_RT_UPDATE, route_delta)
        if avoid_delta is not None:
            self._post(node, KIND_PRICE_UPDATE, avoid_delta)

    def converge(self, max_rounds=10_000):
        for _ in range(max_rounds):
            if not any(self.mailbox.values()):
                self.assert_in_sync()
                return
            inbox = self.mailbox
            self.mailbox = {node: [] for node in inbox}
            for node in sorted(inbox, key=repr):
                for kind, src, rows in inbox[node]:
                    for kernel in self.pairs[node]:
                        if kind == KIND_RT_UPDATE:
                            kernel.apply_route_delta(src, rows)
                        else:
                            kernel.apply_avoid_delta(src, rows)
                self._settle_and_broadcast(node)
        raise AssertionError("tandem network failed to converge")

    def assert_in_sync(self):
        for node, (columnar, reference) in self.pairs.items():
            assert _digests(columnar) == _digests(reference), node
            assert (
                columnar.computation_count == reference.computation_count
            ), node

    # -- kernel-level churn events (the dynamic engine's vocabulary) ---

    def change_cost(self, node, cost):
        for member in sorted(self.pairs, key=repr):
            for kernel in self.pairs[member]:
                if member == node:
                    kernel.change_own_cost(cost)
                else:
                    kernel.note_cost_declaration(node, cost)

    def link_down(self, a, b):
        for end, peer in ((a, b), (b, a)):
            for kernel in self.pairs[end]:
                kernel.detach_neighbor(peer)

    def leave(self, node):
        columnar, _ = self.pairs[node]
        for peer in columnar.neighbors:
            if peer in self.pairs:
                for kernel in self.pairs[peer]:
                    kernel.detach_neighbor(node)
        del self.pairs[node]
        del self.mailbox[node]
        for member in sorted(self.pairs, key=repr):
            for kernel in self.pairs[member]:
                kernel.retract_cost_declaration(node)

    def kick(self):
        """Settle every node after a mutation batch (the churn kick)."""
        for node in sorted(self.pairs, key=repr):
            self._settle_and_broadcast(node)


class TestStepwiseMutationParity:
    """Delta-by-delta parity through mutations, not just fixed points."""

    def test_initial_convergence_is_stepwise_identical(self):
        net = _TandemNet(random_biconnected_graph(10, random.Random(2)))
        net.converge()

    def test_withdrawal_stream(self):
        # Successive departures: each one retracts a cost declaration
        # from every survivor and detaches the leaver's links — the
        # deletion paths (rescans, argmin invalidation) on both sides.
        graph = random_biconnected_graph(12, random.Random(4))
        net = _TandemNet(graph)
        net.converge()
        schedule = random_churn_schedule(
            graph,
            random.Random(8),
            epochs=3,
            events_per_epoch=1,
            kinds=("leave",),
            require="connected",
            seed=8,
        )
        for events in schedule.epochs:
            for event in events:
                net.leave(event.node)
            net.kick()
            net.converge()

    def test_churn_epochs_cost_and_link_failures(self):
        graph = random_biconnected_graph(10, random.Random(5))
        net = _TandemNet(graph)
        net.converge()
        schedule = random_churn_schedule(
            graph,
            random.Random(9),
            epochs=4,
            events_per_epoch=2,
            kinds=("cost", "link-down"),
            require="connected",
            seed=9,
        )
        for events in schedule.epochs:
            for event in events:
                if event.kind == "cost":
                    net.change_cost(event.node, float(event.cost))
                else:
                    net.link_down(*event.link)
            net.kick()
            net.converge()

    def test_full_vocabulary_epochs_reconverge_to_oracle_parity(self):
        # link-up and join need the protocol's full-table resend, which
        # has no pure-kernel counterpart; cover the whole vocabulary by
        # from-scratch fixed-point parity on every evolved epoch graph.
        graph = random_biconnected_graph(10, random.Random(12))
        schedule = random_churn_schedule(
            graph,
            random.Random(13),
            epochs=3,
            events_per_epoch=2,
            kinds=EVENT_KINDS,
            require="biconnected",
            seed=13,
        )
        for snapshot in evolved_graphs(graph, schedule):
            columnar = kernel_fixed_point(snapshot, kernel_cls=ReplayKernel)
            reference = kernel_fixed_point(snapshot, kernel_cls=DictReplayKernel)
            for node in columnar:
                assert _digests(columnar[node]) == _digests(reference[node]), node


def _shared_pool(construction):
    """The one MirrorKernelPool behind a shared-checking run."""
    pool = next(iter(construction.nodes.values())).mirror_pool
    assert pool is not None
    return pool


def _replay_log_through_dict(entry):
    """Replay one SharedKernel's verified op log on the dict kernel.

    Rebuilds the seed state with the exact ``_fresh_kernel`` recipe,
    then asserts every recorded flush prediction — the broadcasts the
    checkers verified against — is reproduced bit-for-bit.
    """
    kernel = DictReplayKernel(entry.owner, entry.seed_neighbors, entry.seed_cost)
    for node, cost in entry.seed_known_costs.items():
        kernel.note_cost_declaration(node, cost)
    kernel.reset_phase2()
    kernel.recompute_routes()
    kernel.recompute_avoidance()
    kernel.derive_pricing()
    assert kernel.consume_route_delta() == entry.initial_route
    assert kernel.consume_avoid_delta() == entry.initial_price
    for op in entry.ops:
        if op[0] == "apply":
            _tag, kind, src, rows = op
            if kind == KIND_RT_UPDATE:
                kernel.apply_route_delta(src, rows)
            else:
                kernel.apply_avoid_delta(src, rows)
        else:
            assert kernel.settle() == (op[1], op[2]), entry.owner
    assert kernel.full_digest() == entry.kernel.full_digest(), entry.owner
    return kernel


class TestOpLogReplayParity:
    """Checked-construction shared logs replay identically on the oracle."""

    def test_honest_run_with_heterogeneous_delays(self):
        graph = random_biconnected_graph(10, random.Random(7))

        def delays(a, b, _rng=random.Random(17)):
            return _rng.uniform(1.0, 2.5)

        construction = run_checked_construction(graph, link_delays=delays)
        assert construction.flags == []
        pool = _shared_pool(construction)
        entries = sorted(pool._kernels.values(), key=lambda e: repr(e.owner))
        assert entries and any(entry.ops for entry in entries)
        for entry in entries:
            _replay_log_through_dict(entry)

    def test_private_checking_matches_shared_digests(self):
        graph = random_biconnected_graph(8, random.Random(3))
        shared = run_checked_construction(graph, shared_checking=True)
        private = run_checked_construction(graph, shared_checking=False)
        for node_id in shared.nodes:
            assert (
                shared.nodes[node_id].comp.full_digest()
                == private.nodes[node_id].comp.full_digest()
            ), node_id
        for entry in _shared_pool(shared)._kernels.values():
            _replay_log_through_dict(entry)

    @pytest.mark.parametrize(
        "spec",
        construction_deviations(),
        ids=lambda spec: spec.name,
    )
    def test_manipulation_catalogue_runs(self, spec):
        # A deviant in the network may fork mirrors off the shared log,
        # but every *verified* log prefix must still replay exactly on
        # the dict kernel — divergence handling never corrupts the log.
        construction = run_checked_construction(
            figure1_graph(),
            node_factory=faithful_deviant_factory(spec, "C"),
        )
        for entry in _shared_pool(construction)._kernels.values():
            _replay_log_through_dict(entry)


class TestKernelStatsCompleteness:
    """merge/as_dict must cover every declared counter field."""

    def _populated(self):
        stats = KernelStats()
        for index, field in enumerate(dataclasses.fields(KernelStats), start=1):
            setattr(stats, field.name, index)
        return stats

    def test_merge_accumulates_every_field(self):
        target = self._populated()
        target.merge(self._populated())
        for index, field in enumerate(dataclasses.fields(KernelStats), start=1):
            assert getattr(target, field.name) == 2 * index, field.name

    def test_as_dict_exposes_every_field(self):
        stats = self._populated()
        view = stats.as_dict()
        assert set(view) == {f.name for f in dataclasses.fields(KernelStats)}
        for index, field in enumerate(dataclasses.fields(KernelStats), start=1):
            assert view[field.name] == index, field.name


#: Subprocess workload: both kernels' fixed points on one graph.
_HASH_SEED_WORKER = """
import json
import random
import sys

from repro.routing.kernel import ReplayKernel, kernel_fixed_point
from repro.routing.kernel_dict import DictReplayKernel
from repro.workloads import random_biconnected_graph

graph = random_biconnected_graph(12, random.Random(3))
out = {}
for label, cls in (("columnar", ReplayKernel), ("dict", DictReplayKernel)):
    kernels = kernel_fixed_point(graph, kernel_cls=cls)
    out[label] = {
        repr(node): kernel.full_digest()
        for node, kernel in sorted(kernels.items(), key=repr)
    }
json.dump(out, sys.stdout, sort_keys=True)
"""


class TestHashSeedParity:
    def test_digests_identical_across_hash_seeds(self, tmp_path):
        script = tmp_path / "worker.py"
        script.write_text(_HASH_SEED_WORKER)
        procs = {
            seed: subprocess.Popen(
                [sys.executable, str(script)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONHASHSEED=seed),
            )
            for seed in ("0", "1")
        }
        outputs = {}
        for seed, proc in procs.items():
            stdout, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, f"seed {seed} failed:\n{stderr}"
            outputs[seed] = json.loads(stdout)
        for seed, out in outputs.items():
            assert out["columnar"] == out["dict"], seed
            assert len(out["columnar"]) == 12
        assert outputs["0"] == outputs["1"]
