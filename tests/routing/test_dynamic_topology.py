"""Dynamic topology engine locked down by the epoch-equivalence oracle.

Reproduces: the recomputation setting of Shneidman & Parkes (PODC'04)
Section 4 — FPSS re-converging after network change.  The contract
under test: after every reconvergence epoch, each surviving node's
DATA1/DATA2/DATA3* digests are bit-identical to a fresh
``kernel_fixed_point`` run on the post-event graph, across delivery
modes, heterogeneous delays, membership churn, and partitions.
"""

import random

import pytest

from repro.errors import ConvergenceError
from repro.routing import ASGraph, figure1_graph, run_plain_fpss
from repro.routing.dynamic import (
    DynamicTopologyEngine,
    run_dynamic_fpss,
    verify_epoch_equivalence,
)
from repro.sim.churn import (
    EVENT_KINDS,
    ChurnEvent,
    ChurnSchedule,
    random_churn_schedule,
)
from repro.workloads import random_biconnected_graph, uniform_all_pairs


def sparse_graph(size, seed):
    """AS-like sparse biconnected test graph (constant extra degree)."""
    rng = random.Random(seed * 100 + size)
    return random_biconnected_graph(size, rng, extra_edge_prob=4.0 / (size - 1))


def bridged_graph():
    """Two triangles joined by a single bridge — removing it partitions."""
    return ASGraph(
        {"a": 1.0, "b": 2.0, "c": 3.0, "d": 1.0, "e": 2.0, "f": 3.0},
        [
            ("a", "b"), ("b", "c"), ("a", "c"),
            ("d", "e"), ("e", "f"), ("d", "f"),
            ("c", "d"),  # the bridge
        ],
    )


class TestExplicitEvents:
    """Each event kind, applied explicitly, reconverges to the oracle.

    The engine runs with ``verify=True`` throughout, so every
    ``run_epoch`` call *asserts* digest equivalence with a fresh fixed
    point on the post-event graph; these tests add the observable
    consequences on top.
    """

    def test_cost_change_reprices_routes(self):
        engine = DynamicTopologyEngine(figure1_graph())
        engine.converge()
        report = engine.run_epoch(
            (ChurnEvent(kind="cost", node="C", cost=50.0),)
        )
        assert report.reconvergence_messages > 0
        # C is now so expensive that no LCP transits it.
        for node_id, node in engine.nodes.items():
            for dest in engine.graph.nodes:
                if dest == node_id:
                    continue
                entry = node.comp.routing.entry(dest)
                assert entry is not None
                # Endpoints may be C; the interior (transit) may not.
                assert "C" not in entry.path[1:-1]

    def test_link_down_reroutes_without_stale_state(self):
        graph = figure1_graph()
        engine = DynamicTopologyEngine(graph)
        engine.converge()
        edge = graph.edges[0]
        report = engine.run_epoch((ChurnEvent(kind="link-down", link=edge),))
        assert report.reconvergence_messages > 0
        assert not engine.graph.has_edge(*edge)

    def test_link_up_matches_never_failed_network(self):
        graph = figure1_graph()
        edge = graph.edges[0]
        reduced = ASGraph(
            graph.costs,
            [p for p in graph.edges if frozenset(p) != frozenset(edge)],
        )
        engine = DynamicTopologyEngine(reduced)
        engine.converge()
        engine.run_epoch((ChurnEvent(kind="link-up", link=edge),))
        # The restored network is digest-identical to one that never
        # lost the link (fresh convergence on the full figure-1 graph).
        _, fresh_nodes, _ = run_plain_fpss(graph)
        for node_id in graph.nodes:
            assert (
                engine.nodes[node_id].comp.full_digest()
                == fresh_nodes[node_id].comp.full_digest()
            )

    def test_leave_equals_reduced_graph_directly(self):
        """Node departure via churn == constructing the reduced graph."""
        graph = sparse_graph(10, seed=4)
        victim = graph.nodes[0]
        reduced = graph.without_node(victim)
        assert reduced.is_connected()
        engine = DynamicTopologyEngine(graph)
        engine.converge()
        engine.run_epoch((ChurnEvent(kind="leave", node=victim),))
        _, fresh_nodes, _ = run_plain_fpss(reduced)
        for node_id in reduced.nodes:
            assert (
                engine.nodes[node_id].comp.full_digest()
                == fresh_nodes[node_id].comp.full_digest()
            )

    def test_join_equals_grown_graph_directly(self):
        """Node arrival via churn == constructing the grown graph."""
        graph = figure1_graph()
        event = ChurnEvent(
            kind="join", node="N", cost=2.0, links=(("N", "A"), ("N", "C"))
        )
        engine = DynamicTopologyEngine(graph)
        engine.converge()
        engine.run_epoch((event,))
        grown = ASGraph(
            dict(graph.costs, N=2.0), graph.edges + (("N", "A"), ("N", "C"))
        )
        _, fresh_nodes, _ = run_plain_fpss(grown)
        for node_id in grown.nodes:
            assert (
                engine.nodes[node_id].comp.full_digest()
                == fresh_nodes[node_id].comp.full_digest()
            )

    def test_epochs_require_prior_convergence(self):
        engine = DynamicTopologyEngine(figure1_graph())
        with pytest.raises(ConvergenceError):
            engine.run_epoch((ChurnEvent(kind="cost", node="A", cost=2.0),))


class TestPartitions:
    """Partition handling: unreachable destinations are withdrawn
    everywhere, not retained as stale state."""

    def test_partition_withdraws_unreachable_destinations(self):
        engine = DynamicTopologyEngine(bridged_graph())
        engine.converge()
        engine.run_epoch((ChurnEvent(kind="link-down", link=("c", "d")),))
        west, east = ("a", "b", "c"), ("d", "e", "f")
        for src in west:
            for dest in east:
                assert engine.nodes[src].comp.routing.entry(dest) is None
            for dest in west:
                if dest != src:
                    assert engine.nodes[src].comp.routing.entry(dest) is not None
        for src in east:
            for dest in west:
                assert engine.nodes[src].comp.routing.entry(dest) is None

    def test_cross_partition_traffic_counts_as_unroutable(self):
        graph = bridged_graph()
        schedule = ChurnSchedule.single(
            ChurnEvent(kind="link-down", link=("c", "d"))
        )
        run = run_dynamic_fpss(
            graph, schedule, traffic=lambda g: uniform_all_pairs(g)
        )
        report = run.epochs[0]
        # 3 west x 3 east, both directions, cannot be carried.
        assert report.unroutable_flows == 18
        assert report.routed_flows == 12
        assert 0 < report.availability < 1
        assert run.availability == report.availability

    def test_healing_restores_full_availability(self):
        graph = bridged_graph()
        schedule = ChurnSchedule(
            epochs=(
                (ChurnEvent(kind="link-down", link=("c", "d")),),
                (ChurnEvent(kind="link-up", link=("c", "d")),),
            )
        )
        run = run_dynamic_fpss(
            graph, schedule, traffic=lambda g: uniform_all_pairs(g)
        )
        assert run.epochs[0].availability < 1
        assert run.epochs[1].availability == 1.0
        assert run.epochs[1].unroutable_flows == 0
        # Healed network is digest-identical to a never-partitioned one.
        _, fresh_nodes, _ = run_plain_fpss(graph)
        for node_id in graph.nodes:
            assert (
                run.nodes[node_id].comp.full_digest()
                == fresh_nodes[node_id].comp.full_digest()
            )


class TestEpochEquivalenceProperty:
    """Randomized property: any viable churn schedule reconverges to
    the fresh fixed point, across sizes, epoch counts, delivery modes,
    and heterogeneous delays.  ``verify=True`` means the engine itself
    raises on the first digest divergence."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("size", [16, 24])
    def test_random_schedules_reconverge_exactly(self, size, seed):
        graph = sparse_graph(size, seed=seed)
        epochs = (seed % 4) + 1
        schedule = random_churn_schedule(
            graph,
            random.Random(1000 + seed),
            epochs=epochs,
            events_per_epoch=2,
            kinds=EVENT_KINDS,
            require="connected",
        )
        run = run_dynamic_fpss(
            graph, schedule, traffic=lambda g: uniform_all_pairs(g)
        )
        assert len(run.epochs) == epochs
        # Connected throughout: every attempted flow was routable.
        assert run.availability == 1.0
        assert all(r.unroutable_flows == 0 for r in run.epochs)
        verify_epoch_equivalence(run.graph, run.nodes)

    @pytest.mark.parametrize("batch", [True, False])
    def test_delivery_mode_is_invisible(self, batch):
        graph = sparse_graph(12, seed=7)
        schedule = random_churn_schedule(
            graph,
            random.Random(21),
            epochs=2,
            events_per_epoch=2,
            kinds=EVENT_KINDS,
        )
        run = run_dynamic_fpss(graph, schedule, batch_delivery=batch)
        verify_epoch_equivalence(run.graph, run.nodes)

    def test_heterogeneous_delays_reconverge_exactly(self):
        graph = sparse_graph(12, seed=3)

        def delays(a, b, _rng=random.Random(13)):
            return _rng.uniform(1.0, 2.5)

        schedule = random_churn_schedule(
            graph,
            random.Random(8),
            epochs=3,
            events_per_epoch=2,
            kinds=EVENT_KINDS,
        )
        run = run_dynamic_fpss(graph, schedule, link_delays=delays)
        verify_epoch_equivalence(run.graph, run.nodes)

    def test_determinism_across_runs(self):
        graph = sparse_graph(12, seed=1)
        schedule = random_churn_schedule(
            graph, random.Random(4), epochs=2, events_per_epoch=2
        )

        def fingerprint():
            run = run_dynamic_fpss(
                graph, schedule, traffic=lambda g: uniform_all_pairs(g)
            )
            return [
                (
                    r.epoch,
                    r.reconvergence_messages,
                    r.payments_total,
                    run.nodes[sorted(run.graph.nodes, key=repr)[0]]
                    .comp.full_digest(),
                )
                for r in run.epochs
            ]

        assert fingerprint() == fingerprint()


class TestRunMetrics:
    def test_amplification_relates_totals(self):
        graph = sparse_graph(12, seed=2)
        schedule = random_churn_schedule(
            graph, random.Random(6), epochs=3, events_per_epoch=2
        )
        run = run_dynamic_fpss(graph, schedule)
        total = sum(r.reconvergence_messages for r in run.epochs)
        assert run.initial_messages > 0
        assert run.message_amplification == pytest.approx(
            total / run.initial_messages
        )

    def test_oracle_rejects_stale_tables(self):
        """The oracle itself must be discriminating: tables computed on
        the old graph fail against the evolved one."""
        graph = figure1_graph()
        _, nodes, _ = run_plain_fpss(graph)
        evolved = graph.with_costs({"C": 50.0})
        with pytest.raises(ConvergenceError):
            verify_epoch_equivalence(evolved, nodes)

    def test_quiescence_is_enforced(self):
        """Events may only be applied at quiescence; a simulator with
        messages in flight is rejected loudly."""
        engine = DynamicTopologyEngine(figure1_graph())
        engine.converge()
        engine.simulator.schedule_local(
            "A", 1.0, lambda: None, label="in-flight"
        )
        with pytest.raises(ConvergenceError):
            engine.run_epoch((ChurnEvent(kind="cost", node="A", cost=2.0),))
