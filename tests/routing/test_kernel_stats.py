"""Direct unit tests for kernel work counters and their pooling.

:class:`KernelStats` is the currency every overhead/benchmark table
and the telemetry ``kernel`` counter records trade in, and
:meth:`MirrorKernelPool.collected_stats` is the cross-epoch aggregation
the checker-scaling results report — both deserve direct coverage, not
just incidental exercise through protocol runs.
"""

from repro.routing.kernel import KernelStats, MirrorKernelPool

FIELDS = (
    "rows_ingested",
    "route_relaxations",
    "route_rescans",
    "avoid_rescans",
    "shared_hits",
    "forks",
    "seed_mismatches",
)


def _stats(**values):
    stats = KernelStats()
    for name, value in values.items():
        setattr(stats, name, value)
    return stats


class TestKernelStatsMerge:
    def test_zero_is_identity(self):
        stats = _stats(rows_ingested=3, forks=1)
        before = stats.as_dict()
        stats.merge(KernelStats())
        assert stats.as_dict() == before

    def test_accumulates_every_field(self):
        left = _stats(**{name: i + 1 for i, name in enumerate(FIELDS)})
        right = _stats(**{name: 10 * (i + 1) for i, name in enumerate(FIELDS)})
        left.merge(right)
        assert left.as_dict() == {
            name: 11 * (i + 1) for i, name in enumerate(FIELDS)
        }

    def test_merge_is_commutative_on_totals(self):
        a = _stats(rows_ingested=2, route_rescans=5)
        b = _stats(rows_ingested=7, shared_hits=3)
        left, right = _stats(), _stats()
        left.merge(a)
        left.merge(b)
        right.merge(b)
        right.merge(a)
        assert left.as_dict() == right.as_dict()

    def test_as_dict_covers_every_counter(self):
        assert tuple(KernelStats().as_dict()) == FIELDS
        assert all(v == 0 for v in KernelStats().as_dict().values())


class TestMirrorKernelPoolCollectedStats:
    SEED = dict(
        neighbors=("B", "C"),
        declared_cost=2.0,
        known_costs={"A": 1.0, "B": 2.0, "C": 3.0},
    )

    def _acquire(self, pool, **over):
        seed = {**self.SEED, **over}
        return pool.acquire(
            "A", seed["neighbors"], seed["declared_cost"], seed["known_costs"]
        )

    def test_empty_pool_collects_zero(self):
        assert MirrorKernelPool().collected_stats().as_dict() == (
            KernelStats().as_dict()
        )

    def test_live_kernel_counters_are_visible(self):
        pool = MirrorKernelPool()
        shared = self._acquire(pool)
        first = self._acquire(pool)
        assert first is shared  # same seed shares
        shared.kernel.stats.rows_ingested = 5
        shared.stats.shared_hits = 2
        collected = pool.collected_stats()
        assert collected.rows_ingested == 5
        assert collected.shared_hits == 2

    def test_seed_mismatch_counted_on_pool(self):
        pool = MirrorKernelPool()
        self._acquire(pool)
        refused = self._acquire(pool, declared_cost=9.0)
        assert refused is None
        assert pool.collected_stats().seed_mismatches == 1

    def test_new_epoch_banks_then_drops_kernels(self):
        pool = MirrorKernelPool()
        shared = self._acquire(pool)
        shared.kernel.stats.rows_ingested = 4
        shared.stats.forks = 1
        pool.new_epoch()
        assert pool.epoch == 1
        banked = pool.collected_stats()
        assert banked.rows_ingested == 4
        assert banked.forks == 1
        # A fresh same-seed acquire after the epoch is a new kernel.
        fresh = self._acquire(pool)
        assert fresh is not shared
        assert pool.collected_stats().rows_ingested == 4

    def test_collection_spans_epochs_without_double_count(self):
        pool = MirrorKernelPool()
        first = self._acquire(pool)
        first.kernel.stats.rows_ingested = 3
        pool.new_epoch()
        second = self._acquire(pool)
        second.kernel.stats.rows_ingested = 10
        collected = pool.collected_stats()
        assert collected.rows_ingested == 13
        # collected_stats is a pure read: calling it twice is stable.
        assert pool.collected_stats().rows_ingested == 13
