"""Unit and oracle tests for the shared replay kernel.

Reproduces: the iterative FPSS calculation of Section 4 (PODC'04) —
here exercised through the pure :class:`~repro.routing.kernel.
ReplayKernel` state machine with no simulator at all, plus the
shared-log machinery (:class:`SharedKernel` / :class:`MirrorKernelPool`)
the checker layer deduplicates with.
"""

import random

import pytest

from repro.errors import ExperimentError, ProtocolError  # noqa: F401
from repro.routing import (
    FPSSComputation,
    KernelStats,
    MirrorKernelPool,
    ReplayKernel,
    RouteEntry,
    SharedKernel,
    engine_for,
    figure1_graph,
    kernel_fixed_point,
    run_plain_fpss,
    verify_against_kernel,
)
from repro.routing.kernel import (
    KIND_PRICE_UPDATE,
    KIND_RT_UPDATE,
    OP_DIVERGED,
    OP_EXTENDED,
    OP_HIT,
)
from repro.workloads import random_biconnected_graph


class TestKernelIdentity:
    def test_fpss_computation_is_the_kernel(self):
        """The protocol-facing class is the kernel under another name."""
        assert issubclass(FPSSComputation, ReplayKernel)
        comp = FPSSComputation("a", ("b", "c"), 1.0)
        assert isinstance(comp, ReplayKernel)
        assert isinstance(comp.stats, KernelStats)

    def test_snapshot_captures_digests(self):
        kernel = ReplayKernel("a", ("b", "c"), 1.0)
        snap = kernel.snapshot()
        assert snap.owner == "a"
        assert snap.cost_digest == kernel.cost_digest()
        assert snap.routing_digest == kernel.routing_digest()
        assert snap.pricing_digest == kernel.pricing_digest()
        assert snap.full_digest() == kernel.full_digest()

    def test_snapshot_is_a_point_in_time(self):
        kernel = ReplayKernel("a", ("b", "c"), 1.0)
        before = kernel.snapshot()
        kernel.note_cost_declaration("b", 2.0)
        after = kernel.snapshot()
        assert before.cost_digest != after.cost_digest
        # The earlier snapshot is immutable history.
        assert before.cost_digest != kernel.cost_digest()


class TestKernelFixedPoint:
    def test_figure1_matches_dijkstra_oracle(self):
        graph = figure1_graph()
        kernels = kernel_fixed_point(graph)
        engine = engine_for(graph)
        for source in graph.nodes:
            tree = engine.tree(source)
            routing = kernels[source].routing
            for destination in graph.nodes:
                if destination == source:
                    continue
                entry = routing.entry(destination)
                oracle = tree.get(destination)
                assert entry is not None and oracle is not None
                assert entry.path == oracle.path
                assert entry.cost == pytest.approx(oracle.cost)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_protocol_run_matches_kernel_fixed_point(self, seed):
        """Third-client check: the simulator-driven protocol and the
        synchronous pure-kernel iteration agree digest-exactly."""
        rng = random.Random(seed)
        graph = random_biconnected_graph(10, rng)
        _, nodes, _ = run_plain_fpss(graph)
        verify_against_kernel(graph, nodes)

    def test_kernel_fixed_point_deterministic(self):
        graph = figure1_graph()
        first = {n: k.full_digest() for n, k in kernel_fixed_point(graph).items()}
        second = {n: k.full_digest() for n, k in kernel_fixed_point(graph).items()}
        assert first == second


def _seeded_pool_args(graph, principal):
    """The seed every checker of ``principal`` derives after phase 1."""
    known = {n: graph.cost(n) for n in graph.nodes}
    return {
        "neighbors": graph.neighbors(principal),
        "declared_cost": graph.cost(principal),
        "known_costs": known,
    }


class TestSharedKernel:
    @pytest.fixture
    def graph(self):
        return figure1_graph()

    @pytest.fixture
    def shared(self, graph):
        principal = sorted(graph.nodes, key=repr)[0]
        args = _seeded_pool_args(graph, principal)
        return SharedKernel(
            owner=principal,
            seed_neighbors=tuple(sorted(args["neighbors"], key=repr)),
            seed_cost=float(args["declared_cost"]),
            seed_known_costs=dict(args["known_costs"]),
        )

    def test_initial_announcements_recorded(self, shared):
        assert shared.initial_route  # direct routes at least
        assert shared.frontier == 0

    def test_leader_extends_follower_hits(self, shared, graph):
        principal = shared.owner
        neighbor = graph.neighbors(principal)[0]
        rows = (("x", 1.0, (neighbor, "x")),)
        assert shared.ingest(0, KIND_RT_UPDATE, neighbor, rows) is OP_EXTENDED
        # A second mirror submitting the same op at the same position
        # is satisfied from the log without kernel work.
        assert shared.ingest(0, KIND_RT_UPDATE, neighbor, rows) is OP_HIT
        assert shared.stats.shared_hits == 1

    def test_divergent_op_refused(self, shared, graph):
        principal = shared.owner
        neighbor = graph.neighbors(principal)[0]
        rows = (("x", 1.0, (neighbor, "x")),)
        altered = (("x", 9.0, (neighbor, "x")),)
        shared.ingest(0, KIND_RT_UPDATE, neighbor, rows)
        assert shared.ingest(0, KIND_RT_UPDATE, neighbor, altered) is OP_DIVERGED

    def test_flush_records_predictions(self, shared, graph):
        principal = shared.owner
        neighbor = graph.neighbors(principal)[0]
        rows = (("zz", 0.0, (neighbor, "zz")),)
        shared.ingest(0, KIND_RT_UPDATE, neighbor, rows)
        pos, route_delta, price_delta, ran = shared.flush(1)
        assert pos == 2 and ran
        # Replaying the same flush from the log reuses the prediction.
        pos2, route2, price2, ran2 = shared.flush(1)
        assert (pos2, route2, price2) == (pos, route_delta, price_delta)
        assert not ran2

    def test_flush_where_log_has_apply_is_divergence(self, shared, graph):
        principal = shared.owner
        neighbor = graph.neighbors(principal)[0]
        rows = (("x", 1.0, (neighbor, "x")),)
        shared.ingest(0, KIND_RT_UPDATE, neighbor, rows)
        assert shared.flush(0) is None

    def test_fork_replays_verified_prefix(self, shared, graph):
        principal = shared.owner
        neighbor = graph.neighbors(principal)[0]
        rows = (("zz", 0.0, (neighbor, "zz")),)
        shared.ingest(0, KIND_RT_UPDATE, neighbor, rows)
        shared.flush(1)
        fork = shared.fork_at(2)
        assert fork is not shared.kernel
        assert fork.routing_digest() == shared.kernel.routing_digest()
        assert fork.pricing_digest() == shared.kernel.pricing_digest()
        assert shared.stats.forks == 1

    def test_fork_at_zero_is_phase_start_state(self, shared):
        fork = shared.fork_at(0)
        # Identical to a fresh mirror start: the initial announcements
        # were consumed, nothing else happened.
        assert fork.routing_digest() != ""
        assert not fork.consume_route_delta()
        assert not fork.consume_avoid_delta()

    def test_avoid_ops_replay_identically(self, shared, graph):
        principal = shared.owner
        neighbor = graph.neighbors(principal)[0]
        other = [n for n in graph.nodes if n not in (principal, neighbor)][0]
        rows = ((other, neighbor, 3.0, (neighbor, other)),)
        shared.ingest(0, KIND_PRICE_UPDATE, neighbor, rows)
        shared.flush(1)
        fork = shared.fork_at(2)
        assert fork.pricing_digest() == shared.kernel.pricing_digest()


class TestMirrorKernelPool:
    def test_acquire_shares_on_matching_seed(self):
        graph = figure1_graph()
        pool = MirrorKernelPool()
        principal = sorted(graph.nodes, key=repr)[0]
        args = _seeded_pool_args(graph, principal)
        first = pool.acquire(principal, **args)
        second = pool.acquire(principal, **args)
        assert first is second

    def test_seed_mismatch_refuses_sharing(self):
        graph = figure1_graph()
        pool = MirrorKernelPool()
        principal = sorted(graph.nodes, key=repr)[0]
        args = _seeded_pool_args(graph, principal)
        assert pool.acquire(principal, **args) is not None
        divergent = dict(args)
        divergent["declared_cost"] = args["declared_cost"] + 1.0
        assert pool.acquire(principal, **divergent) is None
        assert pool.collected_stats().seed_mismatches == 1

    def test_new_epoch_drops_kernels(self):
        graph = figure1_graph()
        pool = MirrorKernelPool()
        principal = sorted(graph.nodes, key=repr)[0]
        args = _seeded_pool_args(graph, principal)
        first = pool.acquire(principal, **args)
        pool.new_epoch()
        second = pool.acquire(principal, **args)
        assert first is not second
        assert pool.epoch == 1


class TestKernelStats:
    def test_counters_move_on_protocol_run(self):
        graph = figure1_graph()
        _, nodes, _ = run_plain_fpss(graph)
        totals = KernelStats()
        for node in nodes.values():
            totals.merge(node.comp.stats)
        assert totals.rows_ingested > 0
        assert totals.route_relaxations > 0
        assert totals.avoid_rescans > 0
        as_dict = totals.as_dict()
        assert as_dict["rows_ingested"] == totals.rows_ingested

    def test_merge_accumulates(self):
        a = KernelStats(rows_ingested=2, forks=1)
        b = KernelStats(rows_ingested=3, shared_hits=4)
        a.merge(b)
        assert a.rows_ingested == 5
        assert a.shared_hits == 4
        assert a.forks == 1


class TestRouteEntrySharing:
    def test_wire_rows_keep_identity_through_tuple(self):
        """`tuple` of a tuple is the same object — the property the
        shared-log verification's fast path relies on."""
        rows = (("x", 1.0, ("a", "x")),)
        assert tuple(rows) is rows

    def test_route_entry_roundtrip(self):
        entry = RouteEntry(cost=2.0, path=("a", "b"))
        assert entry.sort_key() == entry.sort_key()
