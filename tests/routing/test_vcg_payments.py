"""Tests for FPSS/VCG payments, including strategyproofness properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import (
    all_pairs_payments,
    economics_under_traffic,
    figure1_graph,
    lowest_cost_path,
    route_payments,
    utility_of_misreport,
    vcg_transit_payment,
)
from repro.workloads import random_biconnected_graph, uniform_all_pairs


class TestPaymentFormula:
    def test_payment_at_least_declared_cost(self, fig1):
        """p_k = c_k + (d_minus_k - d) >= c_k: transit is profitable."""
        for (s, d), rp in all_pairs_payments(fig1).items():
            for k, payment in rp.payments.items():
                assert payment >= fig1.cost(k) - 1e-9

    def test_off_path_node_gets_zero(self, fig1):
        # LCP(X, Z) = X-D-C-Z; A and B are off-path.
        assert vcg_transit_payment(fig1, "X", "Z", "A") == 0.0
        assert vcg_transit_payment(fig1, "X", "Z", "B") == 0.0

    def test_endpoint_is_not_transit(self, fig1):
        with pytest.raises(RoutingError, match="endpoint"):
            vcg_transit_payment(fig1, "X", "Z", "X")

    def test_figure1_c_payment_for_xz(self, fig1):
        """p_C^{XZ} = c_C + cost(X->Z avoiding C) - cost(X->Z)
        = 1 + 5 - 2 = 4."""
        assert vcg_transit_payment(fig1, "X", "Z", "C") == pytest.approx(4.0)

    def test_figure1_d_payment_for_xz(self, fig1):
        """p_D^{XZ} = 1 + cost(X->Z avoiding D) - 2.
        Avoiding D: X-A-Z with transit cost 5 -> p = 1 + 5 - 2 = 4."""
        assert vcg_transit_payment(fig1, "X", "Z", "D") == pytest.approx(4.0)

    def test_route_payments_totals(self, fig1):
        rp = route_payments(fig1, "X", "Z")
        assert set(rp.payments) == {"C", "D"}
        assert rp.total_payment == pytest.approx(8.0)
        assert rp.route.path == ("X", "D", "C", "Z")

    def test_all_pairs_requires_biconnected(self):
        from repro.errors import NotBiconnectedError
        from repro.routing import ASGraph

        chain = ASGraph({"a": 1, "b": 1, "c": 1}, [("a", "b"), ("b", "c")])
        with pytest.raises(NotBiconnectedError):
            all_pairs_payments(chain)


class TestEconomics:
    def test_transit_profit_non_negative_under_vcg(self, fig1):
        economics = economics_under_traffic(
            fig1, fig1, uniform_all_pairs(fig1), payment_rule="vcg"
        )
        for node, record in economics.items():
            assert record.received - record.true_transit_cost >= -1e-9

    def test_unknown_payment_rule(self, fig1):
        with pytest.raises(RoutingError, match="unknown payment rule"):
            economics_under_traffic(fig1, fig1, {}, payment_rule="flat")

    def test_negative_volume_rejected(self, fig1):
        with pytest.raises(RoutingError, match="negative traffic"):
            economics_under_traffic(fig1, fig1, {("X", "Z"): -1.0})

    def test_zero_volume_ignored(self, fig1):
        economics = economics_under_traffic(fig1, fig1, {("X", "Z"): 0.0})
        assert all(r.utility == 0.0 for r in economics.values())

    def test_utility_is_quasilinear(self, fig1):
        economics = economics_under_traffic(fig1, fig1, {("X", "Z"): 2.0})
        c = economics["C"]
        assert c.utility == pytest.approx(
            c.received - c.paid - c.true_transit_cost
        )

    def test_economics_totals_equal_route_payments(self, fig1):
        """Regression: economics_under_traffic must charge exactly the
        per-pair route_payments bundle (it once re-derived the base LCP
        per transit node via vcg_transit_payment)."""
        traffic = {
            pair: volume
            for pair, volume in uniform_all_pairs(fig1, volume=2.5).items()
        }
        economics = economics_under_traffic(fig1, fig1, traffic)
        expected_paid = {node: 0.0 for node in fig1.nodes}
        expected_received = {node: 0.0 for node in fig1.nodes}
        for (source, destination), volume in traffic.items():
            bundle = route_payments(fig1, source, destination)
            expected_paid[source] += volume * bundle.total_payment
            for transit, payment in bundle.payments.items():
                expected_received[transit] += volume * payment
        for node in fig1.nodes:
            assert economics[node].paid == pytest.approx(expected_paid[node])
            assert economics[node].received == pytest.approx(
                expected_received[node]
            )

    def test_economics_totals_equal_route_payments_random(self):
        """Same regression on a random biconnected graph."""
        rng = random.Random(99)
        graph = random_biconnected_graph(7, rng)
        traffic = uniform_all_pairs(graph)
        economics = economics_under_traffic(graph, graph, traffic)
        for node in graph.nodes:
            expected_received = sum(
                volume * route_payments(graph, s, d).payments.get(node, 0.0)
                for (s, d), volume in traffic.items()
                if node not in (s, d)
            )
            assert economics[node].received == pytest.approx(expected_received)


class TestExample1:
    """Example 1: C's lie helps under naive pricing, never under VCG."""

    def setup_method(self):
        self.graph = figure1_graph()
        # All-pairs traffic so C both carries X-Z and D-Z flows.
        self.traffic = uniform_all_pairs(self.graph)

    def test_lie_profits_under_naive_pricing(self):
        truthful, lied = utility_of_misreport(
            self.graph, "C", 5.0, self.traffic, payment_rule="declared-cost"
        )
        assert lied > truthful

    def test_lie_never_profits_under_vcg(self):
        for declared in (0.0, 0.5, 2.0, 5.0, 50.0):
            truthful, lied = utility_of_misreport(
                self.graph, "C", declared, self.traffic, payment_rule="vcg"
            )
            assert lied <= truthful + 1e-9


class TestStrategyproofnessProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=8.0),
    )
    def test_vcg_misreport_never_profits(self, seed, declared):
        """Property (Def 5 / FPSS Theorem): on random biconnected
        graphs, no unilateral transit-cost misreport raises utility
        under VCG payments."""
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 8), rng)
        node = rng.choice(list(graph.nodes))
        traffic = uniform_all_pairs(graph)
        truthful, lied = utility_of_misreport(
            graph, node, declared, traffic, payment_rule="vcg"
        )
        assert lied <= truthful + 1e-7

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_naive_pricing_is_manipulable_somewhere(self, seed):
        """Property: overstatement under declared-cost pricing weakly
        dominates while the node keeps its traffic — and the premium
        is strictly profitable whenever the node carries any transit
        traffic that survives the overstatement."""
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 7), rng)
        traffic = uniform_all_pairs(graph)
        found_strict = False
        for node in graph.nodes:
            truthful, lied = utility_of_misreport(
                graph, node, graph.cost(node) * 1.05, traffic,
                payment_rule="declared-cost",
            )
            if lied > truthful + 1e-9:
                found_strict = True
        # A 5% premium keeps most LCPs unchanged, so on nearly every
        # random instance someone profits; tolerate the rare graph
        # where every overstatement loses its traffic.
        if not found_strict:
            for node in graph.nodes:
                truthful, lied = utility_of_misreport(
                    graph, node, graph.cost(node) * 1.05, traffic,
                    payment_rule="declared-cost",
                )
                assert lied <= truthful + 1e-9


class TestSparseEconomics:
    """The early-exit (sparse) routing mode must be output-identical."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_sparse_matches_full_on_random_traffic(self, seed):
        from repro.workloads import random_pairs

        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 10), rng)
        traffic = random_pairs(graph, rng, rng.randint(1, 6))
        full = economics_under_traffic(graph, graph, traffic, sparse=False)
        sparse = economics_under_traffic(graph, graph, traffic, sparse=True)
        assert set(full) == set(sparse)
        for node in full:
            assert full[node].received == pytest.approx(sparse[node].received)
            assert full[node].paid == pytest.approx(sparse[node].paid)
            assert full[node].true_transit_cost == pytest.approx(
                sparse[node].true_transit_cost
            )

    def test_sparse_matches_full_declared_cost_rule(self, fig1):
        traffic = {("X", "Z"): 2.0, ("Z", "D"): 1.0}
        full = economics_under_traffic(
            fig1, fig1, traffic, payment_rule="declared-cost", sparse=False
        )
        sparse = economics_under_traffic(
            fig1, fig1, traffic, payment_rule="declared-cost", sparse=True
        )
        for node in full:
            assert full[node].utility == pytest.approx(sparse[node].utility)

    def test_auto_mode_picks_sparse_for_few_flows(self, fig1):
        from repro.routing import engine_for

        engine = engine_for(fig1)
        engine.clear_cache()
        engine.partial_runs = 0
        economics_under_traffic(fig1, fig1, {("X", "Z"): 1.0})
        assert engine.partial_runs > 0

    def test_auto_mode_stays_full_for_dense_traffic(self, fig1):
        from repro.routing import engine_for

        engine = engine_for(fig1)
        engine.clear_cache()
        engine.partial_runs = 0
        economics_under_traffic(fig1, fig1, uniform_all_pairs(fig1))
        assert engine.partial_runs == 0
