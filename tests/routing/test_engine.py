"""The routing engine must be bit-identical to the seed oracle.

The seed repository computed LCPs with a path-enumerating best-first
search.  The :class:`~repro.routing.engine.RoutingEngine` replaced it
with a predecessor-pointer Dijkstra plus single-source-tree memoization;
these tests keep the seed algorithm alive as a reference implementation
and assert byte-identical ``(path, cost)`` results — including the
``avoiding=`` restriction and the VCG payments derived from them — on
the paper's Figure 1 network and on randomized biconnected graphs.
"""

import heapq
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, RoutingError
from repro.routing import (
    PathCost,
    RoutingEngine,
    engine_for,
    figure1_graph,
    lcp_tree,
    lowest_cost_path,
    route_payments,
)
from repro.workloads import random_biconnected_graph

# ----------------------------------------------------------------------
# The seed oracle, verbatim: path-carrying best-first search.
# ----------------------------------------------------------------------


def _seed_path_key(cost, path):
    return (cost, len(path), tuple(repr(n) for n in path))


def seed_lowest_cost_path(graph, source, destination, avoiding=None):
    """The seed repository's reference LCP algorithm (kept for parity)."""
    if source == destination:
        return PathCost(path=(source,), cost=0.0)
    best = {}
    heap = [(_seed_path_key(0.0, (source,)), 0.0, (source,))]
    while heap:
        _, cost, path = heapq.heappop(heap)
        node = path[-1]
        if node in best and _seed_path_key(*best[node]) <= _seed_path_key(
            cost, path
        ):
            continue
        best[node] = (cost, path)
        if node == destination:
            continue
        extension_cost = 0.0 if node == source else graph.cost(node)
        for neighbor in graph.neighbors(node):
            if neighbor == avoiding or neighbor in path:
                continue
            new_cost = cost + extension_cost
            new_path = path + (neighbor,)
            if neighbor in best and _seed_path_key(
                *best[neighbor]
            ) <= _seed_path_key(new_cost, new_path):
                continue
            heapq.heappush(
                heap, (_seed_path_key(new_cost, new_path), new_cost, new_path)
            )
    if destination not in best:
        raise RoutingError(f"no path from {source!r} to {destination!r}")
    cost, path = best[destination]
    return PathCost(path=path, cost=cost)


def _tie_heavy_graph(seed):
    """A random biconnected graph engineered to hit the tie-breaker.

    Every third graph allows zero transit costs and every fourth snaps
    costs to integers, so equal-cost paths (needing the hops and then
    the lexicographic rule) occur constantly.
    """
    rng = random.Random(seed)
    low = 0.0 if seed % 3 == 0 else 1.0
    graph = random_biconnected_graph(
        rng.randint(4, 9), rng, cost_range=(low, 4.0)
    )
    if seed % 4 == 0:
        graph = graph.with_costs(
            {node: float(int(graph.cost(node))) for node in graph.nodes}
        )
    return graph


# ----------------------------------------------------------------------
# Bit-identical parity with the seed algorithm
# ----------------------------------------------------------------------


class TestSeedParity:
    def test_figure1_exhaustive_with_avoidance(self):
        graph = figure1_graph()
        for source in graph.nodes:
            for destination in graph.nodes:
                if source == destination:
                    continue
                ours = lowest_cost_path(graph, source, destination)
                ref = seed_lowest_cost_path(graph, source, destination)
                assert ours.path == ref.path
                assert ours.cost == ref.cost
                for avoided in graph.nodes:
                    if avoided in (source, destination):
                        continue
                    ours = lowest_cost_path(
                        graph, source, destination, avoiding=avoided
                    )
                    ref = seed_lowest_cost_path(
                        graph, source, destination, avoiding=avoided
                    )
                    assert ours.path == ref.path
                    assert ours.cost == ref.cost

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_graphs_byte_identical(self, seed):
        """Property: (path, cost) equals the seed oracle on every pair
        of a random (tie-heavy) biconnected graph."""
        graph = _tie_heavy_graph(seed)
        for source in graph.nodes:
            for destination in graph.nodes:
                if source == destination:
                    continue
                ours = lowest_cost_path(graph, source, destination)
                ref = seed_lowest_cost_path(graph, source, destination)
                assert ours.path == ref.path
                assert ours.cost == ref.cost

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_graphs_avoidance_byte_identical(self, seed):
        """Property: LCP_{-k} agrees with the seed oracle, including
        which (source, destination, k) triples are disconnected."""
        graph = _tie_heavy_graph(seed)
        rng = random.Random(seed ^ 0xA5A5)
        nodes = list(graph.nodes)
        for _ in range(12):
            source, destination, avoided = rng.sample(nodes, 3)
            try:
                ref = seed_lowest_cost_path(
                    graph, source, destination, avoiding=avoided
                )
            except RoutingError:
                with pytest.raises(RoutingError):
                    lowest_cost_path(
                        graph, source, destination, avoiding=avoided
                    )
                continue
            ours = lowest_cost_path(
                graph, source, destination, avoiding=avoided
            )
            assert ours.path == ref.path
            assert ours.cost == ref.cost

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_graph_payments_byte_identical(self, seed):
        """Property: VCG payments equal the seed formula exactly."""
        graph = _tie_heavy_graph(seed)
        rng = random.Random(seed ^ 0x5A5A)
        nodes = list(graph.nodes)
        for _ in range(6):
            source, destination = rng.sample(nodes, 2)
            bundle = route_payments(graph, source, destination)
            ref_route = seed_lowest_cost_path(graph, source, destination)
            assert bundle.route.path == ref_route.path
            assert bundle.route.cost == ref_route.cost
            assert set(bundle.payments) == set(ref_route.transit_nodes)
            for transit in ref_route.transit_nodes:
                expected = (
                    graph.cost(transit)
                    + seed_lowest_cost_path(
                        graph, source, destination, avoiding=transit
                    ).cost
                    - ref_route.cost
                )
                assert bundle.payments[transit] == expected


# ----------------------------------------------------------------------
# Engine-specific behaviour: trees, caching, validation
# ----------------------------------------------------------------------


class TestEngineFacade:
    def test_tree_matches_pairwise_queries(self, fig1):
        engine = RoutingEngine(fig1)
        tree = engine.tree("Z")
        assert set(tree) == set(fig1.nodes) - {"Z"}
        for destination, entry in tree.items():
            ref = seed_lowest_cost_path(fig1, "Z", destination)
            assert entry.path == ref.path
            assert entry.cost == ref.cost

    def test_avoidance_tree_single_run(self, fig1):
        engine = RoutingEngine(fig1)
        tree = engine.tree("X", avoiding="C")
        assert engine.runs == 1
        assert all("C" not in entry.path for entry in tree.values())
        # Z is still reachable around C (biconnectivity).
        assert tree["Z"].path == ("X", "A", "Z")

    def test_trees_are_memoized(self, fig1):
        engine = RoutingEngine(fig1)
        first = engine.tree("X")
        again = engine.tree("X")
        assert first is again
        assert engine.runs == 1
        assert engine.hits == 1
        engine.clear_cache()
        assert engine.cached_trees == 0
        engine.tree("X")
        assert engine.runs == 2

    def test_engine_for_is_shared_per_graph(self, fig1):
        assert engine_for(fig1) is engine_for(fig1)
        other = figure1_graph()
        assert engine_for(other) is not engine_for(fig1)

    def test_engine_cache_does_not_pin_graphs(self):
        """Regression: the engine must not hold a strong reference to
        its graph, or the weak per-graph cache can never evict."""
        import gc
        import weakref

        graph = figure1_graph()
        engine_for(graph).tree("X")
        ref = weakref.ref(graph)
        del graph
        gc.collect()
        assert ref() is None

    def test_tree_mapping_is_read_only(self, fig1):
        tree = engine_for(fig1).tree("Z")
        with pytest.raises(TypeError):
            tree["C"] = None

    def test_lcp_tree_supports_avoidance(self, fig1):
        tree = lcp_tree(fig1, "X", avoiding="C")
        assert "C" not in tree
        assert all("C" not in entry.path for entry in tree.values())

    def test_avoidance_drops_disconnected_destinations(self):
        from repro.routing import ASGraph

        # a-b-c chain plus a-c: avoiding b keeps everything reachable,
        # avoiding c on the (a, d) pair disconnects d.
        graph = ASGraph(
            {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")],
        )
        tree = engine_for(graph).tree("a", avoiding="c")
        assert "d" not in tree
        with pytest.raises(RoutingError, match="no path"):
            lowest_cost_path(graph, "a", "d", avoiding="c")

    def test_validation_errors_match_seed_contract(self, fig1):
        engine = engine_for(fig1)
        with pytest.raises(GraphError):
            engine.path("ghost", "A")
        with pytest.raises(GraphError):
            engine.path("A", "ghost")
        with pytest.raises(GraphError):
            engine.tree("ghost")
        with pytest.raises(RoutingError, match="endpoint"):
            engine.path("X", "Z", avoiding="X")
        with pytest.raises(RoutingError):
            engine.tree("X", avoiding="X")
        trivial = engine.path("A", "A")
        assert trivial.path == ("A",) and trivial.cost == 0.0


# ----------------------------------------------------------------------
# Early-exit (partial) trees
# ----------------------------------------------------------------------


class TestPartialTrees:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_partial_matches_full_tree(self, seed):
        """Property: every partial-tree entry is bit-identical to the
        full tree's, for random target subsets on tie-heavy graphs."""
        graph = _tie_heavy_graph(seed)
        rng = random.Random(seed ^ 0xBEEF)
        nodes = list(graph.nodes)
        source = rng.choice(nodes)
        targets = rng.sample(nodes, rng.randint(1, len(nodes)))
        engine = RoutingEngine(graph)
        partial = engine.partial_tree(source, targets)
        full = RoutingEngine(graph).tree(source)
        expected = {
            t for t in targets if t != source and t in full
        }
        assert set(partial) == expected
        for destination in partial:
            assert partial[destination].path == full[destination].path
            assert partial[destination].cost == full[destination].cost

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_partial_matches_full_avoidance_tree(self, seed):
        """Property: early exit agrees with the full LCP_{-k} tree,
        including which targets the restriction disconnects."""
        graph = _tie_heavy_graph(seed)
        rng = random.Random(seed ^ 0xFACE)
        nodes = list(graph.nodes)
        source, avoided = rng.sample(nodes, 2)
        targets = rng.sample(nodes, rng.randint(1, len(nodes) - 1))
        engine = RoutingEngine(graph)
        partial = engine.partial_tree(source, targets, avoiding=avoided)
        full = RoutingEngine(graph).tree(source, avoiding=avoided)
        expected = {
            t
            for t in targets
            if t not in (source, avoided) and t in full
        }
        assert set(partial) == expected
        for destination in partial:
            assert partial[destination].path == full[destination].path
            assert partial[destination].cost == full[destination].cost

    def test_early_exit_settles_fewer_nodes(self):
        """On a long ring, stopping at a close target must not pay for
        the whole tree: the near side settles, the far side does not."""
        graph = ring_for_partial(24)
        engine = RoutingEngine(graph)
        near = graph.nodes[1]
        partial = engine.partial_tree(graph.nodes[0], (near,))
        assert set(partial) == {near}
        assert engine.partial_runs == 1
        # Early exit: only a handful of the 24 nodes ever settled.
        assert engine.settled <= 4
        # The full tree is a separate computation, not the cached partial.
        full = engine.tree(graph.nodes[0])
        assert len(full) == 23
        assert engine.runs == 2
        assert engine.settled >= 24

    def test_partial_results_are_cached(self, fig1):
        engine = RoutingEngine(fig1)
        one = engine.partial_tree("X", ("Z",))
        two = engine.partial_tree("X", ("Z",))
        assert one is two
        assert engine.runs == 1 and engine.hits == 1

    def test_full_tree_serves_partial_queries(self, fig1):
        engine = RoutingEngine(fig1)
        full = engine.tree("X")
        partial = engine.partial_tree("X", ("Z", "D"))
        assert engine.runs == 1  # no second Dijkstra
        assert set(partial) == {"Z", "D"}
        assert partial["Z"].path == full["Z"].path

    def test_clear_cache_drops_partials(self, fig1):
        engine = RoutingEngine(fig1)
        engine.partial_tree("X", ("Z",))
        engine.clear_cache()
        engine.partial_tree("X", ("Z",))
        assert engine.runs == 2

    def test_source_and_avoided_targets_are_skipped(self, fig1):
        engine = RoutingEngine(fig1)
        partial = engine.partial_tree("X", ("X", "C", "Z"), avoiding="C")
        assert set(partial) == {"Z"}
        assert engine.partial_tree("X", ("X",)) == {}

    def test_validation_matches_tree_contract(self, fig1):
        engine = RoutingEngine(fig1)
        with pytest.raises(GraphError):
            engine.partial_tree("ghost", ("A",))
        with pytest.raises(GraphError):
            engine.partial_tree("A", ("ghost",))
        with pytest.raises(GraphError):
            engine.partial_tree("A", ("B",), avoiding="ghost")
        with pytest.raises(RoutingError):
            engine.partial_tree("A", ("B",), avoiding="A")


def ring_for_partial(count):
    """A unit-cost ring big enough to make early exit observable."""
    from repro.routing import ASGraph

    names = [f"r{i:02d}" for i in range(count)]
    return ASGraph(
        {name: 1.0 for name in names},
        [(names[i], names[(i + 1) % count]) for i in range(count)],
    )
