"""Tests for the formal FPSS state-machine model.

The point of this model is coherence between the paper's Section 3
formalism and the operational Section 4 protocol: the action classes
of the formal single-state deviations must match the classifications
carried by the executable manipulation catalogue.
"""

import pytest

from repro.faithful import DEVIATION_CATALOGUE
from repro.routing.formal import (
    FORMAL_DEVIATIONS,
    classification_of,
    formal_deviation,
    fpss_actions,
    fpss_state_machine,
    suggested_specification,
    suggested_update_round,
)
from repro.specs import ActionClass, enumerate_deviations


class TestMachineStructure:
    def test_all_states_reachable(self):
        machine = fpss_state_machine()
        assert machine.unreachable_states() == frozenset()

    def test_alphabet_covers_all_three_external_classes(self):
        machine = fpss_state_machine()
        classes = {a.action_class for a in machine.external_actions}
        assert classes == {
            ActionClass.INFORMATION_REVELATION,
            ActionClass.MESSAGE_PASSING,
            ActionClass.COMPUTATION,
        }

    def test_paper_stated_classification(self):
        """Section 4.1: declaring costs is revelation; relaying
        announcements is message passing; table updates/forwarding and
        bank reporting are computation."""
        actions = fpss_actions()
        assert (
            actions["declare-true-cost"].action_class
            is ActionClass.INFORMATION_REVELATION
        )
        assert (
            actions["relay-cost-declaration"].action_class
            is ActionClass.MESSAGE_PASSING
        )
        assert (
            actions["recompute-tables-honestly"].action_class
            is ActionClass.COMPUTATION
        )
        assert (
            actions["report-honest-digest"].action_class
            is ActionClass.COMPUTATION
        )


class TestSuggestedSpecifications:
    def test_declaration_round_runs_to_done(self):
        behavior = suggested_specification().run()
        assert behavior.final_state == "done"
        names = [a.name for a in behavior.actions]
        assert names == [
            "declare-true-cost",
            "record-input",
            "relay-cost-declaration",
        ]

    def test_update_round_follows_princ_rules(self):
        """[PRINC1]/[PRINC2] ordering: copies first, then recompute,
        then announce."""
        behavior = suggested_update_round().run()
        names = [a.name for a in behavior.actions]
        assert names == [
            "declare-true-cost",
            "await-input",
            "forward-copies-to-checkers",
            "recompute-tables-honestly",
            "announce-tables",
        ]


class TestFormalOperationalCoherence:
    @pytest.mark.parametrize("name", sorted(FORMAL_DEVIATIONS))
    def test_formal_classes_match_catalogue(self, name):
        """The formal machine and the executable catalogue assign the
        same Definition 2-4 classes to each manipulation."""
        assert classification_of(name) == DEVIATION_CATALOGUE[name].classes

    @pytest.mark.parametrize("name", sorted(FORMAL_DEVIATIONS))
    def test_formal_deviation_differs_in_one_state(self, name):
        deviant = formal_deviation(name)
        base_name = deviant.name
        assert base_name == name

    def test_enumeration_finds_every_formal_deviation(self):
        """The generic deviation enumerator discovers all catalogued
        single-state deviations of the update round."""
        base = suggested_update_round()
        deviant_actions = set()
        for deviant in enumerate_deviations(base, max_overrides=1):
            for state in base.deviation_states(deviant):
                action = deviant.action(state)
                if action is not None:
                    deviant_actions.add(action.name)
        assert {
            "drop-checker-copies",
            "alter-checker-copies",
            "announce-false-tables",
            "suppress-announcement",
            "miscompute-tables",
            "declare-false-cost",
        } <= deviant_actions
