"""Tests for the DATA1-DATA4 mechanism tables."""

import pytest

from repro.errors import RoutingError
from repro.routing import (
    INFINITY,
    PaymentList,
    PricingTable,
    RouteEntry,
    RoutingTable,
    TransitCostTable,
)


class TestTransitCostTable:
    def test_declare_reports_changes(self):
        table = TransitCostTable()
        assert table.declare("a", 3.0)
        assert not table.declare("a", 3.0)  # unchanged
        assert table.declare("a", 4.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(RoutingError, match="negative"):
            TransitCostTable().declare("a", -1.0)

    def test_lookup(self):
        table = TransitCostTable()
        table.declare("a", 2.0)
        assert table.cost("a") == 2.0
        assert table.knows("a")
        assert not table.knows("b")
        with pytest.raises(RoutingError, match="no declared cost"):
            table.cost("b")

    def test_digest_changes_with_content(self):
        one, two = TransitCostTable(), TransitCostTable()
        one.declare("a", 1.0)
        two.declare("a", 2.0)
        assert one.stable_digest() != two.stable_digest()
        two.declare("a", 1.0)
        assert one.stable_digest() == two.stable_digest()


class TestRouteEntry:
    def test_ordering_by_cost_then_hops_then_lex(self):
        cheap = RouteEntry(1.0, ("a", "b"))
        short = RouteEntry(2.0, ("a", "b"))
        long = RouteEntry(2.0, ("a", "c", "b"))
        assert cheap.better_than(short)
        assert short.better_than(long)
        assert cheap.better_than(None)

    def test_lex_tiebreak(self):
        one = RouteEntry(1.0, ("a", "b", "d"))
        two = RouteEntry(1.0, ("a", "c", "d"))
        assert one.better_than(two)


class TestRoutingTable:
    def test_update_and_lookup(self):
        table = RoutingTable("a")
        entry = RouteEntry(3.0, ("a", "b", "c"))
        assert table.update("c", entry)
        assert not table.update("c", entry)  # idempotent
        assert table.entry("c") == entry
        assert table.cost("c") == 3.0
        assert table.next_hop("c") == "b"
        assert table.destinations == ("c",)

    def test_no_route_to_self(self):
        with pytest.raises(RoutingError, match="itself"):
            RoutingTable("a").update("a", RouteEntry(0.0, ("a",)))

    def test_unknown_destination(self):
        table = RoutingTable("a")
        assert table.entry("z") is None
        assert table.cost("z") == INFINITY
        assert table.next_hop("z") is None

    def test_digest_sensitive_to_paths(self):
        one, two = RoutingTable("a"), RoutingTable("a")
        one.update("c", RouteEntry(1.0, ("a", "b", "c")))
        two.update("c", RouteEntry(1.0, ("a", "d", "c")))
        assert one.stable_digest() != two.stable_digest()


class TestPricingTable:
    def test_set_price_with_tags(self):
        table = PricingTable("a")
        assert table.set_price("z", "k", 4.0, frozenset({"b"}))
        assert not table.set_price("z", "k", 4.0, frozenset({"b"}))
        cell = table.entry("z", "k")
        assert cell.price == 4.0
        assert cell.tag == frozenset({"b"})

    def test_tag_change_is_a_change(self):
        """DATA3* extension: tags are part of the compared state, so a
        spoof that alters only tags still flips the digest."""
        one, two = PricingTable("a"), PricingTable("a")
        one.set_price("z", "k", 4.0, frozenset({"b"}))
        two.set_price("z", "k", 4.0, frozenset({"c"}))
        assert one.stable_digest() != two.stable_digest()
        assert one.prices_only() == two.prices_only()

    def test_missing_price_is_zero(self):
        assert PricingTable("a").price("z", "k") == 0.0

    def test_total_price(self):
        table = PricingTable("a")
        table.set_price("z", "k1", 4.0, frozenset())
        table.set_price("z", "k2", 2.5, frozenset())
        assert table.total_price("z") == pytest.approx(6.5)

    def test_clear_destination(self):
        table = PricingTable("a")
        table.set_price("z", "k", 4.0, frozenset())
        table.clear_destination("z")
        assert table.row("z") == {}
        assert table.destinations == ()

    def test_tag_union_representation(self):
        table = PricingTable("a")
        table.set_price("z", "k", 4.0, frozenset({"b", "c"}))
        rendered = table.as_dict()["z"]["k"]
        assert rendered == (4.0, ("b", "c"))


class TestPaymentList:
    def test_charges_accumulate(self):
        data4 = PaymentList("a")
        data4.charge("k", 3.0)
        data4.charge("k", 2.0)
        data4.charge("m", 1.0)
        assert data4.owed_to("k") == 5.0
        assert data4.total == 6.0
        assert data4.as_dict() == {"k": 5.0, "m": 1.0}

    def test_negative_charge_rejected(self):
        with pytest.raises(RoutingError, match="negative charge"):
            PaymentList("a").charge("k", -1.0)

    def test_scaled_for_fraud_tests(self):
        data4 = PaymentList("a")
        data4.charge("k", 4.0)
        assert data4.scaled(0.5) == {"k": 2.0}

    def test_digest(self):
        one, two = PaymentList("a"), PaymentList("a")
        one.charge("k", 1.0)
        two.charge("k", 1.0)
        assert one.stable_digest() == two.stable_digest()
