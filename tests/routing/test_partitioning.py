"""FPSS's built-in problem partitioning (Section 4.3, footnote 8).

"The price-update rules are specified in a way that prevents a node
from increasing its incoming payment through changing the pricing
messages ... each of these nodes ignores (by the pricing update rules)
the node that caused the update."

In the avoidance-cost relaxation this appears as the exclusion
``neighbor != avoided``: node k's announcements never enter any
avoidance entry d^{-k}, so k cannot inflate its own payment
p_k = c_k + d^{-k} - d by lying in *pricing* messages.  (Routing
announcements are a different story — that is manipulation 2, which
only the checker machinery stops.)
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faithful import (
    DEVIATION_CATALOGUE,
    PlainFPSSProtocol,
    plain_deviant_factory,
)
from repro.routing import FPSSComputation, RouteEntry
from repro.workloads import random_biconnected_graph, uniform_all_pairs


class TestRelaxationExclusion:
    @staticmethod
    def build():
        """Node i with neighbours k, m; both announce routes to z."""
        comp = FPSSComputation("i", ["k", "m"], 1.0)
        for node, cost in (("i", 1.0), ("k", 1.0), ("m", 1.0), ("z", 1.0)):
            comp.note_cost_declaration(node, cost)
        comp.apply_route_update("k", {"z": RouteEntry(0.0, ("k", "z"))})
        comp.apply_route_update(
            "m", {"z": RouteEntry(1.0, ("m", "q", "z"))}
        )
        comp.recompute_routes()
        return comp

    def test_avoided_neighbor_never_supplies(self):
        """d^{-k} candidates exclude neighbour k entirely."""
        comp = self.build()
        # k claims an absurdly cheap path to z avoiding k (nonsense a
        # manipulator might announce); m offers an honest one.
        comp.apply_avoid_update(
            "k", {("z", "k"): RouteEntry(0.0, ("k", "z"))}
        )
        comp.apply_avoid_update(
            "m", {("z", "k"): RouteEntry(7.0, ("m", "q", "z"))}
        )
        comp.recompute_avoidance()
        entry = comp.avoid[("z", "k")]
        # Only m's path (cost 7 + c_m) is eligible; k's claim ignored.
        assert entry.path[1] == "m"
        assert entry.cost == pytest.approx(7.0 + 1.0)

    def test_supplier_tag_excludes_avoided(self):
        comp = self.build()
        comp.apply_avoid_update(
            "m", {("z", "k"): RouteEntry(3.0, ("m", "z"))}
        )
        comp.recompute_avoidance()
        tag = comp._supplier_tag("z", "k")
        assert "k" not in tag
        assert "m" in tag


class TestFootnote8EndToEnd:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_price_announcements_cannot_raise_own_income(self, seed):
        """Property: in *plain* (unchecked!) FPSS, a node running the
        false-price-announce manipulation never increases its own
        received payments — FPSS's partitioning already neutralises
        this channel, with no checkers needed."""
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 6), rng)
        traffic = uniform_all_pairs(graph)
        deviator = rng.choice(list(graph.nodes))

        baseline = PlainFPSSProtocol(graph, traffic).run()
        spec = DEVIATION_CATALOGUE["false-price-announce"]
        deviant = PlainFPSSProtocol(
            graph,
            traffic,
            node_factory=plain_deviant_factory(spec, deviator),
        ).run()
        assert (
            deviant.received[deviator]
            <= baseline.received[deviator] + 1e-9
        )

    def test_route_announcements_are_the_open_channel(self, fig1, fig1_traffic):
        """Contrast: *routing* announcements do inflate income in plain
        FPSS (manipulation 2), which is why the checkers exist."""
        baseline = PlainFPSSProtocol(fig1, fig1_traffic).run()
        spec = DEVIATION_CATALOGUE["false-route-announce"]
        deviant = PlainFPSSProtocol(
            fig1,
            fig1_traffic,
            node_factory=plain_deviant_factory(spec, "C"),
        ).run()
        assert deviant.received["C"] > baseline.received["C"]
