"""Tests for AS graphs, biconnectivity, and the Figure 1 network."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, NotBiconnectedError
from repro.routing import ASGraph, figure1_graph


class TestConstruction:
    def test_negative_cost_rejected(self):
        with pytest.raises(GraphError, match="negative"):
            ASGraph({"a": -1.0}, [])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            ASGraph({"a": 1.0}, [("a", "a")])

    def test_edge_endpoint_needs_cost(self):
        with pytest.raises(GraphError, match="no cost entry"):
            ASGraph({"a": 1.0}, [("a", "b")])

    def test_duplicate_edges_collapse(self):
        graph = ASGraph({"a": 1, "b": 2}, [("a", "b"), ("b", "a")])
        assert len(graph.edges) == 1

    def test_accessors(self):
        graph = figure1_graph()
        assert graph.cost("C") == 1.0
        assert graph.degree("D") == 3
        assert graph.has_edge("X", "D")
        assert not graph.has_edge("X", "Z")
        assert "A" in graph
        assert len(graph) == 6
        with pytest.raises(GraphError):
            graph.cost("ghost")


class TestDerivedGraphs:
    def test_with_costs_overrides(self):
        graph = figure1_graph()
        lied = graph.with_costs({"C": 5.0})
        assert lied.cost("C") == 5.0
        assert graph.cost("C") == 1.0  # original untouched
        assert lied.edges == graph.edges

    def test_with_costs_unknown_node(self):
        with pytest.raises(GraphError, match="unknown node"):
            figure1_graph().with_costs({"ghost": 1.0})

    def test_without_node(self):
        graph = figure1_graph().without_node("C")
        assert "C" not in graph
        assert all("C" not in edge for edge in graph.edges)

    def test_without_unknown_node(self):
        with pytest.raises(GraphError):
            figure1_graph().without_node("ghost")


class TestBiconnectivity:
    def test_figure1_is_biconnected(self):
        assert figure1_graph().is_biconnected()

    def test_path_graph_is_not(self):
        graph = ASGraph(
            {"a": 1, "b": 1, "c": 1}, [("a", "b"), ("b", "c")]
        )
        assert not graph.is_biconnected()
        assert graph.articulation_points() == frozenset({"b"})

    def test_two_nodes_never_biconnected(self):
        graph = ASGraph({"a": 1, "b": 1}, [("a", "b")])
        assert not graph.is_biconnected()

    def test_triangle_is_biconnected(self):
        graph = ASGraph(
            {"a": 1, "b": 1, "c": 1}, [("a", "b"), ("b", "c"), ("c", "a")]
        )
        assert graph.is_biconnected()

    def test_disconnected_graph(self):
        graph = ASGraph({"a": 1, "b": 1, "c": 1, "d": 1}, [("a", "b"), ("c", "d")])
        assert not graph.is_connected()
        assert not graph.is_biconnected()

    def test_require_biconnected_raises(self):
        graph = ASGraph({"a": 1, "b": 1, "c": 1}, [("a", "b"), ("b", "c")])
        with pytest.raises(NotBiconnectedError, match="articulation"):
            graph.require_biconnected()

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_articulation_points_match_networkx(self, seed):
        """Property: our Hopcroft-Tarjan agrees with networkx."""
        rng = random.Random(seed)
        n = rng.randint(3, 12)
        names = [f"v{i}" for i in range(n)]
        nxg = nx.Graph()
        nxg.add_nodes_from(names)
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.3:
                    nxg.add_edge(names[i], names[j])
        ours = ASGraph(
            {name: 1.0 for name in names}, list(nxg.edges)
        )
        expected = set(nx.articulation_points(nxg))
        assert set(ours.articulation_points()) == expected


class TestFigure1:
    def test_costs_match_paper(self):
        graph = figure1_graph()
        assert graph.costs == {
            "A": 5.0,
            "B": 1000.0,
            "C": 1.0,
            "D": 1.0,
            "X": 6.0,
            "Z": 100.0,
        }

    def test_node_order_deterministic(self):
        assert figure1_graph().nodes == ("A", "B", "C", "D", "X", "Z")
