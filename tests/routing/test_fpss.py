"""Tests for the distributed FPSS protocol against the oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.routing import (
    FPSSComputation,
    FPSSNode,
    decode_avoid_vector,
    decode_route_vector,
    encode_avoid_vector,
    encode_route_vector,
    RouteEntry,
    figure1_graph,
    lowest_cost_path,
    run_plain_fpss,
    vcg_transit_payment,
    verify_against_oracle,
)
from repro.workloads import (
    complete_graph,
    random_biconnected_graph,
    ring_graph,
    wheel_graph,
)


class TestEncodings:
    def test_route_vector_roundtrip(self):
        vector = {
            "z": RouteEntry(2.0, ("a", "b", "z")),
            "y": RouteEntry(0.0, ("a", "y")),
        }
        assert decode_route_vector(encode_route_vector(vector)) == vector

    def test_avoid_vector_roundtrip(self):
        vector = {
            ("z", "k"): RouteEntry(3.0, ("a", "m", "z")),
        }
        assert decode_avoid_vector(encode_avoid_vector(vector)) == vector

    def test_encoding_is_sorted(self):
        vector = {
            "z": RouteEntry(1.0, ("a", "z")),
            "b": RouteEntry(1.0, ("a", "b")),
        }
        encoded = encode_route_vector(vector)
        assert [row[0] for row in encoded] == ["b", "z"]


class TestComputationUnit:
    def test_rejects_update_from_non_neighbor(self):
        comp = FPSSComputation("a", ["b"], 1.0)
        with pytest.raises(ProtocolError, match="non-neighbour"):
            comp.apply_route_update("z", {})
        with pytest.raises(ProtocolError, match="non-neighbour"):
            comp.apply_avoid_update("z", {})

    def test_direct_neighbor_route(self):
        comp = FPSSComputation("a", ["b"], 1.0)
        comp.note_cost_declaration("b", 2.0)
        assert comp.recompute_routes()
        entry = comp.routing.entry("b")
        assert entry.cost == 0.0
        assert entry.path == ("a", "b")

    def test_loop_paths_rejected(self):
        comp = FPSSComputation("a", ["b"], 1.0)
        comp.note_cost_declaration("b", 2.0)
        comp.apply_route_update(
            "b", {"z": RouteEntry(1.0, ("b", "a", "z"))}
        )
        comp.recompute_routes()
        assert comp.routing.entry("z") is None

    def test_reset_phase2_clears_tables(self):
        comp = FPSSComputation("a", ["b"], 1.0)
        comp.note_cost_declaration("b", 2.0)
        comp.recompute_routes()
        comp.reset_phase2()
        assert comp.routing.destinations == ()
        assert comp.avoid == {}


class TestFigure1Convergence:
    def test_routing_and_pricing_match_oracle(self, fig1):
        simulator, nodes, stats = run_plain_fpss(fig1)
        verify_against_oracle(fig1, nodes)
        assert stats.phase1_events > 0
        assert stats.phase2_events > 0

    def test_all_nodes_share_data1(self, fig1):
        _, nodes, _ = run_plain_fpss(fig1)
        digests = {n.comp.cost_digest() for n in nodes.values()}
        assert len(digests) == 1

    def test_pricing_tags_populated(self, fig1):
        _, nodes, _ = run_plain_fpss(fig1)
        x = nodes["X"]
        cell = x.pricing_table().entry("Z", "C")
        assert cell is not None
        assert cell.tag  # non-empty supplier set

    def test_x_pays_c_and_d_four_each(self, fig1):
        """The DATA3 entries match the centralized VCG formula."""
        _, nodes, _ = run_plain_fpss(fig1)
        pricing = nodes["X"].pricing_table()
        assert pricing.price("Z", "C") == pytest.approx(4.0)
        assert pricing.price("Z", "D") == pytest.approx(4.0)


class TestNamedTopologies:
    @pytest.mark.parametrize(
        "factory,size",
        [(ring_graph, 5), (wheel_graph, 6), (complete_graph, 5)],
    )
    def test_convergence_to_oracle(self, factory, size):
        graph = factory(size, random.Random(42))
        _, nodes, _ = run_plain_fpss(graph)
        verify_against_oracle(graph, nodes)


class TestRandomGraphProperty:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000))
    def test_distributed_fixed_point_equals_oracle(self, seed):
        """Property: on any random biconnected graph the distributed
        protocol's converged DATA2/DATA3 equal the centralized LCP and
        VCG payment oracle."""
        rng = random.Random(seed)
        graph = random_biconnected_graph(rng.randint(4, 7), rng)
        _, nodes, _ = run_plain_fpss(graph)
        verify_against_oracle(graph, nodes)


class TestPhaseHandling:
    def test_phase2_requires_phase1(self, fig1):
        from repro.routing import build_plain_network

        simulator, nodes = build_plain_network(fig1)
        with pytest.raises(ProtocolError, match="before 1"):
            nodes["A"].start_phase2()

    def test_tables_unavailable_before_start(self):
        node = FPSSNode("a", 1.0)
        with pytest.raises(ProtocolError, match="not started"):
            node.routing_table()
        with pytest.raises(ProtocolError, match="not started"):
            node.pricing_table()

    def test_messages_ignored_outside_phase2(self, fig1):
        from repro.routing import build_plain_network

        simulator, nodes = build_plain_network(fig1)
        for node_id in fig1.nodes:
            simulator.schedule_local(
                node_id, 0.0, nodes[node_id].start_phase1
            )
        simulator.run_until_quiescent()
        # A stray rt-update before phase 2 must be a no-op.
        from repro.sim import Message

        nodes["A"].dispatch(
            Message(src="X", dst="A", kind="rt-update", payload={"vector": ()})
        )
        assert nodes["A"].routing_table().destinations == ()
