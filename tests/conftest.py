"""Shared fixtures for the test suite."""

import random

import pytest

from repro.routing import figure1_graph
from repro.workloads import ring_graph, uniform_all_pairs


@pytest.fixture
def fig1():
    """The paper's Figure 1 network."""
    return figure1_graph()


@pytest.fixture
def fig1_traffic(fig1):
    """Uniform all-pairs traffic over Figure 1."""
    return uniform_all_pairs(fig1)


@pytest.fixture
def small_ring():
    """A deterministic 4-node ring (fast protocol runs)."""
    return ring_graph(4, random.Random(7))


@pytest.fixture
def rng():
    """A deterministic RNG for tests that sample."""
    return random.Random(12345)
