"""Tests for topology generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.workloads import (
    complete_graph,
    draw_costs,
    node_names,
    random_biconnected_graph,
    ring_graph,
    wheel_graph,
)


class TestNodeNames:
    def test_deterministic_width(self):
        assert node_names(3) == ["n00", "n01", "n02"]
        assert node_names(101)[100] == "n100"

    def test_prefix(self):
        assert node_names(1, prefix="as")[0] == "as00"

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            node_names(-1)


class TestNamedFamilies:
    def test_ring_structure(self):
        graph = ring_graph(5, random.Random(0))
        assert len(graph) == 5
        assert all(graph.degree(n) == 2 for n in graph.nodes)
        assert graph.is_biconnected()

    def test_ring_minimum_size(self):
        with pytest.raises(GraphError):
            ring_graph(2)

    def test_wheel_structure(self):
        graph = wheel_graph(6, random.Random(0))
        hub = "n00"
        assert graph.degree(hub) == 5
        assert all(graph.degree(n) == 3 for n in graph.nodes if n != hub)
        assert graph.is_biconnected()

    def test_wheel_minimum_size(self):
        with pytest.raises(GraphError):
            wheel_graph(3)

    def test_complete_structure(self):
        graph = complete_graph(4, random.Random(0))
        assert len(graph.edges) == 6
        assert graph.is_biconnected()

    def test_costs_within_range(self):
        graph = ring_graph(4, random.Random(1), cost_range=(2.0, 3.0))
        assert all(2.0 <= c <= 3.0 for c in graph.costs.values())

    def test_invalid_cost_range(self):
        with pytest.raises(GraphError):
            ring_graph(4, random.Random(0), cost_range=(3.0, 2.0))


class TestRandomBiconnected:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=3, max_value=14),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_always_biconnected(self, seed, size, prob):
        graph = random_biconnected_graph(
            size, random.Random(seed), extra_edge_prob=prob
        )
        assert graph.is_biconnected()
        assert len(graph) == size

    def test_reproducible_from_seed(self):
        one = random_biconnected_graph(8, random.Random(42))
        two = random_biconnected_graph(8, random.Random(42))
        assert one.edges == two.edges
        assert one.costs == two.costs

    def test_probability_bounds_enforced(self):
        with pytest.raises(GraphError):
            random_biconnected_graph(5, random.Random(0), extra_edge_prob=1.5)

    def test_minimum_size(self):
        with pytest.raises(GraphError):
            random_biconnected_graph(2, random.Random(0))


class TestCostDistributions:
    def test_uniform_default_unchanged(self):
        # The knob must not perturb the seed repository's default draw.
        baseline = random_biconnected_graph(8, random.Random(11))
        explicit = random_biconnected_graph(
            8, random.Random(11), cost_dist="uniform"
        )
        assert baseline.costs == explicit.costs
        assert baseline.edges == explicit.edges

    def test_pareto_costs_anchor_at_low(self):
        graph = random_biconnected_graph(
            10,
            random.Random(3),
            cost_range=(2.0, 10.0),
            cost_dist="pareto",
            cost_param=1.5,
        )
        assert all(c >= 2.0 for c in graph.costs.values())
        assert graph.is_biconnected()

    def test_lognormal_costs_positive(self):
        graph = random_biconnected_graph(
            10,
            random.Random(3),
            cost_range=(1.0, 10.0),
            cost_dist="lognormal",
            cost_param=1.0,
        )
        assert all(c > 0 for c in graph.costs.values())

    def test_heavy_tail_is_heavier(self):
        names = node_names(200)
        uniform = draw_costs(names, random.Random(0), (1.0, 10.0))
        pareto = draw_costs(
            names,
            random.Random(0),
            (1.0, 10.0),
            cost_dist="pareto",
            cost_param=1.05,
        )
        assert max(pareto.values()) > max(uniform.values())

    def test_deterministic_per_seed(self):
        kwargs = dict(cost_dist="lognormal", cost_param=0.8)
        one = random_biconnected_graph(7, random.Random(5), **kwargs)
        two = random_biconnected_graph(7, random.Random(5), **kwargs)
        assert one.costs == two.costs

    def test_unknown_dist_rejected(self):
        with pytest.raises(GraphError):
            random_biconnected_graph(5, random.Random(0), cost_dist="cauchy")

    def test_bad_param_rejected(self):
        with pytest.raises(GraphError):
            random_biconnected_graph(
                5, random.Random(0), cost_dist="pareto", cost_param=0.0
            )

    def test_heavy_tail_needs_positive_anchor(self):
        with pytest.raises(GraphError):
            draw_costs(
                node_names(4),
                random.Random(0),
                (0.0, 5.0),
                cost_dist="pareto",
            )
