"""Tests for traffic-matrix generators."""

import random

import pytest

from repro.errors import MechanismError
from repro.workloads import (
    gravity,
    hotspot,
    random_pairs,
    ring_graph,
    uniform_all_pairs,
)


@pytest.fixture
def graph():
    return ring_graph(4, random.Random(0))


class TestUniform:
    def test_all_ordered_pairs(self, graph):
        traffic = uniform_all_pairs(graph, volume=2.0)
        assert len(traffic) == 4 * 3
        assert all(v == 2.0 for v in traffic.values())
        assert all(s != d for s, d in traffic)

    def test_negative_volume_rejected(self, graph):
        with pytest.raises(MechanismError):
            uniform_all_pairs(graph, volume=-1.0)


class TestRandomPairs:
    def test_flow_count_and_volumes(self, graph):
        traffic = random_pairs(graph, random.Random(1), 10, (1.0, 2.0))
        assert sum(1 for _ in traffic) <= 10  # repeats accumulate
        assert all(v >= 1.0 for v in traffic.values())

    def test_deterministic(self, graph):
        one = random_pairs(graph, random.Random(5), 6)
        two = random_pairs(graph, random.Random(5), 6)
        assert one == two

    def test_invalid_args(self, graph):
        with pytest.raises(MechanismError):
            random_pairs(graph, random.Random(0), -1)
        with pytest.raises(MechanismError):
            random_pairs(graph, random.Random(0), 1, (2.0, 1.0))


class TestHotspot:
    def test_everyone_sends_to_destination(self, graph):
        destination = graph.nodes[0]
        traffic = hotspot(graph, destination, volume=3.0)
        assert len(traffic) == 3
        assert all(d == destination for _, d in traffic)
        assert (destination, destination) not in traffic

    def test_unknown_destination(self, graph):
        with pytest.raises(MechanismError):
            hotspot(graph, "ghost")


class TestGravity:
    def test_total_volume_normalised(self, graph):
        traffic = gravity(graph, random.Random(2), total_volume=50.0)
        assert sum(traffic.values()) == pytest.approx(50.0)
        assert all(v > 0 for v in traffic.values())

    def test_covers_all_pairs(self, graph):
        traffic = gravity(graph, random.Random(2))
        assert len(traffic) == 4 * 3
