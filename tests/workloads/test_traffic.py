"""Tests for traffic-matrix generators."""

import random

import pytest

from repro.errors import MechanismError
from repro.workloads import (
    gravity,
    hotspot,
    random_pairs,
    ring_graph,
    uniform_all_pairs,
)


@pytest.fixture
def graph():
    return ring_graph(4, random.Random(0))


class TestUniform:
    def test_all_ordered_pairs(self, graph):
        traffic = uniform_all_pairs(graph, volume=2.0)
        assert len(traffic) == 4 * 3
        assert all(v == 2.0 for v in traffic.values())
        assert all(s != d for s, d in traffic)

    def test_negative_volume_rejected(self, graph):
        with pytest.raises(MechanismError):
            uniform_all_pairs(graph, volume=-1.0)


class TestRandomPairs:
    def test_flow_count_and_volumes(self, graph):
        traffic = random_pairs(graph, random.Random(1), 10, (1.0, 2.0))
        assert sum(1 for _ in traffic) <= 10  # repeats accumulate
        assert all(v >= 1.0 for v in traffic.values())

    def test_deterministic(self, graph):
        one = random_pairs(graph, random.Random(5), 6)
        two = random_pairs(graph, random.Random(5), 6)
        assert one == two

    def test_invalid_args(self, graph):
        with pytest.raises(MechanismError):
            random_pairs(graph, random.Random(0), -1)
        with pytest.raises(MechanismError):
            random_pairs(graph, random.Random(0), 1, (2.0, 1.0))


class TestHotspot:
    def test_everyone_sends_to_destination(self, graph):
        destination = graph.nodes[0]
        traffic = hotspot(graph, destination, volume=3.0)
        assert len(traffic) == 3
        assert all(d == destination for _, d in traffic)
        assert (destination, destination) not in traffic

    def test_unknown_destination(self, graph):
        with pytest.raises(MechanismError):
            hotspot(graph, "ghost")


class TestRandomPairsHeavyTails:
    def test_pareto_volumes(self, graph):
        traffic = random_pairs(
            graph,
            random.Random(3),
            20,
            (1.0, 5.0),
            volume_dist="pareto",
            volume_param=1.1,
        )
        # Pareto(alpha) >= 1, so every volume is at least the low bound.
        assert all(v >= 1.0 for v in traffic.values())

    def test_pareto_deterministic(self, graph):
        kwargs = dict(volume_dist="pareto", volume_param=1.3)
        one = random_pairs(graph, random.Random(9), 12, **kwargs)
        two = random_pairs(graph, random.Random(9), 12, **kwargs)
        assert one == two

    def test_zipf_rank_size_law(self, graph):
        # With distinct pairs, the i-th drawn flow carries high/i**a.
        rng = random.Random(4)
        traffic = random_pairs(
            graph,
            rng,
            6,
            (1.0, 8.0),
            volume_dist="zipf",
            volume_param=1.0,
        )
        replay = random.Random(4)
        nodes = list(graph.nodes)
        expected = {}
        for rank in range(1, 7):
            pair = tuple(replay.sample(nodes, 2))
            expected[pair] = expected.get(pair, 0.0) + 8.0 / rank
        assert traffic == pytest.approx(expected)

    def test_zipf_heavier_head(self, graph):
        traffic = random_pairs(
            graph,
            random.Random(5),
            30,
            (1.0, 10.0),
            volume_dist="zipf",
            volume_param=1.5,
        )
        volumes = sorted(traffic.values(), reverse=True)
        # The top flow dominates: heavier than the sum of the tail half.
        assert volumes[0] > sum(volumes[len(volumes) // 2 :])

    def test_unknown_dist_rejected(self, graph):
        with pytest.raises(MechanismError):
            random_pairs(graph, random.Random(0), 4, volume_dist="normal")

    def test_bad_tail_param_rejected(self, graph):
        with pytest.raises(MechanismError):
            random_pairs(
                graph,
                random.Random(0),
                4,
                volume_dist="pareto",
                volume_param=0.0,
            )

    def test_pareto_needs_positive_low(self, graph):
        with pytest.raises(MechanismError):
            random_pairs(
                graph, random.Random(0), 4, (0.0, 5.0), volume_dist="pareto"
            )


class TestGravity:
    def test_total_volume_normalised(self, graph):
        traffic = gravity(graph, random.Random(2), total_volume=50.0)
        assert sum(traffic.values()) == pytest.approx(50.0)
        assert all(v > 0 for v in traffic.values())

    def test_covers_all_pairs(self, graph):
        traffic = gravity(graph, random.Random(2))
        assert len(traffic) == 4 * 3

    def test_seed_determinism(self, graph):
        assert gravity(graph, random.Random(7)) == gravity(
            graph, random.Random(7)
        )
        assert gravity(graph, random.Random(7)) != gravity(
            graph, random.Random(8)
        )

    def test_pareto_masses_conserve_total(self, graph):
        # Mass conservation must survive the heavy-tailed mass option.
        traffic = gravity(
            graph,
            random.Random(2),
            total_volume=42.0,
            mass_dist="pareto",
            mass_param=1.2,
        )
        assert sum(traffic.values()) == pytest.approx(42.0)
        assert len(traffic) == 4 * 3

    def test_pareto_masses_skew_flows(self, graph):
        uniform = gravity(graph, random.Random(6))
        skewed = gravity(
            graph, random.Random(6), mass_dist="pareto", mass_param=1.05
        )
        spread = lambda t: max(t.values()) / min(t.values())
        assert spread(skewed) > spread(uniform)

    def test_negative_total_rejected(self, graph):
        with pytest.raises(MechanismError):
            gravity(graph, random.Random(0), total_volume=-1.0)

    def test_unknown_mass_dist_rejected(self, graph):
        with pytest.raises(MechanismError):
            gravity(graph, random.Random(0), mass_dist="zipf")

    def test_bad_mass_param_rejected(self, graph):
        with pytest.raises(MechanismError):
            gravity(
                graph, random.Random(0), mass_dist="pareto", mass_param=-2.0
            )
