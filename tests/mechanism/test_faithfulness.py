"""Tests for IC/CC/AC, strong-CC/strong-AC, and Propositions 1-2."""

import pytest

from repro.errors import MechanismError
from repro.mechanism import (
    DistributedMechanism,
    DistributedStrategy,
    MechanismRun,
    StrategyproofnessReport,
    TypeProfile,
    check_ac,
    check_cc,
    check_compatibility,
    check_ic,
    check_strong_ac,
    check_strong_cc,
    proposition1_verdict,
    proposition2_verdict,
)
from repro.specs import ActionClass

IR = ActionClass.INFORMATION_REVELATION
MP = ActionClass.MESSAGE_PASSING
COMP = ActionClass.COMPUTATION

SUGGESTED = DistributedStrategy(name="suggested")
LIE = DistributedStrategy(name="lie", deviation_classes=frozenset({IR}))
DROP = DistributedStrategy(name="drop", deviation_classes=frozenset({MP}))
CORRUPT = DistributedStrategy(
    name="corrupt", deviation_classes=frozenset({COMP})
)
JOINT = DistributedStrategy(
    name="joint", deviation_classes=frozenset({MP, COMP})
)

ALL = (SUGGESTED, LIE, DROP, CORRUPT, JOINT)


def mechanism_with_gains(gains):
    """gains: strategy name -> utility delta over the faithful 10.0."""

    def engine(assignment, types):
        return MechanismRun(
            utilities={
                agent: 10.0 + gains.get(strategy.name, 0.0)
                for agent, strategy in assignment.items()
            }
        )

    space = {"a": ALL, "b": ALL}
    return DistributedMechanism(
        engine, space, {"a": SUGGESTED, "b": SUGGESTED}
    )


PROFILES = [TypeProfile({"a": 0, "b": 0})]


class TestCompatibilityChecks:
    def test_all_pass_when_no_gain(self):
        mech = mechanism_with_gains({})
        report = check_compatibility(mech, PROFILES)
        assert report.is_ic and report.is_cc and report.is_ac
        assert report.is_strong_cc and report.is_strong_ac
        assert report.all_violations() == []

    def test_ic_catches_revelation_gain(self):
        mech = mechanism_with_gains({"lie": 1.0})
        report = check_compatibility(mech, PROFILES)
        assert not report.is_ic
        assert report.is_cc and report.is_ac

    def test_cc_catches_message_passing_gain(self):
        mech = mechanism_with_gains({"drop": 1.0})
        assert not check_cc(mech, PROFILES).holds
        assert check_ic(mech, PROFILES).holds
        assert check_ac(mech, PROFILES).holds

    def test_ac_catches_computation_gain(self):
        mech = mechanism_with_gains({"corrupt": 1.0})
        assert not check_ac(mech, PROFILES).holds

    def test_joint_deviation_escapes_pure_checks(self):
        """Pure IC/CC/AC filters miss a joint MP+COMP deviation..."""
        mech = mechanism_with_gains({"joint": 1.0})
        assert check_ic(mech, PROFILES).holds
        assert check_cc(mech, PROFILES).holds
        assert check_ac(mech, PROFILES).holds

    def test_strong_checks_catch_joint_deviation(self):
        """...but the strong variants quantify over joint deviations."""
        mech = mechanism_with_gains({"joint": 1.0})
        assert not check_strong_cc(mech, PROFILES).holds
        assert not check_strong_ac(mech, PROFILES).holds

    def test_unchecked_property_raises(self):
        mech = mechanism_with_gains({})
        report = check_compatibility(
            mech, PROFILES, include_strong=False
        )
        with pytest.raises(MechanismError, match="not checked"):
            report.is_strong_cc


class TestProposition1:
    def test_faithful_verdict(self):
        verdict = proposition1_verdict(mechanism_with_gains({}), PROFILES)
        assert verdict.faithful
        assert verdict.reasons == []
        assert verdict.full_equilibrium.holds

    def test_pure_failure_reported(self):
        verdict = proposition1_verdict(
            mechanism_with_gains({"drop": 1.0}), PROFILES
        )
        assert not verdict.faithful
        assert any("CC" in reason for reason in verdict.reasons)

    def test_joint_gap_is_surfaced(self):
        """The verdict explains when IC+CC+AC pass on pure deviations
        but a joint deviation still profits (the reason the paper
        introduces strong-CC/strong-AC)."""
        verdict = proposition1_verdict(
            mechanism_with_gains({"joint": 1.0}), PROFILES
        )
        assert not verdict.faithful
        assert any("joint deviation" in reason for reason in verdict.reasons)


def sp_report(ok=True):
    report = StrategyproofnessReport(
        mechanism_name="center", profiles_checked=1, deviations_checked=1
    )
    if not ok:
        from repro.mechanism import StrategyproofnessViolation

        report.violations.append(
            StrategyproofnessViolation(
                agent="a",
                true_profile=TypeProfile({"a": 0}),
                misreport=1,
                truthful_utility=0.0,
                deviant_utility=1.0,
            )
        )
    return report


class TestProposition2:
    def test_faithful_when_all_premises_hold(self):
        verdict = proposition2_verdict(
            mechanism_with_gains({}), PROFILES, sp_report(ok=True)
        )
        assert verdict.faithful
        assert verdict.full_equilibrium.holds

    def test_non_strategyproof_center_blocks(self):
        verdict = proposition2_verdict(
            mechanism_with_gains({}), PROFILES, sp_report(ok=False)
        )
        assert not verdict.faithful
        assert any("strategyproof" in r for r in verdict.reasons)

    def test_strong_cc_failure_blocks(self):
        verdict = proposition2_verdict(
            mechanism_with_gains({"joint": 1.0}),
            PROFILES,
            sp_report(ok=True),
        )
        assert not verdict.faithful
        assert any("strong-CC" in r for r in verdict.reasons)
