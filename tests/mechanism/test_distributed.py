"""Tests for distributed mechanism specifications (Definition 1)."""

import pytest

from repro.errors import MechanismError
from repro.mechanism import (
    DistributedMechanism,
    DistributedStrategy,
    MechanismRun,
    TypeProfile,
)
from repro.specs import ActionClass

IR = ActionClass.INFORMATION_REVELATION
MP = ActionClass.MESSAGE_PASSING
COMP = ActionClass.COMPUTATION

SUGGESTED = DistributedStrategy(name="suggested")
LIE = DistributedStrategy(name="lie", deviation_classes=frozenset({IR}))
DROP = DistributedStrategy(name="drop", deviation_classes=frozenset({MP}))
JOINT = DistributedStrategy(
    name="joint", deviation_classes=frozenset({MP, COMP})
)


def toy_engine(assignment, types):
    """Utility 10 for faithful agents; deviants get 10 + #classes."""
    utilities = {
        agent: 10.0 + len(strategy.deviation_classes)
        for agent, strategy in assignment.items()
    }
    return MechanismRun(utilities=utilities)


@pytest.fixture
def mechanism():
    space = {
        "a": (SUGGESTED, LIE, DROP, JOINT),
        "b": (SUGGESTED, LIE),
    }
    return DistributedMechanism(
        toy_engine, space, {"a": SUGGESTED, "b": SUGGESTED}
    )


class TestConstruction:
    def test_needs_agents(self):
        with pytest.raises(MechanismError):
            DistributedMechanism(toy_engine, {}, {})

    def test_suggested_must_be_in_space(self):
        with pytest.raises(MechanismError, match="outside"):
            DistributedMechanism(
                toy_engine, {"a": (LIE,)}, {"a": SUGGESTED}
            )

    def test_suggested_must_be_unclassified(self):
        with pytest.raises(MechanismError, match="classified"):
            DistributedMechanism(toy_engine, {"a": (LIE,)}, {"a": LIE})

    def test_missing_suggested(self):
        with pytest.raises(MechanismError, match="no suggested"):
            DistributedMechanism(toy_engine, {"a": (SUGGESTED,)}, {})


class TestStrategyQueries:
    def test_strategies_and_suggested(self, mechanism):
        assert mechanism.agents == ("a", "b")
        assert mechanism.suggested_strategy("a") is SUGGESTED
        assert len(mechanism.strategies_of("a")) == 4

    def test_deviations_all(self, mechanism):
        names = {s.name for s in mechanism.deviations_of("a")}
        assert names == {"lie", "drop", "joint"}

    def test_deviations_pure_class_filter(self, mechanism):
        mp_only = mechanism.deviations_of("a", classes=(MP,))
        assert [s.name for s in mp_only] == ["drop"]

    def test_deviations_require_touch(self, mechanism):
        touching_mp = mechanism.deviations_of("a", require_touch=MP)
        assert {s.name for s in touching_mp} == {"drop", "joint"}

    def test_unknown_agent(self, mechanism):
        with pytest.raises(MechanismError):
            mechanism.strategies_of("z")


class TestEvaluation:
    def test_run_suggested(self, mechanism):
        types = TypeProfile({"a": 0, "b": 0})
        run = mechanism.run_suggested(types)
        assert run.utility_of("a") == 10.0
        assert run.utility_of("b") == 10.0

    def test_run_unilateral(self, mechanism):
        types = TypeProfile({"a": 0, "b": 0})
        run = mechanism.run_unilateral("a", JOINT, types)
        assert run.utility_of("a") == 12.0
        assert run.utility_of("b") == 10.0

    def test_run_rejects_foreign_strategy(self, mechanism):
        types = TypeProfile({"a": 0, "b": 0})
        with pytest.raises(MechanismError, match="outside"):
            mechanism.run({"b": JOINT}, types)

    def test_run_rejects_unknown_agent(self, mechanism):
        types = TypeProfile({"a": 0, "b": 0})
        with pytest.raises(MechanismError, match="unknown agent"):
            mechanism.run({"z": SUGGESTED}, types)

    def test_missing_utility_raises(self):
        engine = lambda assignment, types: MechanismRun(utilities={})
        mech = DistributedMechanism(
            engine, {"a": (SUGGESTED,)}, {"a": SUGGESTED}
        )
        run = mech.run_suggested(TypeProfile({"a": 0}))
        with pytest.raises(MechanismError, match="no utility"):
            run.utility_of("a")


class TestDistributedStrategy:
    def test_is_suggested(self):
        assert SUGGESTED.is_suggested
        assert not LIE.is_suggested

    def test_touches(self):
        assert JOINT.touches(MP)
        assert JOINT.touches(COMP)
        assert not JOINT.touches(IR)

    def test_payload_not_compared(self):
        one = DistributedStrategy(name="x", payload=object())
        two = DistributedStrategy(name="x", payload=object())
        assert one == two
