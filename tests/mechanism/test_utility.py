"""Tests for quasi-linear utility functions."""

import pytest

from repro.mechanism import Outcome, UtilityFunction


@pytest.fixture
def utility():
    return UtilityFunction(
        lambda agent, decision, value: float(value) if decision == agent else 0.0
    )


class TestUtilityFunction:
    def test_value(self, utility):
        assert utility.value("a", "a", 4.0) == 4.0
        assert utility.value("a", "b", 4.0) == 0.0

    def test_quasilinear_combination(self, utility):
        outcome = Outcome(decision="a", transfers={"a": -1.5})
        assert utility.utility("a", outcome, 4.0) == pytest.approx(2.5)

    def test_prefers_strict(self, utility):
        win = Outcome(decision="a", transfers={})
        lose = Outcome(decision="b", transfers={})
        assert utility.prefers("a", win, lose, 4.0)
        assert not utility.prefers("a", lose, win, 4.0)

    def test_prefers_weak_on_tie(self, utility):
        same = Outcome(decision="b", transfers={})
        assert not utility.prefers("a", same, same, 4.0, strictly=True)
        assert utility.prefers("a", same, same, 4.0, strictly=False)
