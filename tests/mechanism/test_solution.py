"""Tests for equilibrium verification (Definitions 5-6)."""

import pytest

from repro.mechanism import (
    DistributedMechanism,
    DistributedStrategy,
    MechanismRun,
    TypeProfile,
    check_dominant_strategy,
    check_ex_post_nash,
)
from repro.specs import ActionClass

MP = ActionClass.MESSAGE_PASSING

SUGGESTED = DistributedStrategy(name="suggested")
CHEAT = DistributedStrategy(
    name="cheat", deviation_classes=frozenset({MP})
)


def make_mechanism(payoff):
    """payoff(agent, own_strategy_name, other_strategy_name, types)."""

    def engine(assignment, types):
        names = {agent: s.name for agent, s in assignment.items()}
        utilities = {}
        for agent in names:
            other = next(a for a in names if a != agent)
            utilities[agent] = payoff(
                agent, names[agent], names[other], types
            )
        return MechanismRun(utilities=utilities)

    space = {"a": (SUGGESTED, CHEAT), "b": (SUGGESTED, CHEAT)}
    return DistributedMechanism(
        engine, space, {"a": SUGGESTED, "b": SUGGESTED}
    )


class TestExPostNash:
    def test_faithful_mechanism_passes(self):
        # Cheating always loses 1.
        mech = make_mechanism(
            lambda agent, own, other, types: 10.0 - (own == "cheat")
        )
        report = check_ex_post_nash(mech, [TypeProfile({"a": 1, "b": 1})])
        assert report.holds
        assert report.deviations_checked == 2
        assert report.max_gain <= 0

    def test_profitable_deviation_found(self):
        mech = make_mechanism(
            lambda agent, own, other, types: 10.0 + (own == "cheat")
        )
        report = check_ex_post_nash(mech, [TypeProfile({"a": 1, "b": 1})])
        assert not report.holds
        assert report.violations[0].gain == pytest.approx(1.0)

    def test_type_dependent_violation_found(self):
        # Cheating profits only when the agent's own type is "greedy";
        # ex post requires robustness over every type profile.
        def payoff(agent, own, other, types):
            bonus = 1.0 if types.type_of(agent) == "greedy" else -1.0
            return 10.0 + (bonus if own == "cheat" else 0.0)

        mech = make_mechanism(payoff)
        profiles = [
            TypeProfile({"a": "modest", "b": "modest"}),
            TypeProfile({"a": "greedy", "b": "modest"}),
        ]
        report = check_ex_post_nash(mech, profiles)
        assert not report.holds
        assert all(
            v.types.type_of(v.agent) == "greedy" for v in report.violations
        )

    def test_indifference_is_not_a_violation(self):
        """Remark 1: weak equilibrium suffices (benevolent tie-break)."""
        mech = make_mechanism(lambda agent, own, other, types: 10.0)
        report = check_ex_post_nash(mech, [TypeProfile({"a": 1, "b": 1})])
        assert report.holds

    def test_agent_restriction(self):
        mech = make_mechanism(
            lambda agent, own, other, types: 10.0
            + (1.0 if own == "cheat" and agent == "b" else 0.0)
        )
        report = check_ex_post_nash(
            mech, [TypeProfile({"a": 1, "b": 1})], agents=("a",)
        )
        assert report.holds  # only the innocent agent was checked

    def test_merge(self):
        mech = make_mechanism(lambda agent, own, other, types: 10.0)
        one = check_ex_post_nash(mech, [TypeProfile({"a": 1, "b": 1})])
        two = check_ex_post_nash(mech, [TypeProfile({"a": 2, "b": 2})])
        merged = one.merge(two)
        assert merged.profiles_checked == 2
        assert merged.deviations_checked == 4


class TestDominantStrategy:
    def test_ex_post_but_not_dominant(self):
        """Remark 3: the suggested profile can be ex post Nash while
        failing dominance — cheating pays when the *other* cheats."""

        def payoff(agent, own, other, types):
            if other == "cheat":
                return 10.0 + (1.0 if own == "cheat" else 0.0)
            return 10.0 - (1.0 if own == "cheat" else 0.0)

        mech = make_mechanism(payoff)
        profiles = [TypeProfile({"a": 1, "b": 1})]
        assert check_ex_post_nash(mech, profiles).holds
        dominant = check_dominant_strategy(mech, profiles)
        assert not dominant.holds

    def test_strictly_dominant_passes(self):
        mech = make_mechanism(
            lambda agent, own, other, types: 10.0 - (own == "cheat")
        )
        report = check_dominant_strategy(
            mech, [TypeProfile({"a": 1, "b": 1})]
        )
        assert report.holds
