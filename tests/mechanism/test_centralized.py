"""Tests for direct-revelation mechanisms and the SP auditor (Def 5)."""

import pytest

from repro.errors import MechanismError
from repro.mechanism import (
    DirectRevelationMechanism,
    Outcome,
    TypeProfile,
    TypeSpace,
    UtilityFunction,
    audit_strategyproofness,
)


def second_price_auction(spaces):
    """Single-item second-price (Vickrey) auction: strategyproof."""

    def outcome_rule(reports):
        ordered = sorted(
            ((reports.type_of(a), repr(a), a) for a in reports.agents),
            reverse=True,
        )
        winner = ordered[0][2]
        price = ordered[1][0]
        return Outcome(decision=winner, transfers={winner: -price})

    utility = UtilityFunction(
        lambda agent, decision, value: value if decision == agent else 0.0
    )
    return DirectRevelationMechanism(
        outcome_rule, spaces, utility, name="vickrey"
    )


def first_price_auction(spaces):
    """Pay-your-bid auction: not strategyproof."""

    def outcome_rule(reports):
        ordered = sorted(
            ((reports.type_of(a), repr(a), a) for a in reports.agents),
            reverse=True,
        )
        winner = ordered[0][2]
        return Outcome(decision=winner, transfers={winner: -ordered[0][0]})

    utility = UtilityFunction(
        lambda agent, decision, value: value if decision == agent else 0.0
    )
    return DirectRevelationMechanism(
        outcome_rule, spaces, utility, name="first-price"
    )


@pytest.fixture
def spaces():
    return {
        "a": TypeSpace(values=(1.0, 2.0, 3.0)),
        "b": TypeSpace(values=(1.0, 2.0, 3.0)),
    }


class TestMechanismBasics:
    def test_agents(self, spaces):
        mech = second_price_auction(spaces)
        assert mech.agents == ("a", "b")

    def test_needs_agents(self):
        with pytest.raises(MechanismError):
            DirectRevelationMechanism(
                lambda r: Outcome(None), {}, UtilityFunction(lambda *a: 0.0)
            )

    def test_agent_utility(self, spaces):
        mech = second_price_auction(spaces)
        reports = TypeProfile({"a": 3.0, "b": 1.0})
        # a wins at price 1; utility = 3 - 1 = 2.
        assert mech.agent_utility("a", reports, 3.0) == pytest.approx(2.0)
        assert mech.agent_utility("b", reports, 1.0) == pytest.approx(0.0)


class TestAuditor:
    def test_vickrey_is_strategyproof(self, spaces):
        report = audit_strategyproofness(second_price_auction(spaces))
        assert report.is_strategyproof
        assert report.max_gain <= 1e-9
        assert report.profiles_checked == 9
        assert report.deviations_checked == 9 * 2 * 2

    def test_first_price_is_not(self, spaces):
        report = audit_strategyproofness(first_price_auction(spaces))
        assert not report.is_strategyproof
        violation = report.violations[0]
        assert violation.gain > 0
        # Shading the bid below value is the profitable lie.
        assert violation.misreport < violation.true_profile.type_of(
            violation.agent
        )

    def test_sampled_spaces_audited_statistically(self):
        spaces = {
            "a": TypeSpace(sampler=lambda rng: rng.uniform(0.0, 3.0)),
            "b": TypeSpace(sampler=lambda rng: rng.uniform(0.0, 3.0)),
        }
        report = audit_strategyproofness(
            second_price_auction(spaces), profile_samples=20,
            misreport_samples=5,
        )
        assert report.is_strategyproof
        assert report.profiles_checked == 20

    def test_violation_records_utilities(self, spaces):
        report = audit_strategyproofness(first_price_auction(spaces))
        violation = report.violations[0]
        assert violation.deviant_utility == pytest.approx(
            violation.truthful_utility + violation.gain
        )
