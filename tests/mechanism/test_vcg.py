"""Tests for the generic VCG mechanism."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MechanismError
from repro.mechanism import (
    TypeProfile,
    TypeSpace,
    audit_strategyproofness,
    make_vcg_mechanism,
    vcg_outcome,
)


def allocation_valuation(agent, decision, own_type):
    """Single-item allocation: the decision names the winner."""
    return float(own_type) if decision == agent else 0.0


class TestVcgOutcome:
    def test_efficient_decision(self):
        profile = TypeProfile({"a": 5.0, "b": 3.0})
        outcome = vcg_outcome(("a", "b"), profile, allocation_valuation)
        assert outcome.decision == "a"

    def test_clarke_payment_is_externality(self):
        profile = TypeProfile({"a": 5.0, "b": 3.0})
        outcome = vcg_outcome(("a", "b"), profile, allocation_valuation)
        # Winner a: others get 0 with a present, 3 without -> pays 3.
        assert outcome.transfer_to("a") == pytest.approx(-3.0)
        # Loser b: others get 5 either way -> zero transfer.
        assert outcome.transfer_to("b") == pytest.approx(0.0)

    def test_empty_decision_set_rejected(self):
        with pytest.raises(MechanismError):
            vcg_outcome((), TypeProfile({"a": 1.0}), allocation_valuation)

    def test_tie_break_deterministic(self):
        profile = TypeProfile({"a": 2.0, "b": 2.0})
        one = vcg_outcome(("a", "b"), profile, allocation_valuation)
        two = vcg_outcome(("b", "a"), profile, allocation_valuation)
        assert one.decision == two.decision


class TestVcgMechanism:
    def test_strategyproof_on_finite_spaces(self):
        spaces = {
            "a": TypeSpace(values=(0.0, 1.0, 2.0, 3.0)),
            "b": TypeSpace(values=(0.0, 1.0, 2.0, 3.0)),
            "c": TypeSpace(values=(0.0, 1.0, 2.0, 3.0)),
        }
        mech = make_vcg_mechanism(("a", "b", "c"), spaces, allocation_valuation)
        report = audit_strategyproofness(mech)
        assert report.is_strategyproof

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_truth_dominates_random_misreports(self, seed):
        """Property: random valuations, random misreport — never a
        strict improvement for the misreporting agent."""
        rng = random.Random(seed)
        agents = ("a", "b", "c")
        true_types = {agent: rng.uniform(0.0, 10.0) for agent in agents}
        profile = TypeProfile(true_types)
        deviator = rng.choice(agents)
        lie = rng.uniform(0.0, 10.0)

        honest = vcg_outcome(agents, profile, allocation_valuation)
        deviant = vcg_outcome(
            agents, profile.replace(deviator, lie), allocation_valuation
        )
        true_value = true_types[deviator]
        honest_utility = (
            true_value if honest.decision == deviator else 0.0
        ) + honest.transfer_to(deviator)
        deviant_utility = (
            true_value if deviant.decision == deviator else 0.0
        ) + deviant.transfer_to(deviator)
        assert deviant_utility <= honest_utility + 1e-9

    def test_welfare_decision_with_general_valuation(self):
        """VCG over public projects, not just allocations."""

        def valuation(agent, decision, own_type):
            # own_type = (value of project 1, value of project 2)
            return own_type[0] if decision == "p1" else own_type[1]

        profile = TypeProfile({"a": (3.0, 0.0), "b": (0.0, 2.0)})
        outcome = vcg_outcome(("p1", "p2"), profile, valuation)
        assert outcome.decision == "p1"
        # b pivots nothing (p1 wins with or without b): transfer 0 for b?
        # Without b, p1 gives 3 and p2 gives 0 -> p1 still chosen.
        assert outcome.transfer_to("b") == pytest.approx(-0.0 - 0.0 + 0.0)
        # a pays its externality on b: b gets 0 at p1, 2 at p2.
        assert outcome.transfer_to("a") == pytest.approx(0.0 - 2.0)
