"""Tests for type spaces, profiles, and outcomes."""

import random

import pytest

from repro.errors import MechanismError
from repro.mechanism import (
    Outcome,
    TypeProfile,
    TypeSpace,
    enumerate_profiles,
    sample_profiles,
)


class TestTypeSpace:
    def test_finite_space(self):
        space = TypeSpace(values=(1, 2, 3))
        assert space.is_finite
        assert space.values == (1, 2, 3)
        assert 2 in space
        assert 9 not in space

    def test_sampled_space(self):
        space = TypeSpace(sampler=lambda rng: rng.uniform(0, 1))
        assert not space.is_finite
        value = space.sample(random.Random(0))
        assert 0 <= value <= 1
        assert 0.5 in space  # samplers define open-ended membership
        with pytest.raises(MechanismError, match="not finite"):
            space.values

    def test_needs_values_or_sampler(self):
        with pytest.raises(MechanismError):
            TypeSpace()

    def test_empty_finite_rejected(self):
        with pytest.raises(MechanismError, match="empty"):
            TypeSpace(values=())

    def test_finite_sampling_uses_values(self):
        space = TypeSpace(values=(7,))
        assert space.sample(random.Random(0)) == 7


class TestTypeProfile:
    def test_accessors(self):
        profile = TypeProfile({"a": 1, "b": 2})
        assert profile.agents == ("a", "b")
        assert profile.type_of("a") == 1
        assert profile["b"] == 2
        assert len(profile) == 2
        assert list(profile) == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(MechanismError):
            TypeProfile({})

    def test_replace_is_functional(self):
        profile = TypeProfile({"a": 1, "b": 2})
        replaced = profile.replace("a", 9)
        assert replaced.type_of("a") == 9
        assert profile.type_of("a") == 1

    def test_replace_unknown_agent(self):
        with pytest.raises(MechanismError):
            TypeProfile({"a": 1}).replace("z", 2)

    def test_without(self):
        profile = TypeProfile({"a": 1, "b": 2})
        assert profile.without("a") == {"b": 2}

    def test_equality_and_hash(self):
        one = TypeProfile({"a": 1, "b": 2})
        two = TypeProfile({"b": 2, "a": 1})
        assert one == two
        assert hash(one) == hash(two)
        assert one != TypeProfile({"a": 1, "b": 3})

    def test_unknown_agent_raises(self):
        with pytest.raises(MechanismError, match="no type"):
            TypeProfile({"a": 1}).type_of("z")


class TestOutcome:
    def test_transfer_defaults_to_zero(self):
        outcome = Outcome(decision="x", transfers={"a": 3.0})
        assert outcome.transfer_to("a") == 3.0
        assert outcome.transfer_to("b") == 0.0


class TestEnumeration:
    def test_enumerate_profiles_cartesian(self):
        spaces = {
            "a": TypeSpace(values=(1, 2)),
            "b": TypeSpace(values=(10, 20, 30)),
        }
        profiles = list(enumerate_profiles(spaces))
        assert len(profiles) == 6
        assert len(set(profiles)) == 6

    def test_enumerate_rejects_sampled(self):
        spaces = {"a": TypeSpace(sampler=lambda rng: 1)}
        with pytest.raises(MechanismError, match="enumerate"):
            list(enumerate_profiles(spaces))

    def test_sample_profiles_deterministic(self):
        spaces = {"a": TypeSpace(sampler=lambda rng: rng.randint(0, 100))}
        one = sample_profiles(spaces, random.Random(5), 10)
        two = sample_profiles(spaces, random.Random(5), 10)
        assert one == two
        assert len(one) == 10
