"""Tests for table rendering."""

import pytest

from repro.analysis import render_markdown_table, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "gain"],
            [["drop", 1.5], ["spoof", -0.25]],
            float_digits=2,
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in text
        assert "-0.25" in text
        # Column alignment: every line equally long or shorter header.
        assert lines[2].index("1.50") == lines[3].index("-0.2")

    def test_title_rendering(self):
        text = render_table(["a"], [[1]], title="E1")
        assert text.splitlines()[0] == "E1"
        assert text.splitlines()[1] == "=="

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestMarkdownTable:
    def test_structure(self):
        text = render_markdown_table(["x", "y"], [[1, 2.0]])
        lines = text.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.000 |"

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            render_markdown_table(["a"], [[1, 2]])
