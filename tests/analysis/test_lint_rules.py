"""Golden-file coverage for every determinism lint rule.

Each rule gets fixture snippets that must flag and near-miss snippets
that must stay clean, plus the meta-level contracts: suppression
mechanics, the strict/canonical/cost scoping, the CLI exit codes, and
the requirement that ``src/repro`` itself lints clean with zero
unexplained suppressions.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.lint import DEFAULT_CONFIG, lint_paths, lint_source, module_rel

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

#: A synthetic path resolving to a canonical-path module.
KERNEL_PATH = "/x/repro/routing/kernel.py"
#: A synthetic path inside the package but off the canonical list.
REPORT_PATH = "/x/repro/analysis/report.py"
#: A synthetic path outside any repro root: strict mode.
STRICT_PATH = "/x/fixture.py"


def rules_at(source, path=STRICT_PATH):
    """Active rule ids found in ``source`` linted as ``path``."""
    report = lint_source(textwrap.dedent(source), path)
    return [f.rule for f in report.active]


# ---------------------------------------------------------------------------
# scoping
# ---------------------------------------------------------------------------


def test_module_rel_resolves_inside_repro_root():
    assert module_rel("/a/b/src/repro/routing/kernel.py") == "routing/kernel.py"
    assert module_rel("/a/repro/x/repro/sim/events.py") == "sim/events.py"


def test_module_rel_outside_root_is_none():
    assert module_rel("/tmp/fixture.py") is None


def test_strict_path_gets_all_rules():
    assert "unordered-iter" in rules_at("s = {1, 2}\nfor x in s:\n    pass\n")


def test_non_canonical_module_skips_unordered_iter():
    src = "s = {1, 2}\nfor x in s:\n    pass\n"
    assert rules_at(src, REPORT_PATH) == []
    assert rules_at(src, KERNEL_PATH) == ["unordered-iter"]


# ---------------------------------------------------------------------------
# R1: unordered-iter
# ---------------------------------------------------------------------------


def test_r1_flags_bare_set_loop():
    assert rules_at("pending = set()\nfor x in pending:\n    pass\n") == [
        "unordered-iter"
    ]


def test_r1_flags_keys_view_union():
    src = "a = {}\nb = {}\nfor k in a.keys() | b.keys():\n    pass\n"
    assert rules_at(src) == ["unordered-iter"]


def test_r1_flags_binop_with_one_known_set_operand():
    # `x & {...}` is set-valued (or raises) even when only one side is
    # provably a set; requiring both would let unknown params escape.
    src = """
    def bad(nodes):
        for n in nodes & {"a"}:
            pass
    """
    assert rules_at(src) == ["unordered-iter"]


def test_r1_integer_bitmask_arithmetic_is_clean():
    src = "MASK = 0x0F\n\ndef f(flags):\n    return flags & MASK\n"
    assert rules_at(src) == []


def test_r1_flags_comprehension_over_set():
    assert rules_at("s = {1}\nrows = [x for x in s]\n") == ["unordered-iter"]


def test_r1_flags_self_attribute_set():
    src = """
    class K:
        def __init__(self):
            self._dirty = set()

        def drain(self):
            for x in self._dirty:
                pass
    """
    assert rules_at(src) == ["unordered-iter"]


def test_r1_flags_set_returning_function():
    src = """
    from typing import Set

    def changes() -> Set[int]:
        return {1}

    for x in changes():
        pass
    """
    assert rules_at(src) == ["unordered-iter"]


def test_r1_flags_annotated_parameter():
    src = """
    from typing import Optional, Set

    def relax(suppliers: Optional[Set[str]] = None):
        for s in suppliers:
            pass
    """
    assert rules_at(src) == ["unordered-iter"]


def test_r1_sorted_drain_is_clean():
    src = "pending = set()\nfor x in sorted(pending, key=repr):\n    pass\n"
    assert rules_at(src) == []


def test_r1_plain_dict_iteration_is_clean():
    src = "d = {}\nfor k in d:\n    pass\nfor k, v in d.items():\n    pass\n"
    assert rules_at(src) == []


def test_r1_list_iteration_is_clean():
    assert rules_at("xs = [1, 2]\nfor x in xs:\n    pass\n") == []


# ---------------------------------------------------------------------------
# R2: hash-escape
# ---------------------------------------------------------------------------


def test_r2_flags_builtin_hash_everywhere():
    assert rules_at("key = hash((1, 2))\n", REPORT_PATH) == ["hash-escape"]


def test_r2_flags_builtin_id():
    assert rules_at("tag = id(object())\n", REPORT_PATH) == ["hash-escape"]


def test_r2_flags_set_materialisation_in_canonical_module():
    src = "s = {1, 2}\nrows = list(s)\n"
    assert rules_at(src, KERNEL_PATH) == ["hash-escape"]
    assert rules_at(src, REPORT_PATH) == []


def test_r2_hashlib_is_clean():
    src = "import hashlib\ndigest = hashlib.sha256(b'x').hexdigest()\n"
    assert rules_at(src) == []


def test_r2_list_of_sorted_is_clean():
    assert rules_at("s = {1}\nrows = list(sorted(s, key=repr))\n") == []


# ---------------------------------------------------------------------------
# R3: unseeded-random / wall-clock
# ---------------------------------------------------------------------------


def test_r3_flags_ambient_random_call():
    src = "import random\nx = random.random()\n"
    assert rules_at(src, REPORT_PATH) == ["unseeded-random"]


def test_r3_flags_unseeded_random_instance():
    assert rules_at("import random\nrng = random.Random()\n") == ["unseeded-random"]


def test_r3_flags_from_random_import():
    assert rules_at("from random import choice\n") == ["unseeded-random"]


def test_r3_seeded_random_is_clean():
    src = "import random\nrng = random.Random(7)\nrng.random()\n"
    assert rules_at(src) == []


def test_r3_from_random_import_random_class_is_clean():
    assert rules_at("from random import Random\nrng = Random(7)\n") == []


def test_r3_flags_wall_clock_reads():
    assert rules_at("import time\nt = time.time()\n") == ["wall-clock"]
    assert rules_at("import time\nt = time.perf_counter()\n") == ["wall-clock"]
    assert rules_at("from time import perf_counter\n") == ["wall-clock"]


def test_r3_flags_datetime_now():
    src = "from datetime import datetime\nstamp = datetime.now()\n"
    assert rules_at(src) == ["wall-clock"]


def test_r3_time_sleep_is_clean():
    assert rules_at("import time\ntime.sleep(0)\n") == []


def test_r3_allowlist_covers_runner_wall_clock():
    src = "import time\nt = time.perf_counter()\n"
    report = lint_source(src, "/x/repro/experiments/runner.py")
    assert report.ok
    assert [f.rule for f, _reason in report.allowlisted] == ["wall-clock"]


def test_r3_allowlist_covers_obs_sink_wall_clock():
    # The JSONL sink boundary is the one observability module allowed to
    # stamp wall time onto records.
    src = "import time\nstamp = time.time()\n"
    report = lint_source(src, "/x/repro/obs/events.py")
    assert report.ok
    assert [f.rule for f, _reason in report.allowlisted] == ["wall-clock"]


def test_r3_obs_trace_and_feed_are_not_allowlisted():
    # Near-miss: the rest of the observability layer must stay clock-free;
    # only the sink boundary is quarantined.
    src = "import time\nstamp = time.time()\n"
    for path in ("/x/repro/obs/trace.py", "/x/repro/obs/feed.py"):
        report = lint_source(src, path)
        assert not report.ok
        assert [f.rule for f in report.active] == ["wall-clock"]


# ---------------------------------------------------------------------------
# R4: float-eq
# ---------------------------------------------------------------------------


def test_r4_flags_float_literal_equality():
    src = "def pay(c):\n    return c == 0.5\n"
    assert rules_at(src, "/x/repro/mechanism/vcg.py") == ["float-eq"]


def test_r4_flags_float_cast_inequality():
    src = "def pay(a, b):\n    return float(a) != b\n"
    assert rules_at(src, "/x/repro/routing/engine.py") == ["float-eq"]


def test_r4_outside_cost_scope_is_clean():
    src = "def pay(c):\n    return c == 0.5\n"
    assert rules_at(src, "/x/repro/sim/metrics.py") == []


def test_r4_int_and_ordering_comparisons_are_clean():
    src = "def pay(c, d):\n    return c == 5 or c < 0.5 or c == d\n"
    assert rules_at(src, "/x/repro/mechanism/vcg.py") == []


# ---------------------------------------------------------------------------
# R5: kernel-purity
# ---------------------------------------------------------------------------


def purity(source):
    """Lint a ``# purity: kernel`` module (strict path)."""
    return rules_at("# purity: kernel\n" + textwrap.dedent(source))


def test_r5_flags_banned_imports():
    assert purity("import os\n") == ["kernel-purity"]
    assert purity("import random\n") == ["kernel-purity"]
    assert purity("from time import sleep\n") == ["kernel-purity"]


def test_r5_flags_io_calls():
    assert purity("def f():\n    print('x')\n") == ["kernel-purity"]
    assert purity("def f():\n    open('/tmp/x')\n") == ["kernel-purity"]


def test_r5_flags_global_statement():
    assert purity("X = 1\ndef f():\n    global X\n    X = 2\n") == ["kernel-purity"]


def test_r5_flags_module_global_mutation():
    assert purity("CACHE = {}\ndef f(k):\n    CACHE[k] = 1\n") == ["kernel-purity"]
    assert purity("SEEN = set()\ndef f(k):\n    SEEN.add(k)\n") == ["kernel-purity"]


def test_r5_flags_argument_mutation():
    assert purity("def f(d):\n    d['k'] = 1\n") == ["kernel-purity"]
    assert purity("def f(xs):\n    xs.append(1)\n") == ["kernel-purity"]
    assert purity("def f(e):\n    e.cost = 1\n") == ["kernel-purity"]


def test_r5_self_state_and_locals_are_clean():
    src = """
    class K:
        def f(self, x):
            self.total = x
            local = []
            local.append(x)
            x = None
            return local
    """
    assert purity(src) == []


def test_r5_inactive_without_marker():
    assert rules_at("import os\n") == []


def test_r5_unknown_contract_is_flagged():
    assert rules_at("# purity: bogus\n") == ["kernel-purity"]


# ---------------------------------------------------------------------------
# suppressions and meta rules
# ---------------------------------------------------------------------------


def test_suppression_on_same_line_silences():
    src = (
        "s = {1}\n"
        "for x in s:  # lint: allow[unordered-iter] order provably cannot escape\n"
        "    pass\n"
    )
    report = lint_source(src, STRICT_PATH)
    assert report.ok
    assert len(report.suppressed) == 1
    finding, supp = report.suppressed[0]
    assert finding.rule == "unordered-iter"
    assert supp.reason == "order provably cannot escape"


def test_suppression_on_line_above_silences():
    src = (
        "s = {1}\n"
        "# lint: allow[unordered-iter] order provably cannot escape\n"
        "for x in s:\n"
        "    pass\n"
    )
    assert lint_source(src, STRICT_PATH).ok


def test_suppression_without_reason_is_lint_meta():
    src = "s = {1}\nfor x in s:  # lint: allow[unordered-iter]\n    pass\n"
    assert rules_at(src) == ["lint-meta"]


def test_unused_suppression_is_lint_meta():
    src = "# lint: allow[unordered-iter] stale exemption\nx = 1\n"
    assert rules_at(src) == ["lint-meta"]


def test_wrong_rule_suppression_does_not_silence():
    src = (
        "s = {1}\n"
        "for x in s:  # lint: allow[float-eq] wrong rule\n"
        "    pass\n"
    )
    rules = rules_at(src)
    assert "unordered-iter" in rules  # the real finding survives
    assert "lint-meta" in rules  # and the suppression is unused


def test_syntax_error_is_parse_error_finding():
    assert rules_at("def f(:\n") == ["parse-error"]


# ---------------------------------------------------------------------------
# the analyzer on the real package (and on itself)
# ---------------------------------------------------------------------------


def test_src_repro_lints_clean():
    report = lint_paths([os.path.join(REPO_SRC, "repro")], DEFAULT_CONFIG)
    assert report.ok, "\n" + report.render_text()
    assert report.files_checked > 50
    # Zero unexplained suppressions: every one carries a reason.
    assert all(supp.reason for _f, supp in report.suppressed)
    # The analyzer package itself was part of the walk.
    linted = {f for f in os.listdir(os.path.join(REPO_SRC, "repro", "analysis", "lint"))}
    assert "engine.py" in linted


def test_kernel_suppression_inventory_is_curated():
    """The kernel's exemptions are exactly the analysed-and-safe sites."""
    kernel = os.path.join(REPO_SRC, "repro", "routing", "kernel.py")
    report = lint_paths([kernel], DEFAULT_CONFIG)
    assert report.ok
    rules = sorted(supp.rule for _f, supp in report.suppressed)
    assert rules == [
        "float-eq",
        "float-eq",
        "kernel-purity",
        # argmin drain in _relax_route plus the three set-to-set id
        # decodes (consume_*_changes, recompute_avoidance) where
        # iteration order cannot escape the built set.
        "unordered-iter",
        "unordered-iter",
        "unordered-iter",
        "unordered-iter",
    ]


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


def run_cli(*args):
    """Run ``python -m repro lint`` with src/ on the path."""
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        env=env,
    )


@pytest.fixture
def violating_fixture(tmp_path):
    """A seeded fixture file with one violation per major rule."""
    path = tmp_path / "violations.py"
    path.write_text(
        "import random\n"
        "s = {1, 2}\n"
        "for x in s:\n"
        "    random.random()\n"
        "key = hash(s)\n"
    )
    return str(path)


def test_cli_fails_on_seeded_fixture(violating_fixture):
    proc = run_cli("--paths", violating_fixture)
    assert proc.returncode == 1
    assert "unordered-iter" in proc.stdout
    assert "unseeded-random" in proc.stdout
    assert "hash-escape" in proc.stdout
    assert "FAIL" in proc.stdout


def test_cli_json_format(violating_fixture):
    proc = run_cli("--paths", violating_fixture, "--format", "json")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["ok"] is False
    assert {f["rule"] for f in doc["active"]} >= {
        "unordered-iter",
        "unseeded-random",
        "hash-escape",
    }


def test_cli_clean_file_exits_zero(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("xs = [1, 2]\ntotal = sum(xs)\n")
    proc = run_cli("--paths", str(clean))
    assert proc.returncode == 0
    assert "OK" in proc.stdout
