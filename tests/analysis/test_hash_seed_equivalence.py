"""Cross-hash-seed equivalence gate: the contract the lint enforces.

``NodeId`` is ``Hashable`` and node ids here are *strings*, so any
iteration-order or ``hash()`` dependence in the kernel, mirror, or
artifact layers would shift with ``PYTHONHASHSEED``.  This test runs
the same workload in subprocesses under ``PYTHONHASHSEED`` 0, 1, and
``random`` and asserts the observable outputs are identical:

* per-node kernel digests (DATA1/DATA2/DATA3*) of a 16-node checked
  protocol construction,
* every checker mirror's replayed digest and the detection flags,
* the synchronous pure-kernel oracle's digests, and
* sweep artifact bytes — ``results.csv`` and ``summary.csv`` exactly;
  ``cells.jsonl`` after zeroing the per-record ``wall_time`` field,
  which is sanctioned volatile instrumentation (see the lint config
  allowlist and ``docs/determinism.md``).

The three subprocesses run concurrently to stay inside the default
test tier's time budget.
"""

import json
import os
import subprocess
import sys

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

#: The per-seed workload; prints one JSON document on stdout.
WORKER = """
import hashlib
import json
import os
import random
import sys
import tempfile

from repro.faithful.protocol import run_checked_construction
from repro.routing.kernel import kernel_fixed_point
from repro.workloads import random_biconnected_graph
from repro.experiments import (
    SweepRunner,
    canonical_results,
    expand_grid,
    summarize,
    write_artifacts,
)

out = {"hash_seed": os.environ.get("PYTHONHASHSEED", "")}

# -- 16-node checked protocol construction (string node ids) --------------
graph = random_biconnected_graph(16, random.Random(1))
construction = run_checked_construction(graph)
nodes = construction.nodes
out["node_digests"] = {
    repr(node_id): node.comp.full_digest()
    for node_id, node in sorted(nodes.items(), key=repr)
}
out["mirror_digests"] = {
    repr((checker_id, principal_id)): mirror.comp.full_digest()
    for checker_id, node in sorted(nodes.items(), key=repr)
    for principal_id, mirror in sorted(node.mirrors.items(), key=repr)
}
out["flags"] = sorted(repr(flag) for flag in construction.flags)

# -- synchronous pure-kernel oracle ---------------------------------------
oracle = kernel_fixed_point(graph)
out["oracle_digests"] = {
    repr(node_id): kern.full_digest()
    for node_id, kern in sorted(oracle.items(), key=repr)
}

# -- small sweep: artifact bytes ------------------------------------------
scenarios = expand_grid(base={"size": 6, "probe": "payments"}, axes={"seed": [1, 2]})
results = canonical_results(SweepRunner(scenarios, workers=1).run())
summaries = summarize(results, group_by=("seed",))
artifact_dir = tempfile.mkdtemp()
paths = write_artifacts(
    results, summaries, artifact_dir, name="hashseed-eq", group_by=("seed",)
)
for kind in ("results", "summary"):
    with open(paths[kind], "rb") as handle:
        out[f"{kind}_sha"] = hashlib.sha256(handle.read()).hexdigest()
normalized = []
with open(paths["cells"], "r", encoding="utf-8") as handle:
    for line in handle:
        record = json.loads(line)
        record["wall_time"] = 0.0
        normalized.append(json.dumps(record, sort_keys=True))
out["cells_sha"] = hashlib.sha256("\\n".join(normalized).encode("utf-8")).hexdigest()

json.dump(out, sys.stdout, sort_keys=True)
"""


def test_outputs_identical_across_hash_seeds(tmp_path):
    """Digests, flags, and artifacts agree under PYTHONHASHSEED 0/1/random."""
    script = tmp_path / "worker.py"
    script.write_text(WORKER)
    procs = {}
    for seed in ("0", "1", "random"):
        env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONHASHSEED=seed)
        procs[seed] = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
    outputs = {}
    for seed, proc in procs.items():
        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 0, f"seed {seed} failed:\n{stderr}"
        outputs[seed] = json.loads(stdout)
        del outputs[seed]["hash_seed"]  # the only field expected to vary

    baseline = outputs["0"]
    assert baseline["flags"] == []  # honest run: no detection flags
    assert len(baseline["node_digests"]) == 16
    assert len(baseline["oracle_digests"]) == 16
    assert baseline["mirror_digests"]  # checkers actually mirrored

    assert outputs["1"] == baseline, "PYTHONHASHSEED=1 diverged from 0"
    assert outputs["random"] == baseline, "PYTHONHASHSEED=random diverged from 0"
