"""Tests for the experiment runners (protocol <-> analysis glue)."""

import random

import pytest

from repro.analysis import (
    faithful_deviation_table,
    make_faithful_runner,
    make_plain_runner,
    plain_deviation_table,
    routing_distributed_mechanism,
)
from repro.errors import MechanismError
from repro.mechanism import TypeProfile, check_ic, check_strong_ac, check_strong_cc
from repro.workloads import ring_graph, uniform_all_pairs


@pytest.fixture(scope="module")
def setup():
    graph = ring_graph(4, random.Random(11))
    return graph, uniform_all_pairs(graph)


class TestRunners:
    def test_faithful_runner_baseline(self, setup):
        graph, traffic = setup
        runner = make_faithful_runner(graph, traffic)
        utilities, detected = runner(None, None)
        assert set(utilities) == set(graph.nodes)
        assert not detected

    def test_faithful_runner_detects(self, setup):
        graph, traffic = setup
        runner = make_faithful_runner(graph, traffic)
        _, detected = runner(graph.nodes[0], "payment-underreport")
        assert detected

    def test_plain_runner_never_detects(self, setup):
        graph, traffic = setup
        runner = make_plain_runner(graph, traffic)
        _, detected = runner(graph.nodes[0], "payment-underreport")
        assert not detected


class TestDeviationTables:
    def test_faithful_table_is_faithful(self, setup):
        graph, traffic = setup
        table = faithful_deviation_table(
            graph,
            traffic,
            nodes=[graph.nodes[0]],
            deviations=("payment-underreport", "packet-drop", "cost-lie"),
        )
        assert table.is_faithful()
        assert table.detection_rate(excluding=("cost-lie",)) == 1.0

    def test_plain_table_shows_gains(self, setup):
        graph, traffic = setup
        table = plain_deviation_table(
            graph,
            traffic,
            nodes=[graph.nodes[0]],
            deviations=("payment-underreport",),
        )
        assert not table.is_faithful()
        assert table.max_gain > 0


class TestDistributedMechanismPackaging:
    def test_compatibility_checks_pass_on_faithful(self, setup):
        graph, traffic = setup
        dm = routing_distributed_mechanism(
            graph,
            traffic,
            deviations=("cost-lie", "copy-drop", "payment-underreport"),
        )
        types = [TypeProfile({n: graph.cost(n) for n in graph.nodes})]
        assert check_ic(dm, types).holds
        assert check_strong_cc(dm, types).holds
        assert check_strong_ac(dm, types).holds

    def test_plain_mechanism_fails_strong_ac(self, setup):
        graph, traffic = setup
        dm = routing_distributed_mechanism(
            graph,
            traffic,
            deviations=("payment-underreport",),
            faithful=False,
        )
        types = [TypeProfile({n: graph.cost(n) for n in graph.nodes})]
        assert not check_strong_ac(dm, types).holds

    def test_types_quantifier_changes_costs(self, setup):
        graph, traffic = setup
        dm = routing_distributed_mechanism(
            graph, traffic, deviations=("cost-lie",)
        )
        doubled = TypeProfile({n: graph.cost(n) * 2 for n in graph.nodes})
        run = dm.run_suggested(doubled)
        base = dm.run_suggested(
            TypeProfile({n: graph.cost(n) for n in graph.nodes})
        )
        assert run.utilities != base.utilities

    def test_joint_deviations_rejected_by_engine(self, setup):
        graph, traffic = setup
        dm = routing_distributed_mechanism(
            graph, traffic, deviations=("cost-lie",)
        )
        types = TypeProfile({n: graph.cost(n) for n in graph.nodes})
        nodes = graph.nodes
        lie = dm.strategies_of(nodes[0])[1]
        with pytest.raises(MechanismError, match="unilateral"):
            dm.run({nodes[0]: lie, nodes[1]: lie}, types)
