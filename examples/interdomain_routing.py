#!/usr/bin/env python3
"""Interdomain routing: Example 1 and the manipulation economy.

Reproduces: Example 1 / Figure 1 (node C's cost misdeclaration) and
the Section 4.3 claim that VCG strategyproofness stops the cost lie
while only the faithful extension stops protocol-level manipulation.

Reproduces the paper's Example 1 — node C misdeclares its transit cost
(1 -> 5) — under three regimes:

1. naive declared-cost pricing (the lie profits, efficiency suffers);
2. FPSS VCG pricing (the lie never profits: strategyproofness);
3. the faithful extension against *protocol-level* manipulations that
   VCG alone cannot stop (false table announcements, payment fraud),
   showing plain-FPSS gains versus faithful-extension detection.

Run:  python examples/interdomain_routing.py
"""

from repro.analysis import render_table
from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    PlainFPSSProtocol,
    faithful_deviant_factory,
    plain_deviant_factory,
)
from repro.routing import (
    figure1_graph,
    lowest_cost_path,
    total_routing_cost,
    utility_of_misreport,
)
from repro.workloads import uniform_all_pairs

TARGET = "C"


def example1(graph, traffic) -> None:
    print("=== Example 1: C lies about its transit cost (1 -> 5) ===")
    lied = graph.with_costs({TARGET: 5.0})
    print(
        f"X->Z LCP honest: {lowest_cost_path(graph, 'X', 'Z').path}, "
        f"after the lie: {lowest_cost_path(lied, 'X', 'Z').path}"
    )
    print(
        f"total true routing cost: {total_routing_cost(graph):.0f} -> "
        f"{total_routing_cost(lied, truthful_graph=graph):.0f} "
        "(efficiency damaged)"
    )
    rows = []
    for rule in ("declared-cost", "vcg"):
        truthful, lying = utility_of_misreport(
            graph, TARGET, 5.0, traffic, payment_rule=rule
        )
        rows.append([rule, truthful, lying, lying - truthful])
    print(
        render_table(
            ["pricing", "U(C) truthful", "U(C) lying", "gain"],
            rows,
            float_digits=2,
        )
    )
    print()


def protocol_manipulations(graph, traffic) -> None:
    print("=== Protocol manipulations: plain FPSS vs faithful extension ===")
    plain_base = PlainFPSSProtocol(graph, traffic).run()
    faithful_base = FaithfulFPSSProtocol(graph, traffic).run()

    rows = []
    for name in (
        "false-route-announce",
        "charge-understate",
        "payment-underreport",
        "packet-drop",
    ):
        spec = DEVIATION_CATALOGUE[name]
        plain = PlainFPSSProtocol(
            graph, traffic, node_factory=plain_deviant_factory(spec, TARGET)
        ).run()
        faithful = FaithfulFPSSProtocol(
            graph,
            traffic,
            node_factory=faithful_deviant_factory(spec, TARGET),
        ).run()
        rows.append(
            [
                name,
                plain.utilities[TARGET] - plain_base.utilities[TARGET],
                faithful.utilities[TARGET] - faithful_base.utilities[TARGET],
                "yes" if faithful.detection.detected_any else "no",
            ]
        )
    print(
        render_table(
            ["manipulation by C", "plain gain", "faithful gain", "detected"],
            rows,
            float_digits=2,
        )
    )
    print()
    print(
        "Every manipulation that pays in trusting FPSS is caught by the "
        "checker/bank machinery and turns strictly unprofitable — the "
        "executable content of Theorem 1."
    )


def main() -> None:
    graph = figure1_graph()
    traffic = uniform_all_pairs(graph)
    example1(graph, traffic)
    protocol_manipulations(graph, traffic)


if __name__ == "__main__":
    main()
