#!/usr/bin/env python3
"""Dynamic topology: churn, failures, and reconvergence under traffic.

Reproduces: the recomputation setting of Shneidman & Parkes (PODC'04)
Section 4 — the paper's faithfulness claims are stated for a protocol
that *recomputes* when the network changes, and this example drives
that machinery end to end:

1. a link failure that partitions the network (traffic to the far
   side counted as unroutable, stale routes withdrawn everywhere),
   then heals — with the epoch-equivalence oracle asserting after
   every epoch that the repaired tables are bit-identical to a fresh
   fixed point on the post-event graph;
2. membership churn: a node leaves, a new node joins mid-run, and the
   network reconverges to exactly the fixed point of the reduced /
   grown graph;
3. the checked (faithful) network across epochs: checker mirrors
   re-anchor at each epoch boundary, an obedient run raises zero
   flags, and skipping the mirror pool's epoch bump is detected
   loudly (sharing refused, ``seed_mismatches`` counted) rather than
   corrupting detection silently.

Run:  python examples/dynamic_churn.py
"""

from repro.analysis import render_table
from repro.faithful.epochs import run_checked_churn
from repro.routing import ASGraph
from repro.routing.dynamic import run_dynamic_fpss
from repro.sim.churn import ChurnEvent, ChurnSchedule
from repro.workloads import uniform_all_pairs


def bridged_graph():
    """Two triangles joined by one bridge; losing it partitions."""
    return ASGraph(
        {"a": 1.0, "b": 2.0, "c": 3.0, "d": 1.0, "e": 2.0, "f": 3.0},
        [
            ("a", "b"), ("b", "c"), ("a", "c"),
            ("d", "e"), ("e", "f"), ("d", "f"),
            ("c", "d"),
        ],
    )


def epoch_rows(run):
    rows = []
    for report in run.epochs:
        rows.append(
            [
                report.epoch,
                "; ".join(e.describe() for e in report.events),
                report.reconvergence_messages,
                report.routed_flows,
                report.unroutable_flows,
                round(report.availability, 3),
                round(report.payments_total, 2),
            ]
        )
    return rows


def main():
    # 1. Partition and heal: every epoch is oracle-verified in place.
    schedule = ChurnSchedule(
        epochs=(
            (ChurnEvent(kind="link-down", link=("c", "d")),),
            (ChurnEvent(kind="link-up", link=("c", "d")),),
            (ChurnEvent(kind="cost", node="c", cost=9.0),),
        )
    )
    run = run_dynamic_fpss(
        bridged_graph(), schedule, traffic=lambda g: uniform_all_pairs(g)
    )
    print(
        render_table(
            ["epoch", "events", "reconv msgs", "routed", "unroutable",
             "availability", "payments"],
            epoch_rows(run),
            title="Partition, heal, reprice (epoch-equivalence verified)",
        )
    )
    print(
        f"message amplification vs initial construction: "
        f"{run.message_amplification:.3f}\n"
    )

    # 2. Membership churn: leave then join, reconverging exactly.
    membership = ChurnSchedule(
        epochs=(
            (ChurnEvent(kind="leave", node="f"),),
            (ChurnEvent(kind="join", node="g", cost=1.5,
                        links=(("g", "a"), ("g", "e"))),),
        )
    )
    run2 = run_dynamic_fpss(
        bridged_graph(), membership, traffic=lambda g: uniform_all_pairs(g)
    )
    print(
        render_table(
            ["epoch", "events", "reconv msgs", "routed", "unroutable",
             "availability", "payments"],
            epoch_rows(run2),
            title="Membership churn (leave, then join)",
        )
    )
    survivors = sorted(run2.graph.nodes)
    print(f"final membership: {survivors}\n")

    # 3. Faithful epochs: mirrors re-anchor; a missed epoch bump is
    # loud, never silent.
    from repro.routing import figure1_graph

    cost_epochs = ChurnSchedule(
        epochs=(
            (ChurnEvent(kind="cost", node="C", cost=2.0),),
            (ChurnEvent(kind="cost", node="D", cost=3.0),),
        )
    )
    checked = run_checked_churn(figure1_graph(), cost_epochs)
    skipped = run_checked_churn(
        figure1_graph(), cost_epochs, epoch_bump=False
    )
    print("checked construction across epochs (figure 1):")
    print(f"  flags per epoch: "
          f"{[len(r.flags) for r in (checked.initial, *checked.epochs)]}")
    print(f"  with epoch bump:  seed_mismatches={checked.seed_mismatches}, "
          f"shared_hits={checked.kernel_stats().shared_hits}")
    print(f"  bump skipped:     seed_mismatches={skipped.seed_mismatches} "
          f"(loud — sharing refused, mirrors replay privately)")


if __name__ == "__main__":
    main()
