#!/usr/bin/env python3
"""Leader election: the paper's Section 3 motivating example.

Reproduces: the Section 3 leader-election story — the naive
specification is manipulable, the VCG (second-price) repair makes
truthful reporting faithful.

A designer wants the network to elect the node that can serve most
cheaply as a shared computation server.  The naive specification —
report, pick, serve uncompensated — collapses under rational play:
every node overstates its cost to dodge the chore.  The faithful
repair is a VCG (second-price) procurement auction.

The script shows both the centralized analysis (strategyproofness
audits) and the distributed flavour (report flooding over a simulated
network with a rational manipulator).

Run:  python examples/leader_election.py
"""

import random

from repro.analysis import render_table
from repro.election import (
    ElectionNode,
    naive_election_mechanism,
    optimal_leader,
    vcg_election_mechanism,
)
from repro.mechanism import TypeProfile, TypeSpace, audit_strategyproofness
from repro.sim import NetworkTopology, Simulator

TRUE_COSTS = {"athens": 4.0, "berlin": 1.0, "cairo": 7.0}


def centralized_analysis() -> None:
    print("=== Centralized analysis ===")
    spaces = {
        name: TypeSpace(values=(1.0, 4.0, 7.0)) for name in TRUE_COSTS
    }
    rows = []
    for label, mechanism in (
        ("naive (serve-most-willing)", naive_election_mechanism(spaces)),
        ("faithful (VCG procurement)", vcg_election_mechanism(spaces)),
    ):
        report = audit_strategyproofness(mechanism)
        rows.append(
            [label, report.is_strategyproof, len(report.violations),
             report.max_gain]
        )
    print(
        render_table(
            ["mechanism", "strategyproof", "profitable lies", "max gain"],
            rows,
            float_digits=2,
        )
    )

    profile = TypeProfile(TRUE_COSTS)
    vcg = vcg_election_mechanism(
        {name: TypeSpace(values=(v,)) for name, v in TRUE_COSTS.items()}
    )
    outcome = vcg.outcome(profile)
    print(
        f"\ntruthful VCG election: winner={outcome.decision} "
        f"(optimal={optimal_leader(profile)}), paid "
        f"{outcome.transfer_to(outcome.decision):g} "
        "(the second-lowest cost)"
    )
    print()


def distributed_run(biases, headline) -> None:
    print(f"=== Distributed run: {headline} ===")
    topology = NetworkTopology.from_edges(
        [("athens", "berlin"), ("berlin", "cairo"), ("cairo", "athens")]
    )
    simulator = Simulator(topology)
    nodes = {}
    for name, cost in TRUE_COSTS.items():
        node = ElectionNode(name, cost, report_bias=biases.get(name, 1.0))
        nodes[name] = node
        simulator.add_node(node)
    simulator.start()
    simulator.run_until_quiescent()

    rows = [
        [name, TRUE_COSTS[name], node.reported_cost(), node.winner()]
        for name, node in sorted(nodes.items())
    ]
    print(
        render_table(
            ["node", "true cost", "reported", "locally computed winner"],
            rows,
            float_digits=1,
        )
    )
    winner = next(iter(nodes.values())).winner()
    optimum = optimal_leader(TypeProfile(TRUE_COSTS))
    verdict = "efficient" if winner == optimum else "INEFFICIENT"
    print(f"consensus winner: {winner} ({verdict}; optimum is {optimum})\n")


def main() -> None:
    random.seed(0)
    centralized_analysis()
    distributed_run({}, "everyone truthful (the VCG equilibrium)")
    distributed_run(
        {"berlin": 4.0},
        "berlin overstates 4x to dodge the chore (naive-mechanism play)",
    )


if __name__ == "__main__":
    main()
