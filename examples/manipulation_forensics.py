#!/usr/bin/env python3
"""Manipulation forensics: watch the checkers and the bank at work.

Reproduces: the Section 4.3 manipulation catalogue and the Section
4.2 claim that checkers plus bank checkpoints detect every
construction-phase manipulation (the detection half of Proposition 1).

Installs each construction-phase manipulation from Section 4.3 on one
node of the Figure 1 network, runs the faithful protocol, and prints
the forensic trail: which checkers raised which flags, what the bank
decided at each checkpoint, and the deviator's final utility.

Run:  python examples/manipulation_forensics.py
"""

from collections import Counter

from repro.analysis import render_table
from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    faithful_deviant_factory,
)
from repro.routing import figure1_graph
from repro.workloads import uniform_all_pairs

SCENARIOS = (
    ("false-route-announce", "C", "announces shaded (cheaper) path costs"),
    ("route-suppress", "D", "computes correctly but never announces"),
    ("copy-drop", "C", "withholds checker copies of received updates"),
    ("copy-alter", "D", "forwards doctored checker copies"),
    ("copy-spoof", "C", "fabricates a copy claiming a neighbour sent it"),
    ("payment-underreport", "X", "reports half its DATA4 obligations"),
    ("packet-drop", "C", "silently drops transiting packets"),
)


def main() -> None:
    graph = figure1_graph()
    traffic = uniform_all_pairs(graph)
    baseline = FaithfulFPSSProtocol(graph, traffic).run()
    print(
        f"baseline: certified={baseline.progressed}, "
        f"flags={len(baseline.detection.all_flags)}\n"
    )

    summary_rows = []
    for name, target, description in SCENARIOS:
        spec = DEVIATION_CATALOGUE[name]
        result = FaithfulFPSSProtocol(
            graph,
            traffic,
            node_factory=faithful_deviant_factory(spec, target),
        ).run()

        print(f"--- {name} by {target}: {description} ---")
        for decision in result.detection.checkpoint_decisions:
            verdict = "green-light" if decision.green_light else "RESTART"
            suspects = (
                f" suspects={decision.suspects}" if decision.suspects else ""
            )
            print(f"  [{decision.checkpoint}] {verdict}{suspects}")
        flag_counts = Counter(
            (flag.kind.value, flag.checker)
            for flag in result.detection.all_flags
        )
        for (kind, checker), count in sorted(flag_counts.items(), key=repr):
            who = f"checker {checker}" if checker else "bank"
            print(f"  flag {kind} x{count} (raised by {who})")
        gain = result.utilities[target] - baseline.utilities[target]
        print(
            f"  outcome: progressed={result.progressed}, "
            f"U({target}) change {gain:+.2f}\n"
        )
        summary_rows.append(
            [
                name,
                target,
                "yes" if result.detection.detected_any else "no",
                len(result.detection.all_flags),
                gain,
            ]
        )

    print(
        render_table(
            ["manipulation", "node", "detected", "flags", "utility gain"],
            summary_rows,
            float_digits=2,
            title="Forensic summary (gain <= 0 everywhere: Theorem 1)",
        )
    )


if __name__ == "__main__":
    main()
