#!/usr/bin/env python3
"""Scenario sweeps: the paper's claims as distributions, not anecdotes.

Reproduces: the paper's headline claims (VCG overpayment, protocol
convergence, manipulation detection) as per-cell distributions over
scenario grids rather than single Figure-1 anecdotes.

Single runs show *that* VCG overpays and *that* the faithful extension
detects manipulation; sweeps show *how much, how often, and where*.
This example builds three grids with the declarative spec layer:

1. a payments grid over two topology families, two traffic models
   (one heavy-tailed), and several seeds — summarising the VCG
   overpayment ratio per cell;
2. a convergence grid with heterogeneous link delays — the protocol
   reaches the oracle fixed point under asynchrony, at a message cost
   the sweep measures;
3. a detection grid on the paper's Figure 1 network — protocol
   deviations are caught, the classic cost lie is merely unprofitable;
4. the orchestration layer: one grid run as 3 shards and merged,
   producing artifacts byte-identical to a serial run (the scheme
   ``python -m repro sweep --shard I/N`` + ``sweep-merge`` uses
   across machines).

Artifacts (results.csv / summary.csv / sweep.json / cells.jsonl) land
in a temp directory, exactly as ``python -m repro sweep`` would write
them.

Run:  python examples/scenario_sweep.py
"""

import tempfile

from repro.analysis import render_table
from repro.experiments import (
    SweepRunner,
    expand_grid,
    merge_artifacts,
    shard_grid,
    summarize,
    write_artifacts,
)


def run_grid(title, base, axes, group_by):
    scenarios = expand_grid(base=base, axes=axes)
    results = SweepRunner(scenarios, workers=1).run()
    failures = [r for r in results if not r.ok]
    print(
        f"{title}: {len(results)} scenarios, {len(failures)} failures"
    )
    return results, summarize(results, group_by=group_by)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Overpayment under VCG, with heavy-tailed costs and volumes.
    # ------------------------------------------------------------------
    results, summaries = run_grid(
        "payments grid",
        base={
            "probe": "payments",
            "cost_dist": "pareto",
            "cost_param": 1.5,
            "volume_dist": "zipf",
            "flow_count": 24,
        },
        axes={
            "topology": ["random", "ring"],
            "traffic": ["uniform", "random-pairs"],
            "size": [8, 12],
            "seed": [0, 1, 2],
        },
        group_by=("topology", "size", "traffic"),
    )
    rows = [
        [
            summary.label(),
            summary.stats["overpayment_ratio"].mean,
            summary.stats["overpayment_ratio"].std,
            summary.stats["overpayment_ratio"].maximum,
        ]
        for summary in summaries
    ]
    print(
        render_table(
            ["cell", "mean", "std", "max"],
            rows,
            float_digits=3,
            title="VCG overpayment ratio (payment / true transit cost)",
        )
    )
    print()

    # ------------------------------------------------------------------
    # 2. Convergence under link-delay heterogeneity.
    # ------------------------------------------------------------------
    conv_results, conv_summaries = run_grid(
        "convergence grid",
        base={"probe": "convergence", "topology": "random", "size": 8},
        axes={"link_delay_spread": [0.0, 1.0], "seed": [0, 1, 2]},
        group_by=("link_delay_spread",),
    )
    rows = [
        [
            summary.label(),
            summary.stats["convergence_events"].mean,
            summary.stats["messages"].mean,
        ]
        for summary in conv_summaries
    ]
    print(
        render_table(
            ["cell", "mean events", "mean messages"],
            rows,
            float_digits=1,
            title="Plain FPSS convergence (oracle-verified fixed points)",
        )
    )
    print()

    # ------------------------------------------------------------------
    # 3. Manipulation detection on Figure 1.
    # ------------------------------------------------------------------
    det_results, det_summaries = run_grid(
        "detection grid",
        base={"topology": "figure1", "probe": "detection"},
        axes={
            "deviation": ["payment-underreport", "cost-lie"],
            "deviant_index": [1, 2],
        },
        group_by=("deviation",),
    )
    rows = [
        [
            dict(summary.key)["deviation"],
            summary.stats["detected"].mean,
            summary.stats["deviator_gain"].mean,
        ]
        for summary in det_summaries
    ]
    print(
        render_table(
            ["deviation", "detection rate", "mean deviator gain"],
            rows,
            float_digits=3,
            title="Detection sweep (faithful protocol, Figure 1)",
        )
    )
    print()

    # ------------------------------------------------------------------
    # Artifacts, exactly as `python -m repro sweep` writes them.
    # ------------------------------------------------------------------
    out_dir = tempfile.mkdtemp(prefix="scenario-sweep-")
    all_results = results + conv_results + det_results
    paths = write_artifacts(
        all_results,
        summarize(all_results, group_by=("probe", "topology")),
        out_dir,
        name="example",
    )
    for kind, path in sorted(paths.items()):
        print(f"artifact [{kind}]: {path}")
    print()

    # ------------------------------------------------------------------
    # 4. Orchestration: the same grid in 3 shards, merged — and the
    #    merged artifacts are byte-identical to a serial run's.
    # ------------------------------------------------------------------
    specs = expand_grid(
        base={"size": 6},
        axes={"topology": ["random", "ring"], "seed": [0, 1, 2]},
    )
    serial_dir = tempfile.mkdtemp(prefix="sweep-serial-")
    serial_paths = write_artifacts(
        SweepRunner(specs, workers=1).run(store_dir=serial_dir),
        None,
        serial_dir,
        name="orchestrated",
    )
    shard_dirs = []
    for index in range(3):
        directory = tempfile.mkdtemp(prefix=f"sweep-shard{index}-")
        shard = shard_grid(specs, index, 3)
        write_artifacts(
            SweepRunner(shard, workers=1, allow_empty=True).run(
                store_dir=directory
            ),
            None,
            directory,
            name="orchestrated",
        )
        shard_dirs.append(directory)
    report = merge_artifacts(
        shard_dirs,
        tempfile.mkdtemp(prefix="sweep-merged-"),
        name="orchestrated",
    )
    identical = all(
        open(serial_paths[kind]).read() == open(report.paths[kind]).read()
        for kind in ("results", "summary", "json")
    )
    print(
        f"orchestration: {len(specs)} cells in 3 shards, merged "
        f"{len(report.results)} cells; artifacts byte-identical to "
        f"serial run: {identical}"
    )


if __name__ == "__main__":
    main()
