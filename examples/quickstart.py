#!/usr/bin/env python3
"""Quickstart: run the faithful FPSS mechanism on the paper's network.

Reproduces: Figure 1's network and the Section 4.2 extended
specification end to end — construction, certification, execution,
settlement — with the claim that an obedient run certifies without
flags and settles exact VCG payments.

Builds the Figure 1 AS graph, runs the complete extended specification
(two construction phases with bank checkpoints, then the execution
phase with settlement), and prints the converged routing economics.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_table
from repro.faithful import FaithfulFPSSProtocol
from repro.routing import figure1_graph, lowest_cost_path
from repro.workloads import uniform_all_pairs


def main() -> None:
    graph = figure1_graph()
    print("Figure 1 network:", ", ".join(graph.nodes))
    print("Transit costs:   ", graph.costs)
    print()

    # The paper's headline paths.
    for source, destination in (("X", "Z"), ("Z", "D"), ("B", "D")):
        route = lowest_cost_path(graph, source, destination)
        print(
            f"LCP {source}->{destination}: {'-'.join(route.path)} "
            f"(transit cost {route.cost:g})"
        )
    print()

    # One full faithful mechanism run with all-pairs unit traffic.
    traffic = uniform_all_pairs(graph)
    result = FaithfulFPSSProtocol(graph, traffic).run()

    print(f"construction certified: {result.progressed}")
    print(f"checkpoint restarts:    {result.detection.restarts}")
    print(f"flags raised:           {len(result.detection.all_flags)}")
    print()

    rows = [
        [
            node,
            result.received[node],
            result.charged[node],
            result.incurred[node],
            result.utilities[node],
        ]
        for node in graph.nodes
    ]
    print(
        render_table(
            ["node", "received", "charged", "true transit cost", "utility"],
            rows,
            float_digits=2,
            title="Execution-phase economics (uniform all-pairs traffic)",
        )
    )
    print()
    print(
        "Every node was checked by its neighbours; the bank compared "
        "table digests at both checkpoints and found nothing — this is "
        "the faithful equilibrium path."
    )


if __name__ == "__main__":
    main()
