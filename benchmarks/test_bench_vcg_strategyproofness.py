"""E3 — Strategyproofness of the FPSS/VCG pricing (Prop 2 premise).

Sweeps transit-cost misreports (multiplicative factors and random
draws) for every node on random biconnected graphs; the maximum
utility gain from any unilateral lie must be <= 0 under VCG, while the
naive declared-cost scheme admits strict gains.
"""

import random

from repro.analysis import render_table
from repro.routing import utility_of_misreport
from repro.workloads import random_biconnected_graph, uniform_all_pairs

FACTORS = (0.25, 0.5, 0.8, 1.25, 2.0, 4.0)
SIZES = (6, 10, 14)


def sweep(payment_rule, seeds=(0, 1), sizes=SIZES):
    """Max misreport gain per graph size under one pricing rule."""
    worst = {}
    for size in sizes:
        max_gain = float("-inf")
        for seed in seeds:
            rng = random.Random(seed * 1000 + size)
            graph = random_biconnected_graph(size, rng)
            traffic = uniform_all_pairs(graph)
            for node in graph.nodes:
                for factor in FACTORS:
                    truthful, lied = utility_of_misreport(
                        graph,
                        node,
                        graph.cost(node) * factor,
                        traffic,
                        payment_rule=payment_rule,
                    )
                    max_gain = max(max_gain, lied - truthful)
                # One random absolute misreport per node as well.
                truthful, lied = utility_of_misreport(
                    graph, node, rng.uniform(0.0, 20.0), traffic,
                    payment_rule=payment_rule,
                )
                max_gain = max(max_gain, lied - truthful)
        worst[size] = max_gain
    return worst


def test_bench_vcg_strategyproofness(benchmark):
    worst = benchmark.pedantic(
        sweep, args=("vcg",), rounds=1, iterations=1
    )
    naive_worst = sweep("declared-cost", seeds=(0,), sizes=(6, 10))

    rows = [
        [
            size,
            worst[size],
            naive_worst[size] if size in naive_worst else "(not swept)",
        ]
        for size in SIZES
    ]
    print()
    print(
        render_table(
            ["graph size", "max gain (VCG)", "max gain (naive)"],
            rows,
            float_digits=4,
            title="E3: max utility gain from any transit-cost misreport",
        )
    )

    # Paper shape: VCG gains never positive; naive pricing manipulable.
    assert all(gain <= 1e-7 for gain in worst.values())
    assert any(gain > 1e-9 for gain in naive_worst.values())
