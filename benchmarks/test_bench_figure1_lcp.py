"""E1 — Figure 1: lowest-cost paths on the paper's example network.

Regenerates the figure's bold LCP tree from Z and the three path costs
stated in Section 4.1: cost(X->Z) = 2 via X-D-C-Z, cost(Z->D) = 1, and
cost(B->D) = 0 (direct link, no transit nodes).
"""

from repro.analysis import render_table
from repro.routing import all_pairs_lcp, lcp_tree, lowest_cost_path


def test_bench_figure1_lcp_tree(benchmark, fig1):
    """Measure the LCP tree computation; verify the figure's claims."""
    tree = benchmark(lcp_tree, fig1, "Z")

    rows = [
        [dest, "-".join(entry.path), entry.cost]
        for dest, entry in sorted(tree.items())
    ]
    print()
    print(
        render_table(
            ["destination", "LCP from Z", "transit cost"],
            rows,
            title="Figure 1: lowest-cost paths from Z",
        )
    )

    # Paper-stated values.
    x_to_z = lowest_cost_path(fig1, "X", "Z")
    assert x_to_z.cost == 2.0 and x_to_z.path == ("X", "D", "C", "Z")
    assert lowest_cost_path(fig1, "Z", "D").cost == 1.0
    b_to_d = lowest_cost_path(fig1, "B", "D")
    assert b_to_d.cost == 0.0 and b_to_d.transit_nodes == ()


def test_bench_figure1_all_pairs(benchmark, fig1):
    """Measure all-pairs LCP over the figure's network."""
    pairs = benchmark(all_pairs_lcp, fig1)
    assert len(pairs) == 30
    # Symmetric transit costs on the undirected graph.
    for (s, d), entry in pairs.items():
        assert abs(pairs[(d, s)].cost - entry.cost) < 1e-9
