"""E9 — Scenario-sweep throughput: serial vs. pooled execution.

The sweep subsystem is the layer every scaling PR plugs into, so its
own overhead has to stay negligible: the fast benchmark drives the
stock payments grid through one serial worker and reports
scenarios/sec.  The slow benchmark compares serial against pooled
execution on protocol-heavy (convergence-probe) scenarios, where each
scenario is expensive enough for process fan-out to pay; the speedup
assertion only applies when the machine actually has multiple cores.
"""

import multiprocessing
import time

import pytest

from repro.analysis import render_table
from repro.experiments import (
    SweepRunner,
    default_sweep,
    expand_grid,
    merge_artifacts,
    shard_grid,
    summarize,
    write_artifacts,
)

def once(benchmark, fn):
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def test_bench_sweep_payments_throughput(benchmark):
    """The stock payments block must clear tens of scenarios per second."""
    # protocol_seeds=0 drops the 16/64-node convergence block: this
    # benchmark gates the cheap engine-bound payments probe only.
    sweep = default_sweep(
        seeds=3, protocol_seeds=0, checked_seeds=0, churn_seeds=0,
        settlement_seeds=0,
    )
    results = once(benchmark, lambda: SweepRunner(sweep, workers=1).run())

    assert len(results) == 24
    assert all(r.ok for r in results)
    wall = sum(r.wall_time for r in results)
    throughput = len(results) / wall if wall else float("inf")
    summaries = summarize(results, group_by=("topology",))
    rows = [
        ["scenarios", len(results)],
        ["cells", len(summaries)],
        ["scenario seconds", round(wall, 4)],
        ["scenarios/sec", round(throughput, 1)],
    ]
    print()
    print(
        render_table(
            ["quantity", "value"],
            rows,
            title="Sweep throughput: stock payments grid (serial)",
        )
    )
    # The payments probe is engine-bound; anything below this signals
    # an accidental protocol run or a memoization regression.
    assert throughput > 20


@pytest.mark.slow
def test_bench_sweep_serial_vs_pooled(benchmark):
    """Pooled execution beats serial on protocol-heavy scenarios.

    Convergence probes run a full FPSS simulation each, so they are
    the workload where fan-out matters.  On single-core machines the
    pool can only add overhead, so the speedup assertion is gated on
    the core count; correctness (same results either way) is asserted
    unconditionally.
    """
    scenarios = expand_grid(
        base={"probe": "convergence", "topology": "random", "size": 10},
        axes={"seed": list(range(8))},
    )
    workers = min(4, multiprocessing.cpu_count())

    started = time.perf_counter()
    serial = SweepRunner(scenarios, workers=1).run()
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    pooled = once(
        benchmark, lambda: SweepRunner(scenarios, workers=workers).run()
    )
    pooled_wall = time.perf_counter() - started

    assert all(r.ok for r in serial)
    assert all(r.ok for r in pooled)
    assert [r.scenario_id for r in pooled] == [r.scenario_id for r in serial]
    for a, b in zip(serial, pooled):
        assert a.values["convergence_events"] == b.values["convergence_events"]
        assert a.values["messages"] == b.values["messages"]

    rows = [
        ["scenarios", len(scenarios)],
        ["workers", workers],
        ["serial wall (s)", round(serial_wall, 3)],
        ["pooled wall (s)", round(pooled_wall, 3)],
        [
            "speedup",
            round(serial_wall / pooled_wall, 2) if pooled_wall else 0.0,
        ],
        [
            "serial scenarios/sec",
            round(len(scenarios) / serial_wall, 2),
        ],
        [
            "pooled scenarios/sec",
            round(len(scenarios) / pooled_wall, 2),
        ],
    ]
    print()
    print(
        render_table(
            ["quantity", "value"],
            rows,
            title="Sweep throughput: serial vs. pooled (convergence probe)",
        )
    )
    if workers >= 2 and multiprocessing.cpu_count() >= 2:
        assert pooled_wall < serial_wall


@pytest.mark.slow
def test_bench_sweep_detection_grid(benchmark):
    """A small manipulation-detection grid: the paper's E5 story as a
    sweep — protocol deviations detected, the cost lie merely
    unprofitable."""
    scenarios = expand_grid(
        base={"topology": "figure1", "probe": "detection"},
        axes={
            "deviation": ["payment-underreport", "cost-lie"],
            "deviant_index": [1, 2],
        },
    )
    results = once(benchmark, lambda: SweepRunner(scenarios, workers=1).run())
    assert all(r.ok for r in results)
    summaries = summarize(results, group_by=("deviation",))
    by_deviation = {dict(s.key)["deviation"]: s for s in summaries}
    assert by_deviation["payment-underreport"].stats["detected"].mean == 1.0
    assert by_deviation["cost-lie"].stats["detected"].mean == 0.0
    assert by_deviation["cost-lie"].stats["deviator_gain"].maximum <= 1e-9

    rows = [
        [
            name,
            summary.stats["detected"].mean,
            summary.stats["deviator_gain"].mean,
            summary.stats["restarts"].mean,
        ]
        for name, summary in sorted(by_deviation.items())
    ]
    print()
    print(
        render_table(
            ["deviation", "detection rate", "mean gain", "mean restarts"],
            rows,
            float_digits=3,
            title="Detection sweep on Figure 1",
        )
    )


def test_bench_shard_merge_overhead(benchmark, tmp_path):
    """Orchestration must be free: sharding a grid 4 ways and merging
    the artifacts adds only file I/O on top of the scenario work, and
    the merged artifacts are byte-identical to the serial run's."""
    sweep = default_sweep(
        seeds=2, protocol_seeds=0, checked_seeds=0, churn_seeds=0,
        settlement_seeds=0,
    )
    specs = sweep.scenarios

    started = time.perf_counter()
    serial = write_artifacts(
        SweepRunner(specs, workers=1).run(store_dir=str(tmp_path / "serial")),
        None,
        str(tmp_path / "serial"),
        name="bench",
    )
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    shard_dirs = []
    for index in range(4):
        directory = str(tmp_path / f"shard{index}")
        results = SweepRunner(
            shard_grid(specs, index, 4), workers=1, allow_empty=True
        ).run(store_dir=directory)
        write_artifacts(results, None, directory, name="bench")
        shard_dirs.append(directory)
    sharded_wall = time.perf_counter() - started

    started = time.perf_counter()
    report = once(
        benchmark,
        lambda: merge_artifacts(
            shard_dirs, str(tmp_path / "merged"), name="bench"
        ),
    )
    merge_wall = time.perf_counter() - started

    assert len(report.results) == len(specs)
    for kind in ("results", "summary", "json"):
        with open(serial[kind]) as a, open(report.paths[kind]) as b:
            assert a.read() == b.read()

    rows = [
        ["cells", len(specs)],
        ["serial wall (s)", round(serial_wall, 3)],
        ["4-shard wall (s)", round(sharded_wall, 3)],
        ["merge wall (s)", round(merge_wall, 3)],
        ["merge / serial", round(merge_wall / serial_wall, 3)],
    ]
    print()
    print(
        render_table(
            ["quantity", "value"],
            rows,
            title="Shard/merge orchestration overhead (stock payments grid)",
        )
    )
    # Merging re-reads records and rewrites artifacts; it must stay a
    # small fraction of actually running the scenarios.
    assert merge_wall < max(serial_wall, 0.5)


@pytest.mark.slow
def test_bench_default_protocol_block(benchmark):
    """The stock grid's 16/64-node convergence block: each scenario
    reaches the oracle-verified fixed point in seconds on the
    incremental engine (the reason the stock grid now carries it)."""
    sweep = default_sweep(seeds=1, protocol_seeds=1)
    protocol = [s for s in sweep.scenarios if s.probe == "convergence"]
    assert [s.size for s in protocol] == [16, 64]

    results = once(
        benchmark, lambda: SweepRunner(protocol, workers=1).run()
    )
    assert all(r.ok for r in results)
    rows = [
        [
            r.spec.size,
            r.values["convergence_events"],
            r.values["messages"],
            round(r.wall_time, 2),
        ]
        for r in results
    ]
    print()
    print(
        render_table(
            ["nodes", "events", "messages", "wall (s)"],
            rows,
            title="Stock-grid protocol block (convergence probe)",
        )
    )
    by_size = {r.spec.size: r for r in results}
    assert by_size[64].wall_time < 30.0
