"""E9 — Propositions 1 and 2, validated by enumeration.

Proposition 1: IC + CC + AC (same equilibrium) => faithful.
Proposition 2: strategyproof center + strong-CC + strong-AC => faithful.

The harness checks both implications on (a) exhaustively enumerated
synthetic mechanisms over a grid of per-class deviation gains, and
(b) the real routing mechanism.  Constructed counterexamples (a
non-strategyproof naive-pricing center; a joint-deviation leak) must
be correctly rejected.
"""

import itertools

from repro.analysis import render_table, routing_distributed_mechanism
from repro.mechanism import (
    DistributedMechanism,
    DistributedStrategy,
    MechanismRun,
    TypeProfile,
    check_ex_post_nash,
    proposition1_verdict,
)
from repro.specs import ActionClass
from repro.workloads import ring_graph, uniform_all_pairs

IR = ActionClass.INFORMATION_REVELATION
MP = ActionClass.MESSAGE_PASSING
COMP = ActionClass.COMPUTATION

SUGGESTED = DistributedStrategy(name="suggested")
STRATEGIES = (
    SUGGESTED,
    DistributedStrategy(name="lie", deviation_classes=frozenset({IR})),
    DistributedStrategy(name="drop", deviation_classes=frozenset({MP})),
    DistributedStrategy(name="corrupt", deviation_classes=frozenset({COMP})),
    DistributedStrategy(
        name="joint", deviation_classes=frozenset({MP, COMP})
    ),
)


def synthetic_mechanism(gains):
    def engine(assignment, types):
        return MechanismRun(
            utilities={
                agent: 10.0 + gains.get(strategy.name, 0.0)
                for agent, strategy in assignment.items()
            }
        )

    return DistributedMechanism(
        engine,
        {"a": STRATEGIES, "b": STRATEGIES},
        {"a": SUGGESTED, "b": SUGGESTED},
    )


def enumerate_implication_grid():
    """Check Prop 1's implication over a grid of deviation payoffs.

    For every assignment of gains in {-1, 0, +1} to the four deviation
    strategies, the verdict's premise/conclusion bookkeeping must be
    internally consistent: whenever IC, CC and AC hold over the *full*
    strategy space (joint deviations included), the suggested profile
    is an ex post Nash equilibrium.
    """
    profiles = [TypeProfile({"a": 0, "b": 0})]
    checked = 0
    confirmed = 0
    for combo in itertools.product((-1.0, 0.0, 1.0), repeat=4):
        gains = dict(zip(("lie", "drop", "corrupt", "joint"), combo))
        mechanism = synthetic_mechanism(gains)
        verdict = proposition1_verdict(mechanism, profiles)
        full = check_ex_post_nash(mechanism, profiles)
        checked += 1
        # Internal consistency: verdict.faithful iff full check holds.
        assert verdict.faithful == full.holds
        # The implication direction with the strong reading of the
        # premise: all catalogued deviations unprofitable => faithful.
        if all(gain <= 0 for gain in combo):
            assert verdict.faithful
            confirmed += 1
        # Counterexample direction: any profitable deviation anywhere
        # must defeat faithfulness.
        if any(gain > 0 for gain in combo):
            assert not verdict.faithful
    return checked, confirmed


def test_bench_proposition1_grid(benchmark):
    checked, confirmed = benchmark.pedantic(
        enumerate_implication_grid, rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["mechanisms enumerated", "faithful instances confirmed"],
            [[checked, confirmed]],
            title="E9: Proposition 1 implication grid (3^4 mechanisms)",
        )
    )
    assert checked == 81


def test_bench_proposition2_routing(benchmark):
    """Prop 2's premises and conclusion on the real routing stack."""
    import random

    graph = ring_graph(4, random.Random(11))
    traffic = uniform_all_pairs(graph)

    def verdict():
        from repro.mechanism import (
            check_ic,
            check_strong_ac,
            check_strong_cc,
        )

        dm = routing_distributed_mechanism(
            graph,
            traffic,
            deviations=(
                "cost-lie",
                "copy-drop",
                "copy-alter",
                "payment-underreport",
                "joint-copy-alter-and-understate",
            ),
        )
        types = [TypeProfile({n: graph.cost(n) for n in graph.nodes})]
        return (
            check_ic(dm, types),
            check_strong_cc(dm, types),
            check_strong_ac(dm, types),
            check_ex_post_nash(dm, types),
        )

    ic, strong_cc, strong_ac, full = benchmark.pedantic(
        verdict, rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["property", "holds", "deviations checked", "max gain"],
            [
                ["IC", ic.holds, ic.deviations_checked, ic.max_gain],
                ["strong-CC", strong_cc.holds,
                 strong_cc.deviations_checked, strong_cc.max_gain],
                ["strong-AC", strong_ac.holds,
                 strong_ac.deviations_checked, strong_ac.max_gain],
                ["faithful (ex post Nash)", full.holds,
                 full.deviations_checked, full.max_gain],
            ],
            float_digits=4,
            title="E9b: Proposition 2 on the faithful routing mechanism",
        )
    )
    assert ic.holds and strong_cc.holds and strong_ac.holds and full.holds
