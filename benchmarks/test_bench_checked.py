"""Checked-network convergence: shared replay kernel vs per-neighbour.

Reproduces: the checker overhead discussion of Sections 3.9/4.3
(PODC'04).  A *checked* network is a fully mirrored faithful
construction — every node replays all of its neighbours — which is the
paper's actual deployment shape and, before the shared replay kernel,
the repository's scaling bottleneck: each of a principal's k checkers
replayed the identical broadcast stream independently, ~O(deg²)
redundant relaxations per network.

Three gates:

* a *dedup gate* (default tier): on the same graph, the shared kernel
  must do strictly fewer checker-side relaxations than the
  per-neighbour oracle path, with bit-identical digests and zero flags
  either way — a counter comparison, not a wall-clock race;
* a *coalescing gate* (default tier): checker-copy traffic is counted
  per batch bundle, and must land strictly below the per-copy message
  count the pre-coalescing implementation would have produced (the
  ``uncoalesced_copy_sends`` ledger), so the paper-facing
  message-complexity curve reflects coalesced batches;
* a *scale gate*: checked 64-node convergence, verified against both
  the Dijkstra oracle and the pure-kernel fixed point, inside the
  ten-second acceptance bound; 128 nodes runs in the default tier on
  counter gates only, and 256 nodes extends the curve behind the
  ``slow`` marker (nightly CI runs ``-m slow``).
"""

import gc
import os
import random
import time

import pytest

from repro.analysis import render_table
from repro.faithful import run_checked_construction, verify_checked_network
from repro.faithful.node import KIND_CHECKER_COPY
from repro.routing import verify_against_kernel
from repro.workloads import random_biconnected_graph

#: The checked 64-node acceptance number: the shared-kernel run takes
#: ~9 s standalone on the development machine (147 s per-neighbour).
ACCEPTANCE_64 = 10.0
#: The tier gate adds 50% headroom on top: late in a pytest session
#: the same run costs ~1-2 s more (fragmented heap, warmed caches), and
#: the regression signal this bound protects is an order-of-magnitude
#: one — losing the dedup puts the run back at minutes, not seconds.
#: REPRO_BENCH_TIME_SCALE widens it further on slower CI runners.
BOUND_64 = 1.5 * ACCEPTANCE_64 * float(os.environ.get("REPRO_BENCH_TIME_SCALE", "1"))

#: Size for the shared-vs-per-neighbour dedup gate (the per-neighbour
#: leg is the expensive one; 24 keeps both legs comfortably inside the
#: default tier's latency budget).
COMPARE_SIZE = 24


def sparse_graph(size, seed=5):
    """AS-like sparse biconnected graph: Hamiltonian cycle + ~2 extra
    chords per node (expected degree ~6), as in the convergence bench."""
    rng = random.Random(seed * 100 + size)
    return random_biconnected_graph(
        size, rng, extra_edge_prob=4.0 / (size - 1)
    )


def assert_copies_coalesced(checked):
    """The per-batch (not per-copy) message-count gate.

    ``uncoalesced_copy_sends`` is what per-copy forwarding would have
    transmitted (one message per forwarded copy per checker); the
    actual checker-copy message count must sit strictly below it on
    any batched run, or the coalescing has silently stopped working
    and the message-complexity curve is inflated again.
    """
    copy_messages = checked.simulator.metrics.messages_of_kind(
        KIND_CHECKER_COPY
    )
    uncoalesced = checked.metrics["uncoalesced_copy_sends"]
    assert 0 < copy_messages < uncoalesced
    return copy_messages, uncoalesced


def run_checked(graph, shared):
    # Freeze the suite's accumulated heap out of the cyclic collector:
    # a checked run allocates millions of short-lived tuples, and gen-2
    # collections over unrelated long-lived objects would otherwise
    # dominate the measured wall time late in a pytest session.
    gc.collect()
    gc.freeze()
    started = time.perf_counter()
    try:
        checked = run_checked_construction(graph, shared_checking=shared)
    finally:
        elapsed = time.perf_counter() - started
        gc.unfreeze()
    return elapsed, checked


def test_bench_checked_convergence_64(benchmark):
    """Scale gate: checked 64-node convergence in the default tier.

    The run is deterministic; the wall clock is not.  A first attempt
    that misses the bound is re-timed once and the better time gates,
    so a transient CPU burst on a shared machine cannot fail the tier
    while a genuine engine regression still does.
    """
    graph = sparse_graph(64, seed=1)
    elapsed, checked = benchmark.pedantic(
        lambda: run_checked(graph, shared=True), rounds=1, iterations=1
    )
    if elapsed >= BOUND_64:
        retry_elapsed, checked = run_checked(graph, shared=True)
        elapsed = min(elapsed, retry_elapsed)
    verify_checked_network(graph, checked)
    verify_against_kernel(graph, checked.nodes)
    print()
    print(
        render_table(
            ["n", "edges", "seconds", "phase-2 ev", "checker comps",
             "shared hits", "rows ingested"],
            [[64, len(graph.edges), round(elapsed, 3),
              checked.phase2_events,
              checked.metrics["total_checker_computations"],
              checked.kernel_stats.shared_hits,
              checked.kernel_stats.rows_ingested]],
            title="Checked 64-node convergence (shared kernel, "
            "oracle + kernel verified)",
        )
    )
    assert not checked.flags
    assert_copies_coalesced(checked)
    assert elapsed < BOUND_64


def test_bench_shared_vs_per_neighbour(benchmark):
    """Dedup gate: sharing must beat per-neighbour replay on counters."""
    graph = sparse_graph(COMPARE_SIZE)

    def run():
        shared_s, shared = run_checked(graph, shared=True)
        private_s, private = run_checked(graph, shared=False)
        return shared_s, shared, private_s, private

    shared_s, shared, private_s, private = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    for checked in (shared, private):
        verify_checked_network(graph, checked)
    # Digest parity is bit-exact across modes.
    for node_id in shared.nodes:
        assert (
            shared.nodes[node_id].comp.full_digest()
            == private.nodes[node_id].comp.full_digest()
        )
    shared_comps = shared.metrics["total_checker_computations"]
    private_comps = private.metrics["total_checker_computations"]
    stats = shared.kernel_stats
    print()
    print(
        render_table(
            ["mode", "seconds", "checker comps", "shared hits", "forks"],
            [
                ["shared", round(shared_s, 3), shared_comps,
                 stats.shared_hits, stats.forks],
                ["per-neighbour", round(private_s, 3), private_comps, 0, 0],
                ["speedup", round(private_s / max(shared_s, 1e-9), 1),
                 round(private_comps / max(shared_comps, 1), 1), "", ""],
            ],
            title=f"Checked {COMPARE_SIZE}-node construction: "
            f"shared kernel vs per-neighbour replay",
        )
    )
    # Deterministic gate: the dedup eliminates checker relaxations.
    # (The former wall-clock race shared_s < private_s is gone — on a
    # loaded runner it measured scheduler noise; the counters are the
    # regression signal and they are exact.)
    assert shared_comps < private_comps
    assert stats.shared_hits > 0 and stats.forks == 0
    # Coalescing gate: copy traffic is per-batch in both modes, and
    # the copy stream is a protocol property, identical whether the
    # checkers share a kernel or replay per-neighbour.
    shared_copy_msgs, _ = assert_copies_coalesced(shared)
    private_copy_msgs, _ = assert_copies_coalesced(private)
    assert shared_copy_msgs == private_copy_msgs
    assert (
        shared.metrics["total_messages"] == private.metrics["total_messages"]
    )


def test_bench_checked_convergence_128():
    """Default-tier 128-node checked convergence, counter-gated.

    No wall-clock bound: the run is long on a loaded single-core
    runner, and the regressions this cell guards — lost sharing
    (forks), lost coalescing (per-copy messaging), detection false
    positives — are all exact counters.
    """
    graph = sparse_graph(128)
    elapsed, checked = run_checked(graph, shared=True)
    verify_checked_network(graph, checked)
    copy_msgs, uncoalesced = assert_copies_coalesced(checked)
    print()
    print(
        render_table(
            ["n", "edges", "seconds", "phase-2 ev", "checker comps",
             "shared hits", "copy msgs", "uncoalesced"],
            [[128, len(graph.edges), round(elapsed, 3),
              checked.phase2_events,
              checked.metrics["total_checker_computations"],
              checked.kernel_stats.shared_hits,
              copy_msgs, uncoalesced]],
            title="Checked 128-node convergence (default tier)",
        )
    )
    assert not checked.flags
    assert checked.kernel_stats.forks == 0
    assert checked.kernel_stats.shared_hits > 0


@pytest.mark.slow
def test_bench_checked_convergence_256():
    """Slow-tier extension: checked 256-node convergence (nightly)."""
    graph = sparse_graph(256)
    elapsed, checked = run_checked(graph, shared=True)
    verify_checked_network(graph, checked)
    copy_msgs, uncoalesced = assert_copies_coalesced(checked)
    print()
    print(
        render_table(
            ["n", "edges", "seconds", "phase-2 ev", "checker comps",
             "shared hits", "copy msgs", "uncoalesced"],
            [[256, len(graph.edges), round(elapsed, 3),
              checked.phase2_events,
              checked.metrics["total_checker_computations"],
              checked.kernel_stats.shared_hits,
              copy_msgs, uncoalesced]],
            title="Checked 256-node convergence (slow tier)",
        )
    )
    assert not checked.flags
    assert checked.kernel_stats.forks == 0
