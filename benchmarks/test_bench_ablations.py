"""Ablations and Section-5 interactions (design-choice experiments).

Three experiments on the knobs DESIGN.md calls out:

* **A1 — checker flags are necessary.** With the bank reduced to
  digest comparison only (flags ignored), update *suppression* escapes:
  a principal that computes correctly but never announces keeps its own
  tables and every mirror in perfect agreement, so only the checkers'
  pending-broadcast flags can catch it.
* **A2 — checkpoint cost of the restart budget.** A persistent
  construction deviant forces one full phase re-run per allowed
  restart; construction work scales linearly in the budget (the
  "added complexity" of Section 3.9's checkpoints under attack).
* **A3 — Section 5: omission faults cause false punishment.** An
  obedient node with a lossy channel is flagged by the same machinery
  that catches rational deviants; the false-detection probability
  grows with the loss rate.
"""

import random

from repro.analysis import render_table
from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    faithful_deviant_factory,
)
from repro.sim import OmissionAdapter


def test_bench_ablation_flags_necessary(benchmark, fig1, fig1_traffic):
    spec = DEVIATION_CATALOGUE["route-suppress"]

    def run_both():
        with_flags = FaithfulFPSSProtocol(
            fig1,
            fig1_traffic,
            node_factory=faithful_deviant_factory(spec, "C"),
            bank_honors_flags=True,
        ).run()
        without_flags = FaithfulFPSSProtocol(
            fig1,
            fig1_traffic,
            node_factory=faithful_deviant_factory(spec, "C"),
            bank_honors_flags=False,
        ).run()
        return with_flags, without_flags

    with_flags, without_flags = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["bank configuration", "suppression detected", "certified"],
            [
                ["digests + checker flags", with_flags.detection.detected_any,
                 with_flags.progressed],
                ["digests only (ablated)",
                 without_flags.detection.detected_any,
                 without_flags.progressed],
            ],
            title="A1: update suppression vs the bank's evidence sources",
        )
    )
    assert with_flags.detection.detected_any
    assert not without_flags.detection.detected_any  # the escape


def test_bench_ablation_restart_budget(benchmark, fig1, fig1_traffic):
    spec = DEVIATION_CATALOGUE["false-route-announce"]

    def sweep():
        rows = []
        for budget in (0, 1, 2, 3):
            result = FaithfulFPSSProtocol(
                fig1,
                fig1_traffic,
                node_factory=faithful_deviant_factory(spec, "C"),
                max_restarts=budget,
            ).run()
            rows.append(
                [budget, result.detection.restarts,
                 result.construction_events, result.progressed]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["restart budget", "restarts", "construction events", "certified"],
            rows,
            title="A2: cost of checkpoints under a persistent deviant",
        )
    )
    events = [row[2] for row in rows]
    assert all(later > earlier for earlier, later in zip(events, events[1:]))
    assert not any(row[3] for row in rows)  # never certifies


def test_bench_section5_omission_false_punish(benchmark, fig1, fig1_traffic):
    """False-detection rate of an OBEDIENT but lossy node."""

    def measure(probs=(0.0, 0.05, 0.2, 0.5), trials=4):
        rows = []
        for prob in probs:
            detected = 0
            for trial in range(trials):
                def install(node, prob=prob, trial=trial):
                    if node.node_id == "C":
                        OmissionAdapter(
                            node,
                            random.Random(trial * 7 + 1),
                            send_drop_prob=prob,
                        )

                result = FaithfulFPSSProtocol(
                    fig1, fig1_traffic, node_adapters=install
                ).run()
                detected += bool(result.detection.detected_any)
            rows.append([prob, detected / trials])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["send-omission probability", "false-detection rate"],
            rows,
            title="A3: Section 5 — omission faults on an obedient node",
        )
    )
    assert rows[0][1] == 0.0  # lossless channel: never falsely flagged
    assert rows[-1][1] == 1.0  # heavy loss: always (falsely) punished
