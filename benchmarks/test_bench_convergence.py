"""E8 — Construction-phase convergence (Griffin-Wilfong premise).

FPSS assumes the static abstract-BGP model, under which both
construction phases converge.  Measures events/messages to quiescence
for growing random biconnected graphs and verifies the converged
tables against the centralized oracle on each instance.  Expected
shape: always converges; work grows polynomially with n.
"""

import random

from repro.analysis import render_table
from repro.routing import run_plain_fpss, verify_against_oracle
from repro.workloads import random_biconnected_graph

SIZES = (4, 6, 8, 10)


def measure_convergence(sizes=SIZES, seed=5):
    rows = []
    for size in sizes:
        rng = random.Random(seed * 100 + size)
        graph = random_biconnected_graph(size, rng)
        _, nodes, stats = run_plain_fpss(graph)
        verify_against_oracle(graph, nodes)
        rows.append(
            {
                "size": size,
                "phase1_events": stats.phase1_events,
                "phase2_events": stats.phase2_events,
                "messages": stats.total_messages,
                "computations": stats.total_computations,
            }
        )
    return rows


def test_bench_convergence(benchmark):
    rows = benchmark.pedantic(measure_convergence, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["n", "phase-1 events", "phase-2 events", "messages", "computations"],
            [
                [r["size"], r["phase1_events"], r["phase2_events"],
                 r["messages"], r["computations"]]
                for r in rows
            ],
            title="E8: events to quiescence (oracle-verified each run)",
        )
    )

    # Convergence always happened (verify_against_oracle would raise)
    # and work grows with n but stays polynomial: crude super-linearity
    # guard comparing growth against n^4.
    for smaller, larger in zip(rows, rows[1:]):
        assert larger["phase2_events"] > smaller["phase2_events"]
        ratio = larger["phase2_events"] / smaller["phase2_events"]
        size_ratio = larger["size"] / smaller["size"]
        assert ratio < size_ratio ** 4


def test_bench_figure1_convergence(benchmark, fig1):
    """Single-instance convergence timing on the paper's network."""

    def run():
        _, nodes, stats = run_plain_fpss(fig1)
        return nodes, stats

    nodes, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    verify_against_oracle(fig1, nodes)
    assert stats.phase1_events > 0
