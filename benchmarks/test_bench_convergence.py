"""E8 — Construction-phase convergence (Griffin-Wilfong premise).

FPSS assumes the static abstract-BGP model, under which both
construction phases converge.  These benchmarks measure the protocol
engine's convergence work on sparse AS-like random biconnected graphs
(constant expected extra degree, matching real interdomain topologies,
instead of the default quadratic chord densification) and verify every
converged fixed point against the centralized oracle.

Two engines are measured:

* **incremental** (the default): batched delivery plus delta
  recomputation — one relaxation per node per flooding round, work
  proportional to actual table churn;
* **legacy**: per-message delivery with a full-table rescan per update
  (:class:`~repro.routing.fpss.FullRecomputeFPSSNode`,
  ``batch_delivery=False``) — the engine this repository shipped
  before the incremental rework, kept as the "before" leg of the
  curve.

The incremental curve runs 16/32/64 in the default tier — with the
64-node acceptance bound of five seconds asserted — and extends to 96
nodes behind the ``slow`` marker.  The legacy engine leaves the
default tier at 16 nodes (~60 s at 32 already), which is exactly the
scaling wall the incremental engine removes.
"""

import os
import random
import time

import pytest

from repro.analysis import render_table
from repro.routing import (
    FullRecomputeFPSSNode,
    run_plain_fpss,
    verify_against_oracle,
)
from repro.workloads import random_biconnected_graph

#: Incremental-engine curve (default tier) and its slow-tier extension.
SIZES = (16, 32, 64)
SLOW_SIZES = (96,)
#: Sizes small enough for the legacy engine's before/after comparison.
LEGACY_SIZES = (8, 12, 16)

#: Acceptance bound for the 64-node incremental run (seconds), on the
#: development machine.  CI sets REPRO_BENCH_TIME_SCALE to widen the
#: bound for slower shared runners without losing the regression gate.
BOUND_64 = 5.0 * float(os.environ.get("REPRO_BENCH_TIME_SCALE", "1"))


def sparse_graph(size, seed=5):
    """AS-like sparse biconnected graph: Hamiltonian cycle + ~2 extra
    chords per node (expected degree ~6) regardless of size."""
    rng = random.Random(seed * 100 + size)
    return random_biconnected_graph(
        size, rng, extra_edge_prob=4.0 / (size - 1)
    )


def run_engine(graph, legacy=False):
    """One timed convergence run; returns (wall seconds, stats, nodes)."""
    kwargs = {}
    if legacy:
        kwargs = {
            "node_factory": lambda node_id, cost: FullRecomputeFPSSNode(
                node_id, cost
            ),
            "batch_delivery": False,
        }
    started = time.perf_counter()
    _, nodes, stats = run_plain_fpss(graph, **kwargs)
    elapsed = time.perf_counter() - started
    return elapsed, stats, nodes


def measure_curve(sizes, legacy=False, seed=5):
    rows = []
    for size in sizes:
        graph = sparse_graph(size, seed=seed)
        elapsed, stats, nodes = run_engine(graph, legacy=legacy)
        verify_against_oracle(graph, nodes)
        rows.append(
            {
                "size": size,
                "edges": len(graph.edges),
                "seconds": elapsed,
                "phase1_events": stats.phase1_events,
                "phase2_events": stats.phase2_events,
                "messages": stats.total_messages,
                "computations": stats.total_computations,
            }
        )
    return rows


def print_curve(rows, title):
    print()
    print(
        render_table(
            ["n", "edges", "seconds", "phase-1 ev", "phase-2 ev",
             "messages", "computations"],
            [
                [r["size"], r["edges"], round(r["seconds"], 3),
                 r["phase1_events"], r["phase2_events"],
                 r["messages"], r["computations"]]
                for r in rows
            ],
            title=title,
        )
    )


def test_bench_convergence(benchmark):
    """Incremental engine at 16/32/64 (oracle-verified, 64 < 5 s)."""
    rows = benchmark.pedantic(
        lambda: measure_curve(SIZES), rounds=1, iterations=1
    )
    print_curve(rows, "E8: incremental engine, events to quiescence")

    # Work grows with n (messages are a batching-independent measure),
    # convergence always happened (verify_against_oracle would raise),
    # and the 64-node run meets the default-tier latency acceptance.
    for smaller, larger in zip(rows, rows[1:]):
        assert larger["messages"] > smaller["messages"]
    by_size = {r["size"]: r for r in rows}
    assert by_size[64]["seconds"] < BOUND_64


def test_bench_convergence_before_after(benchmark):
    """Legacy (per-message full rescan) vs incremental, same graphs.

    Both engines converge to the identical oracle-verified fixed
    point; the incremental engine does so with strictly fewer
    mechanism computations, and the gap widens with n — the before /
    after curve of the engine rework.
    """

    def run():
        results = []
        for size in LEGACY_SIZES:
            graph = sparse_graph(size)
            legacy_s, legacy_stats, legacy_nodes = run_engine(
                graph, legacy=True
            )
            incr_s, incr_stats, incr_nodes = run_engine(graph)
            verify_against_oracle(graph, legacy_nodes)
            verify_against_oracle(graph, incr_nodes)
            for source in graph.nodes:
                assert (
                    legacy_nodes[source].routing_table().as_dict()
                    == incr_nodes[source].routing_table().as_dict()
                )
            results.append(
                {
                    "size": size,
                    "legacy_s": legacy_s,
                    "incr_s": incr_s,
                    "legacy_comps": legacy_stats.total_computations,
                    "incr_comps": incr_stats.total_computations,
                }
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["n", "legacy s", "incremental s", "speedup",
             "legacy comps", "incremental comps"],
            [
                [r["size"], round(r["legacy_s"], 3), round(r["incr_s"], 3),
                 round(r["legacy_s"] / max(r["incr_s"], 1e-9), 1),
                 r["legacy_comps"], r["incr_comps"]]
                for r in results
            ],
            title="E8: legacy vs incremental engine (identical fixed points)",
        )
    )
    for r in results:
        assert r["incr_comps"] < r["legacy_comps"]
    # The gap widens with size: the engines' computation ratio grows.
    ratios = [r["legacy_comps"] / r["incr_comps"] for r in results]
    assert ratios == sorted(ratios)


@pytest.mark.slow
def test_bench_convergence_96():
    """Slow-tier extension of the incremental curve."""
    rows = measure_curve(SLOW_SIZES)
    print_curve(rows, "E8: incremental engine, slow tier")
    assert rows[0]["messages"] > 0


def test_bench_figure1_convergence(benchmark, fig1):
    """Single-instance convergence timing on the paper's network."""

    def run():
        _, nodes, stats = run_plain_fpss(fig1)
        return nodes, stats

    nodes, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    verify_against_oracle(fig1, nodes)
    assert stats.phase1_events > 0
