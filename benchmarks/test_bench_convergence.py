"""E8 — Construction-phase convergence (Griffin-Wilfong premise).

FPSS assumes the static abstract-BGP model, under which both
construction phases converge.  These benchmarks measure the protocol
engine's convergence work on sparse AS-like random biconnected graphs
(constant expected extra degree, matching real interdomain topologies,
instead of the default quadratic chord densification) and verify every
converged fixed point against the centralized oracle.

Two engines are measured:

* **incremental** (the default): batched delivery plus delta
  recomputation — one relaxation per node per flooding round, work
  proportional to actual table churn;
* **legacy**: per-message delivery with a full-table rescan per update
  (:class:`~repro.routing.fpss.FullRecomputeFPSSNode`,
  ``batch_delivery=False``) — the engine this repository shipped
  before the incremental rework, kept as the "before" leg of the
  curve.

The incremental curve runs 16/32/64 plus a single 128-node cell in the
default tier and extends to 96 and 256 nodes behind the ``slow``
marker.  Regression gates are counter-based (messages and mechanism
computations are exact for a given graph; wall seconds on a shared
runner are not): the work curve must stay within the expected
near-quadratic envelope, which the legacy engine — leaving the default
tier at 16 nodes already — exceeds immediately.
"""

import math
import random
import time

import pytest

from repro.analysis import render_table
from repro.routing import (
    FullRecomputeFPSSNode,
    run_plain_fpss,
    verify_against_oracle,
)
from repro.workloads import random_biconnected_graph

#: Incremental-engine curve (default tier) and its slow-tier extension.
SIZES = (16, 32, 64)
SLOW_SIZES = (96, 256)
#: Sizes small enough for the legacy engine's before/after comparison.
LEGACY_SIZES = (8, 12, 16)

#: Counter envelope for one size doubling on the sparse-graph family:
#: messages and computations grow ~4x per doubling (quadratic in n at
#: constant expected degree).  A factor of 8 flags a lost-incrementality
#: regression (the legacy engine exceeds it immediately) while leaving
#: room for legitimate engine changes; counters are exact per graph, so
#: this gate cannot flake with machine load the way wall bounds did.
DOUBLING_FACTOR = 8.0


def sparse_graph(size, seed=5):
    """AS-like sparse biconnected graph: Hamiltonian cycle + ~2 extra
    chords per node (expected degree ~6) regardless of size."""
    rng = random.Random(seed * 100 + size)
    return random_biconnected_graph(
        size, rng, extra_edge_prob=4.0 / (size - 1)
    )


def run_engine(graph, legacy=False):
    """One timed convergence run; returns (wall seconds, stats, nodes)."""
    kwargs = {}
    if legacy:
        kwargs = {
            "node_factory": lambda node_id, cost: FullRecomputeFPSSNode(
                node_id, cost
            ),
            "batch_delivery": False,
        }
    started = time.perf_counter()
    _, nodes, stats = run_plain_fpss(graph, **kwargs)
    elapsed = time.perf_counter() - started
    return elapsed, stats, nodes


def measure_curve(sizes, legacy=False, seed=5):
    rows = []
    for size in sizes:
        graph = sparse_graph(size, seed=seed)
        elapsed, stats, nodes = run_engine(graph, legacy=legacy)
        verify_against_oracle(graph, nodes)
        rows.append(
            {
                "size": size,
                "edges": len(graph.edges),
                "seconds": elapsed,
                "phase1_events": stats.phase1_events,
                "phase2_events": stats.phase2_events,
                "messages": stats.total_messages,
                "computations": stats.total_computations,
            }
        )
    return rows


def print_curve(rows, title):
    print()
    print(
        render_table(
            ["n", "edges", "seconds", "phase-1 ev", "phase-2 ev",
             "messages", "computations"],
            [
                [r["size"], r["edges"], round(r["seconds"], 3),
                 r["phase1_events"], r["phase2_events"],
                 r["messages"], r["computations"]]
                for r in rows
            ],
            title=title,
        )
    )


def assert_counter_envelope(rows):
    """Work grows with n but stays inside the doubling envelope."""
    for smaller, larger in zip(rows, rows[1:]):
        assert larger["messages"] > smaller["messages"]
        doublings = math.log2(larger["size"] / smaller["size"])
        bound = DOUBLING_FACTOR ** doublings
        assert larger["messages"] < bound * smaller["messages"]
        assert larger["computations"] < bound * smaller["computations"]


def test_bench_convergence(benchmark):
    """Incremental engine at 16/32/64 (oracle-verified, counter-gated).

    The former five-second wall bound on the 64-node run is replaced
    by the counter envelope: convergence always happened
    (verify_against_oracle would raise) and the per-doubling work
    growth is exact and load-independent.
    """
    rows = benchmark.pedantic(
        lambda: measure_curve(SIZES), rounds=1, iterations=1
    )
    print_curve(rows, "E8: incremental engine, events to quiescence")
    assert_counter_envelope(rows)


def test_bench_convergence_128():
    """Default-tier 128-node plain convergence (oracle-verified).

    One cell, counter-gated against the measured 64-node curve point
    by the same doubling envelope; no wall bound.
    """
    rows = measure_curve(SIZES[-1:] + (128,))
    print_curve(rows, "E8: incremental engine, 128-node default-tier cell")
    assert_counter_envelope(rows)


def test_bench_convergence_before_after(benchmark):
    """Legacy (per-message full rescan) vs incremental, same graphs.

    Both engines converge to the identical oracle-verified fixed
    point; the incremental engine does so with strictly fewer
    mechanism computations, and the gap widens with n — the before /
    after curve of the engine rework.
    """

    def run():
        results = []
        for size in LEGACY_SIZES:
            graph = sparse_graph(size)
            legacy_s, legacy_stats, legacy_nodes = run_engine(
                graph, legacy=True
            )
            incr_s, incr_stats, incr_nodes = run_engine(graph)
            verify_against_oracle(graph, legacy_nodes)
            verify_against_oracle(graph, incr_nodes)
            for source in graph.nodes:
                assert (
                    legacy_nodes[source].routing_table().as_dict()
                    == incr_nodes[source].routing_table().as_dict()
                )
            results.append(
                {
                    "size": size,
                    "legacy_s": legacy_s,
                    "incr_s": incr_s,
                    "legacy_comps": legacy_stats.total_computations,
                    "incr_comps": incr_stats.total_computations,
                }
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["n", "legacy s", "incremental s", "speedup",
             "legacy comps", "incremental comps"],
            [
                [r["size"], round(r["legacy_s"], 3), round(r["incr_s"], 3),
                 round(r["legacy_s"] / max(r["incr_s"], 1e-9), 1),
                 r["legacy_comps"], r["incr_comps"]]
                for r in results
            ],
            title="E8: legacy vs incremental engine (identical fixed points)",
        )
    )
    for r in results:
        assert r["incr_comps"] < r["legacy_comps"]
    # The gap widens with size: the engines' computation ratio grows.
    ratios = [r["legacy_comps"] / r["incr_comps"] for r in results]
    assert ratios == sorted(ratios)


@pytest.mark.slow
def test_bench_convergence_slow_tier():
    """Slow-tier extension of the incremental curve (96 and 256)."""
    rows = measure_curve(SLOW_SIZES)
    print_curve(rows, "E8: incremental engine, slow tier")
    assert_counter_envelope(rows)


def test_bench_figure1_convergence(benchmark, fig1):
    """Single-instance convergence timing on the paper's network."""

    def run():
        _, nodes, stats = run_plain_fpss(fig1)
        return nodes, stats

    nodes, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    verify_against_oracle(fig1, nodes)
    assert stats.phase1_events > 0
