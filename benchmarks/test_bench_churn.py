"""E12 — Reconvergence under churn: incremental repair vs rebuild.

The dynamic-topology engine's economic premise: repairing a converged
network after a topology event must cost *less* than reconstructing it
from scratch, or the recomputation protocol the paper's faithfulness
claims assume would be pointless.  These benchmarks measure the
reconvergence message cost and wall time of seeded churn schedules on
sparse AS-like graphs, with the epoch-equivalence oracle asserting
after every epoch that the repaired tables are bit-identical to a
fresh fixed point — the regression gate on both correctness and cost.
"""

import os
import random
import time

import pytest

from repro.analysis import render_table
from repro.routing.dynamic import run_dynamic_fpss
from repro.sim.churn import EVENT_KINDS, random_churn_schedule
from repro.workloads import random_biconnected_graph, uniform_all_pairs

#: Default-tier cell, and the nightly slow-tier extension.
SIZE, EPOCHS = 32, 3
SLOW_SIZE, SLOW_EPOCHS = 64, 4

#: Acceptance bound for the default-tier reconvergence run (seconds)
#: on the development machine; CI widens via REPRO_BENCH_TIME_SCALE.
BOUND_32 = 10.0 * float(os.environ.get("REPRO_BENCH_TIME_SCALE", "1"))


def sparse_graph(size, seed=5):
    """AS-like sparse biconnected graph (constant expected extra degree)."""
    rng = random.Random(seed * 100 + size)
    return random_biconnected_graph(
        size, rng, extra_edge_prob=4.0 / (size - 1)
    )


def run_churn_cell(size, epochs, seed=5):
    """One oracle-verified churn run; returns its measured row."""
    graph = sparse_graph(size, seed=seed)
    schedule = random_churn_schedule(
        graph,
        random.Random(size),
        epochs=epochs,
        events_per_epoch=2,
        kinds=EVENT_KINDS,
        require="connected",
    )
    started = time.perf_counter()
    run = run_dynamic_fpss(
        graph, schedule, traffic=lambda g: uniform_all_pairs(g)
    )
    elapsed = time.perf_counter() - started
    return {
        "size": size,
        "epochs": len(run.epochs),
        "events": sum(len(r.events) for r in run.epochs),
        "seconds": elapsed,
        "initial_messages": run.initial_messages,
        "reconvergence_messages": sum(
            r.reconvergence_messages for r in run.epochs
        ),
        "amplification": run.message_amplification,
        "availability": run.availability,
    }


def print_row(row, title):
    print()
    print(
        render_table(
            ["n", "epochs", "events", "seconds", "initial msgs",
             "reconv msgs", "amplification", "availability"],
            [[row["size"], row["epochs"], row["events"],
              round(row["seconds"], 3), row["initial_messages"],
              row["reconvergence_messages"],
              round(row["amplification"], 3), row["availability"]]],
            title=title,
        )
    )


def test_bench_churn_reconvergence(benchmark):
    """32-node, 3-epoch churn cell: oracle-verified, repair beats
    rebuild, and the wall-clock acceptance bound holds."""
    row = benchmark.pedantic(
        lambda: run_churn_cell(SIZE, EPOCHS), rounds=1, iterations=1
    )
    print_row(row, "E12: reconvergence under churn (default tier)")
    assert row["epochs"] == EPOCHS and row["events"] > 0
    # Connected-viable schedules keep every flow routable.
    assert row["availability"] == 1.0
    # The reconvergence-cost gate: repairing after all epochs must stay
    # cheaper than rebuilding from scratch once per epoch (average
    # per-epoch amplification < 1), and within the latency bound.
    assert row["amplification"] < row["epochs"]
    assert row["seconds"] < BOUND_32


@pytest.mark.slow
def test_bench_churn_reconvergence_64():
    """Nightly slow-tier cell: 64 nodes, 4 epochs, oracle on."""
    row = run_churn_cell(SLOW_SIZE, SLOW_EPOCHS)
    print_row(row, "E12: reconvergence under churn (slow tier)")
    assert row["epochs"] == SLOW_EPOCHS
    assert row["availability"] == 1.0
    assert row["amplification"] < row["epochs"]
