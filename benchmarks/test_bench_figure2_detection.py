"""E4 — Figure 2 / Section 4.3: catch-and-punish detection matrix.

Runs every catalogued manipulation (the paper's manipulations 1-4 plus
the execution frauds) by every node of the Figure 1 network against
the faithful specification.  Expected shape:

* detection rate 1.0 over deviations with an observable effect
  (``cost-lie`` is excluded: a consistent type misreport is permitted
  and neutralised by VCG rather than detected);
* the all-obedient baseline is never falsely flagged.
"""

import pytest

from repro.analysis import faithful_deviation_table, render_table
from repro.faithful import DEVIATION_CATALOGUE, FaithfulFPSSProtocol


def run_detection_matrix(graph, traffic):
    return faithful_deviation_table(graph, traffic)


@pytest.mark.slow
def test_bench_figure2_detection_matrix(benchmark, fig1, fig1_traffic):
    table = benchmark.pedantic(
        run_detection_matrix,
        args=(fig1, fig1_traffic),
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, outcomes in sorted(table.by_deviation().items()):
        fired = [o for o in outcomes if o.detected or abs(o.gain) > 1e-9]
        detected = sum(1 for o in fired if o.detected)
        rows.append(
            [
                name,
                len(outcomes),
                len(fired),
                detected,
                max((o.gain for o in outcomes), default=0.0),
            ]
        )
    print()
    print(
        render_table(
            ["manipulation", "runs", "fired", "detected", "max gain"],
            rows,
            title="E4: detection matrix on Figure 1 (deviant x node)",
        )
    )

    assert table.detection_rate(excluding=("cost-lie",)) == 1.0
    assert table.is_faithful()


def test_bench_no_false_positives(benchmark, fig1, fig1_traffic):
    """The obedient baseline certifies with zero flags."""

    def baseline():
        return FaithfulFPSSProtocol(fig1, fig1_traffic).run()

    result = benchmark.pedantic(baseline, rounds=1, iterations=1)
    assert result.progressed
    assert not result.detection.detected_any
    assert result.detection.all_flags == []
