"""Shared helpers for the benchmark/experiment harness.

Every module in this directory regenerates one conceptual artifact of
the paper (see DESIGN.md section 4 for the experiment index).  Each
benchmark both *measures* (via pytest-benchmark) and *verifies* the
paper-expected shape with assertions, and prints the reproduced rows;
run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import pytest

from repro.routing import figure1_graph
from repro.workloads import uniform_all_pairs


@pytest.fixture(scope="session")
def fig1():
    """The paper's Figure 1 network."""
    return figure1_graph()


@pytest.fixture(scope="session")
def fig1_traffic(fig1):
    """Uniform all-pairs traffic on Figure 1."""
    return uniform_all_pairs(fig1)


def once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive callable with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
