"""E5 — Theorem 1: faithful vs plain FPSS deviation-gain comparison.

For each manipulation, compares the deviator's utility gain in the
*plain* protocol (no checkers, trusting settlement) against the same
deviation in the *faithful* extension.  Expected shape: strictly
positive gains exist in plain FPSS (showing the extension is
necessary), and every gain is <= 0 in the faithful extension (Theorem
1), across the paper's network and random biconnected graphs.
"""

import random

import pytest

from repro.analysis import (
    faithful_deviation_table,
    plain_deviation_table,
    render_table,
)
from repro.faithful import DEVIATION_CATALOGUE
from repro.workloads import random_biconnected_graph, uniform_all_pairs

PLAIN_CAPABLE = tuple(
    name for name, spec in DEVIATION_CATALOGUE.items() if spec.plain_capable
)


def run_sweep(fig1, fig1_traffic):
    plain = plain_deviation_table(
        fig1, fig1_traffic, deviations=PLAIN_CAPABLE
    )
    faithful = faithful_deviation_table(
        fig1, fig1_traffic, deviations=PLAIN_CAPABLE
    )
    return plain, faithful


@pytest.mark.slow
def test_bench_faithfulness_sweep_figure1(benchmark, fig1, fig1_traffic):
    plain, faithful = benchmark.pedantic(
        run_sweep, args=(fig1, fig1_traffic), rounds=1, iterations=1
    )

    plain_by = plain.by_deviation()
    faithful_by = faithful.by_deviation()
    rows = []
    for name in PLAIN_CAPABLE:
        plain_max = max(o.gain for o in plain_by[name])
        faithful_max = max(o.gain for o in faithful_by[name])
        rows.append([name, plain_max, faithful_max])
    print()
    print(
        render_table(
            ["manipulation", "best gain (plain FPSS)", "best gain (faithful)"],
            rows,
            title="E5: who profits where (max over deviant nodes, Figure 1)",
        )
    )

    # The extension is necessary: plain FPSS leaks strictly positive
    # gains for several manipulation classes...
    assert plain.max_gain > 1.0
    profitable = {o.deviation for o in plain.profitable}
    assert {"charge-understate", "payment-underreport"} <= profitable
    # ...and sufficient: no deviation profits against the extension.
    assert faithful.is_faithful()


def test_bench_faithfulness_sweep_random_graphs(benchmark):
    """The same comparison over random biconnected topologies."""

    def sweep():
        outcomes = []
        for seed in (3, 17):
            rng = random.Random(seed)
            graph = random_biconnected_graph(5, rng)
            traffic = uniform_all_pairs(graph)
            deviator = graph.nodes[seed % len(graph.nodes)]
            plain = plain_deviation_table(
                graph, traffic, nodes=[deviator],
                deviations=("payment-underreport", "packet-drop"),
            )
            faithful = faithful_deviation_table(
                graph, traffic, nodes=[deviator],
                deviations=("payment-underreport", "packet-drop"),
            )
            outcomes.append((seed, plain.max_gain, faithful.max_gain))
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["seed", "plain max gain", "faithful max gain"],
            outcomes,
            title="E5b: random biconnected graphs",
        )
    )
    for _seed, plain_gain, faithful_gain in outcomes:
        assert plain_gain > 0.0
        assert faithful_gain <= 1e-9
