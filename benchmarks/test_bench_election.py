"""E6 — The Section 3 leader election: naive vs faithful mechanism.

Expected shape: under the naive specification rational cost
overstatement is profitable and the elected leader's true social cost
exceeds the optimum; under the VCG procurement repair truth-telling is
strategyproof and the efficient leader is elected.
"""

import random

from repro.analysis import render_table
from repro.election import (
    naive_election_mechanism,
    optimal_leader,
    social_cost,
    vcg_election_mechanism,
)
from repro.mechanism import (
    TypeProfile,
    TypeSpace,
    audit_strategyproofness,
)


def build_spaces(n, levels=(1.0, 3.0, 5.0, 7.0)):
    return {f"v{i}": TypeSpace(values=levels) for i in range(n)}


def audit_both(n):
    spaces = build_spaces(n)
    naive = audit_strategyproofness(naive_election_mechanism(spaces))
    vcg = audit_strategyproofness(vcg_election_mechanism(spaces))
    return naive, vcg


def test_bench_election_strategyproofness(benchmark):
    naive, vcg = benchmark.pedantic(
        audit_both, args=(3,), rounds=1, iterations=1
    )
    rows = [
        ["naive (serve-most-willing)", naive.is_strategyproof,
         len(naive.violations), naive.max_gain],
        ["faithful (VCG procurement)", vcg.is_strategyproof,
         len(vcg.violations), vcg.max_gain],
    ]
    print()
    print(
        render_table(
            ["mechanism", "strategyproof", "violations", "max lie gain"],
            rows,
            title="E6: leader-election strategyproofness audit (3 nodes)",
        )
    )
    assert not naive.is_strategyproof
    assert vcg.is_strategyproof


def test_bench_election_social_cost(benchmark):
    """Social cost of rational play: naive equilibrium vs VCG truth."""

    def measure(trials=200):
        rng = random.Random(99)
        naive_excess = 0.0
        vcg_excess = 0.0
        spaces_levels = (1.0, 3.0, 5.0, 7.0)
        for _ in range(trials):
            truth = TypeProfile(
                {f"v{i}": rng.choice(spaces_levels) for i in range(5)}
            )
            optimum = social_cost(truth, optimal_leader(truth))
            # Naive rational play: everyone overstates to the max.
            naive_mech = naive_election_mechanism(build_spaces(5, spaces_levels))
            rational = TypeProfile(
                {a: spaces_levels[-1] for a in truth.agents}
            )
            naive_winner = naive_mech.outcome(rational).decision
            naive_excess += social_cost(truth, naive_winner) - optimum
            # VCG truthful play.
            vcg_mech = vcg_election_mechanism(build_spaces(5, spaces_levels))
            vcg_winner = vcg_mech.outcome(truth).decision
            vcg_excess += social_cost(truth, vcg_winner) - optimum
        return naive_excess / trials, vcg_excess / trials

    naive_excess, vcg_excess = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["mechanism", "mean excess social cost"],
            [
                ["naive, rational play", naive_excess],
                ["faithful VCG, truthful play", vcg_excess],
            ],
            title="E6b: social cost of the elected leader vs optimum",
        )
    )
    assert vcg_excess == 0.0
    assert naive_excess > 0.0
