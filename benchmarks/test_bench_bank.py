"""E13 — Settlement at scale: columnar bank and epoch netting.

The batched bank's economic premise: a central bank that settles every
flow with its own transfer record cannot scale past toy networks, so
the columnar engine groups observation rows per flow and the netting
ledger collapses an epoch's obligations into one lump-sum batch
transfer per debtor.  These benchmarks gate the compression, not the
clock: the default tier demands netted output at least 10x smaller
than the per-flow transfer list on a 64-node epoch, and the nightly
tier pushes a million-plus flows through one settle and checks the
batch-transfer count against the principal-pair count.  Every cell
also re-derives net money positions both ways and requires them
bit-identical — compression must never move money.
"""

import csv
import math
import os
import random
import time

import pytest

from repro.analysis import render_table
from repro.faithful import BankNode, net_positions, synthesize_execution_reports
from repro.workloads import random_biconnected_graph, uniform_all_pairs

from conftest import once

#: Default-tier cell, and the nightly slow-tier extension.  The slow
#: cell's 256 nodes give 65,280 ordered principal pairs; 16 repeated
#: flows per pair cross the million-flow line in a single settle.
SIZE, REPEATS = 64, 4
SLOW_SIZE, SLOW_REPEATS = 256, 16

#: Sizes swept by the nightly settlement-compression curve.
CURVE_SIZES = (16, 32, 64, 128)

#: Acceptance bound for the default-tier settle (seconds) on the
#: development machine; CI widens via REPRO_BENCH_TIME_SCALE.
BOUND_64 = 10.0 * float(os.environ.get("REPRO_BENCH_TIME_SCALE", "1"))


def sparse_graph(size, seed=7):
    """AS-like sparse biconnected graph (constant expected extra degree)."""
    rng = random.Random(seed * 100 + size)
    return random_biconnected_graph(
        size, rng, extra_edge_prob=4.0 / (size - 1)
    )


def run_settle_cell(size, repeats, tolerance=1e-9):
    """One netted settle over synthesized honest reports; returns its
    measured row plus the settlement object for gate assertions."""
    graph = sparse_graph(size)
    traffic = uniform_all_pairs(graph)
    reports = synthesize_execution_reports(graph, traffic, repeats=repeats)
    bank = BankNode()
    bank.reports["execution"] = reports
    node_ids = tuple(sorted(graph.nodes, key=repr))
    declared = {n: graph.cost(n) for n in node_ids}
    started = time.perf_counter()
    netted = bank.settle_netted(node_ids, declared, tolerance=tolerance)
    elapsed = time.perf_counter() - started
    per_flow_positions = net_positions(
        netted.per_flow_transfers, nodes=node_ids
    )
    netted_positions = net_positions(netted.transfers, nodes=node_ids)
    drift = max(
        abs(netted_positions[n] - per_flow_positions[n]) for n in node_ids
    )
    principal_pairs = {
        tuple(sorted((payer, payee), key=repr))
        for payer, payee, _amount in netted.per_flow_transfers
    }
    row = {
        "size": size,
        "flows_settled": netted.flows_settled,
        "flow_groups": netted.flow_groups,
        "transfer_records": netted.transfer_records,
        "net_payouts": netted.net_payouts,
        "net_transfers": len(netted.transfers),
        "principal_pairs": len(principal_pairs),
        "netting_ratio": netted.transfer_records / max(1, netted.net_payouts),
        "drift": drift,
        "seconds": elapsed,
    }
    return row, netted


def print_rows(rows, title):
    print()
    print(
        render_table(
            ["n", "flows", "groups", "records", "payouts", "batches",
             "pairs", "ratio", "seconds"],
            [[row["size"], row["flows_settled"], row["flow_groups"],
              row["transfer_records"], row["net_payouts"],
              row["net_transfers"], row["principal_pairs"],
              round(row["netting_ratio"], 1), round(row["seconds"], 3)]
             for row in rows],
            title=title,
        )
    )


def test_bench_settle_dedup_64(benchmark):
    """64-node epoch: netting emits >= 10x fewer transfer records than
    per-flow settlement, one batch per debtor, zero money drift."""
    row, netted = once(benchmark, run_settle_cell, SIZE, REPEATS)
    print_rows([row], "E13: batched settlement (default tier)")
    assert netted.flags == []
    assert row["flows_settled"] == REPEATS * row["flow_groups"]
    # The dedup gate: the batch-transfer payout list must be at least
    # an order of magnitude smaller than the per-flow transfer list.
    assert row["net_payouts"] * 10 <= row["transfer_records"]
    # One lump-sum transfer per net debtor, at most one per node.
    assert row["net_transfers"] <= SIZE
    # Compression never moves money: positions are bit-identical.
    assert row["drift"] == 0.0
    assert row["seconds"] < BOUND_64


@pytest.mark.slow
def test_bench_settle_million_flows():
    """Nightly slow-tier cell: a million-plus flows through one settle.

    Counter-gated, not wall-time-gated: the claim is that one epoch's
    netted output stays bounded by the principal-pair population no
    matter how many flows ran.  The wider tolerance absorbs the
    fsum-grouping ulp spread of seven-digit money totals; it gates
    flag noise, not money movement (the drift gate stays exact).
    """
    row, netted = run_settle_cell(SLOW_SIZE, SLOW_REPEATS, tolerance=1e-6)
    print_rows([row], "E13: batched settlement (slow tier)")
    assert row["flows_settled"] >= 1_000_000
    assert netted.flags == []
    # The batch-transfer count is bounded by the principals that
    # actually exchanged money, and by the node population.
    assert row["net_transfers"] <= row["principal_pairs"]
    assert row["net_transfers"] <= SLOW_SIZE
    assert row["netting_ratio"] >= 10.0
    assert row["drift"] == 0.0
    # Money conservation at scale: a closed system nets to ~zero.
    positions = net_positions(netted.transfers)
    assert math.fsum(positions.values()) == pytest.approx(0.0, abs=1e-6)


@pytest.mark.slow
def test_settlement_curve(tmp_path):
    """Nightly compression curve: netting ratio grows with size.

    Writes the CSV consumed by the CI artifact upload; point
    REPRO_SETTLEMENT_CURVE at a path to keep it, otherwise it lands
    in the test's tmp directory.
    """
    rows = []
    for size in CURVE_SIZES:
        row, netted = run_settle_cell(size, REPEATS)
        assert netted.flags == []
        assert row["drift"] == 0.0
        rows.append(row)
    print_rows(rows, "E13: settlement compression curve")
    target = os.environ.get(
        "REPRO_SETTLEMENT_CURVE", str(tmp_path / "settlement_curve.csv")
    )
    fields = ["size", "flows_settled", "transfer_records", "net_payouts",
              "net_transfers", "netting_ratio"]
    with open(target, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields, extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)
    # Netting keeps getting better as the epoch grows: the ratio is
    # monotone non-decreasing across the curve.
    ratios = [row["netting_ratio"] for row in rows]
    assert all(b >= a for a, b in zip(ratios, ratios[1:]))
    assert all(row["netting_ratio"] >= 2.0 for row in rows)
