"""E8 — Routing-engine scale: all-pairs VCG payments on large graphs.

The seed oracle re-derived lowest-cost paths from scratch at every call
site, making ``all_pairs_payments`` scale roughly as n^4 (23.5s for a
64-node random biconnected graph on the reference machine).  The
memoized :class:`~repro.routing.engine.RoutingEngine` computes one
Dijkstra tree per source plus one per distinct transit node, which must
keep the same workload comfortably under the ISSUE-1 budget of 1.2s.
"""

import random

import pytest

from repro.analysis import render_table
from repro.routing import all_pairs_payments, engine_for, total_routing_cost
from repro.workloads import random_biconnected_graph


def _once(benchmark, fn, *args):
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)


def test_bench_engine_all_pairs_payments_64(benchmark):
    """The ISSUE-1 acceptance workload: 64 nodes, rng=Random(1)."""
    graph = random_biconnected_graph(64, random.Random(1))
    payments = _once(benchmark, all_pairs_payments, graph)

    assert len(payments) == 64 * 63
    engine = engine_for(graph)
    # Budget realised: one tree per source plus one per distinct
    # transit node — far below the n^2 * n searches of the seed.
    assert engine.runs <= 64 * 63
    for bundle in payments.values():
        for transit, payment in bundle.payments.items():
            assert payment >= graph.cost(transit) - 1e-9

    rows = [
        ["pairs priced", len(payments)],
        ["Dijkstra runs", engine.runs],
        ["tree cache hits", engine.hits],
    ]
    print()
    print(
        render_table(
            ["quantity", "value"],
            rows,
            title="Routing engine: 64-node all-pairs VCG payments",
        )
    )


@pytest.mark.slow
def test_bench_engine_all_pairs_payments_128(benchmark):
    """The follow-on scale target: 128 nodes stays in seconds."""
    graph = random_biconnected_graph(128, random.Random(1))
    payments = _once(benchmark, all_pairs_payments, graph)
    assert len(payments) == 128 * 127


def test_bench_engine_total_routing_cost_64(benchmark):
    """Network-efficiency sweep input: one Dijkstra tree per source."""
    graph = random_biconnected_graph(64, random.Random(1))
    total = _once(benchmark, total_routing_cost, graph)
    assert total > 0.0
    assert engine_for(graph).runs >= 64
