"""E2 — Example 1: node C's cost lie under naive vs VCG pricing.

The paper: "if C declared a cost of 5, X-A-Z would become the X to Z
LCP.  C can benefit from this manipulation, even if it loses the X to Z
traffic, if it can make up the financial loss with higher payments
received by transiting D to Z traffic.  This has damaged overall
efficiency."

Expected shape: under naive declared-cost reimbursement C's utility
strictly rises and total true routing cost strictly rises (efficiency
damage); under FPSS's VCG pricing the same lie never helps.
"""

from repro.analysis import render_table
from repro.routing import (
    lowest_cost_path,
    total_routing_cost,
    utility_of_misreport,
)


def run_example1(graph, traffic):
    """All Example 1 quantities in one pass."""
    lied_graph = graph.with_costs({"C": 5.0})
    naive_truth, naive_lied = utility_of_misreport(
        graph, "C", 5.0, traffic, payment_rule="declared-cost"
    )
    vcg_truth, vcg_lied = utility_of_misreport(
        graph, "C", 5.0, traffic, payment_rule="vcg"
    )
    return {
        "lcp_honest": lowest_cost_path(graph, "X", "Z").path,
        "lcp_lied": lowest_cost_path(lied_graph, "X", "Z").path,
        "naive": (naive_truth, naive_lied),
        "vcg": (vcg_truth, vcg_lied),
        "efficiency_honest": total_routing_cost(graph),
        "efficiency_lied": total_routing_cost(
            lied_graph, truthful_graph=graph
        ),
    }


def test_bench_example1(benchmark, fig1, fig1_traffic):
    results = benchmark(run_example1, fig1, fig1_traffic)

    rows = [
        ["naive (declared-cost)", *results["naive"],
         results["naive"][1] - results["naive"][0]],
        ["FPSS (VCG)", *results["vcg"],
         results["vcg"][1] - results["vcg"][0]],
    ]
    print()
    print(
        render_table(
            ["pricing scheme", "U(C) truthful", "U(C) declares 5", "gain"],
            rows,
            title="Example 1: C lies about its transit cost (1 -> 5)",
        )
    )
    print(
        f"X->Z LCP: honest {results['lcp_honest']} -> "
        f"lied {results['lcp_lied']}; total true routing cost "
        f"{results['efficiency_honest']:.1f} -> "
        f"{results['efficiency_lied']:.1f}"
    )

    # Paper shape: the lie diverts X->Z onto X-A-Z...
    assert results["lcp_honest"] == ("X", "D", "C", "Z")
    assert results["lcp_lied"] == ("X", "A", "Z")
    # ...profits under naive pricing...
    naive_truth, naive_lied = results["naive"]
    assert naive_lied > naive_truth
    # ...never under VCG...
    vcg_truth, vcg_lied = results["vcg"]
    assert vcg_lied <= vcg_truth + 1e-9
    # ...and damages overall network efficiency.
    assert results["efficiency_lied"] > results["efficiency_honest"]
