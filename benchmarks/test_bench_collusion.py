"""E11 — The "without collusion" boundary of ex post Nash.

The paper adopts "ex post Nash (without collusion)" (Section 1).  This
experiment shows that assumption is load-bearing: a coalition of a
deviant principal and **all** of its checkers evades detection (every
witness is complicit), while any coalition leaving a single honest
checker is caught — the executable form of "there is always at least
one checker that will catch any attempted deviation" (Section 4.2).

A second, less obvious shape on Figure 1: although detection is
evaded, the coalition's *total* utility change is negative — the
accomplices lose more than the principal gains, so no budget-balanced
side payments could make the whole coalition strictly better off here.
Evasion is possible; joint profitability is not automatic.
"""

from repro.analysis import render_table
from repro.faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    faithful_deviant_factory,
)
from repro.faithful.collusion import coalition_factory

PRINCIPAL = "C"
SPEC = DEVIATION_CATALOGUE["false-route-announce"]


def run_scenarios(graph, traffic):
    checkers = graph.neighbors(PRINCIPAL)
    baseline = FaithfulFPSSProtocol(graph, traffic).run()
    unilateral = FaithfulFPSSProtocol(
        graph, traffic, node_factory=faithful_deviant_factory(SPEC, PRINCIPAL)
    ).run()
    partial = FaithfulFPSSProtocol(
        graph,
        traffic,
        node_factory=coalition_factory(SPEC, PRINCIPAL, checkers[:-1]),
    ).run()
    full = FaithfulFPSSProtocol(
        graph,
        traffic,
        node_factory=coalition_factory(SPEC, PRINCIPAL, checkers),
    ).run()
    return baseline, unilateral, partial, full


def test_bench_collusion_boundary(benchmark, fig1, fig1_traffic):
    baseline, unilateral, partial, full = benchmark.pedantic(
        run_scenarios, args=(fig1, fig1_traffic), rounds=1, iterations=1
    )
    checkers = fig1.neighbors(PRINCIPAL)
    coalition = (PRINCIPAL,) + checkers

    def gain(result, nodes):
        return sum(
            result.utilities[n] - baseline.utilities[n] for n in nodes
        )

    rows = [
        [
            "unilateral deviant",
            unilateral.detection.detected_any,
            gain(unilateral, (PRINCIPAL,)),
            gain(unilateral, coalition),
        ],
        [
            f"coalition missing one checker ({checkers[-1]} honest)",
            partial.detection.detected_any,
            gain(partial, (PRINCIPAL,)),
            gain(partial, coalition),
        ],
        [
            "full coalition (principal + every checker)",
            full.detection.detected_any,
            gain(full, (PRINCIPAL,)),
            gain(full, coalition),
        ],
    ]
    print()
    print(
        render_table(
            ["scenario", "detected", "principal gain", "coalition gain"],
            rows,
            float_digits=2,
            title="E11: collusion vs the checker scheme (Figure 1, node C)",
        )
    )

    # Unilateral and almost-full coalitions are caught...
    assert unilateral.detection.detected_any
    assert partial.detection.detected_any
    # ...the full coalition evades and the principal profits...
    assert not full.detection.detected_any
    assert full.progressed
    assert gain(full, (PRINCIPAL,)) > 0
    # ...but on this instance the coalition as a whole still loses.
    assert gain(full, coalition) < 0
