"""E7 — Overhead of the faithful extension (Section 3.9's caveat).

"One must be sensitive to the added computational and communication
complexity in using checkpoints."  Measures messages, payload units,
and (checker) computations for plain FPSS vs the faithful extension
over growing random biconnected graphs.  Expected shape: plain FPSS is
strictly cheaper; the factor grows with the checker fan-out (average
degree), because every received update is copied to every neighbour
and every neighbour replays every computation.
"""

import random

from repro.analysis import render_table
from repro.faithful import FaithfulFPSSProtocol, PlainFPSSProtocol
from repro.workloads import random_biconnected_graph, uniform_all_pairs

SIZES = (5, 7, 9)


def measure_overhead(sizes=SIZES, seed=21):
    rows = []
    for size in sizes:
        rng = random.Random(seed + size)
        graph = random_biconnected_graph(size, rng)
        traffic = uniform_all_pairs(graph)
        plain = PlainFPSSProtocol(graph, traffic).run()
        faithful = FaithfulFPSSProtocol(graph, traffic).run()
        assert faithful.progressed and not faithful.detection.detected_any
        rows.append(
            {
                "size": size,
                "avg_degree": 2
                * len(graph.edges)
                / len(graph),
                "plain_msgs": plain.metrics["total_messages"],
                "faithful_msgs": faithful.metrics["total_messages"],
                "plain_comps": plain.metrics["total_computations"],
                "faithful_comps": faithful.metrics["total_computations"]
                + faithful.metrics["total_checker_computations"],
                "checker_comps": faithful.metrics[
                    "total_checker_computations"
                ],
            }
        )
    return rows


def test_bench_overhead(benchmark):
    rows = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)

    printable = [
        [
            r["size"],
            r["avg_degree"],
            r["plain_msgs"],
            r["faithful_msgs"],
            r["faithful_msgs"] / r["plain_msgs"],
            r["checker_comps"],
            r["faithful_comps"] / max(1, r["plain_comps"]),
        ]
        for r in rows
    ]
    print()
    print(
        render_table(
            [
                "n",
                "avg deg",
                "plain msgs",
                "faithful msgs",
                "msg factor",
                "checker comps",
                "comp factor",
            ],
            printable,
            float_digits=2,
            title="E7: construction+execution overhead, plain vs faithful",
        )
    )

    for r in rows:
        # Paper shape: checkpoints and redundancy cost real overhead.
        assert r["faithful_msgs"] > r["plain_msgs"]
        assert r["checker_comps"] > 0
        assert r["faithful_comps"] > r["plain_comps"]
