"""E7 — Overhead of the faithful extension (Section 3.9's caveat).

"One must be sensitive to the added computational and communication
complexity in using checkpoints."  Measures messages, payload units,
and (checker) computations for plain FPSS vs the faithful extension
over growing random biconnected graphs.  Expected shape: plain FPSS is
strictly cheaper; the factor grows with the checker fan-out (average
degree), because every received update is copied to every neighbour
and every neighbour replays every computation.
"""

import os
import random
import time

from conftest import once

from repro.analysis import render_table
from repro.faithful import FaithfulFPSSProtocol, PlainFPSSProtocol
from repro.obs import BUS, NullSink, span
from repro.routing import measure_convergence
from repro.workloads import random_biconnected_graph, uniform_all_pairs

SIZES = (5, 7, 9)

#: CI sets REPRO_BENCH_TIME_SCALE to widen timing bounds on slow runners.
TIME_SCALE = float(os.environ.get("REPRO_BENCH_TIME_SCALE", "1"))


def measure_overhead(sizes=SIZES, seed=21):
    rows = []
    for size in sizes:
        rng = random.Random(seed + size)
        graph = random_biconnected_graph(size, rng)
        traffic = uniform_all_pairs(graph)
        plain = PlainFPSSProtocol(graph, traffic).run()
        faithful = FaithfulFPSSProtocol(graph, traffic).run()
        assert faithful.progressed and not faithful.detection.detected_any
        rows.append(
            {
                "size": size,
                "avg_degree": 2
                * len(graph.edges)
                / len(graph),
                "plain_msgs": plain.metrics["total_messages"],
                "faithful_msgs": faithful.metrics["total_messages"],
                "plain_comps": plain.metrics["total_computations"],
                "faithful_comps": faithful.metrics["total_computations"]
                + faithful.metrics["total_checker_computations"],
                "checker_comps": faithful.metrics[
                    "total_checker_computations"
                ],
            }
        )
    return rows


def test_bench_overhead(benchmark):
    rows = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)

    printable = [
        [
            r["size"],
            r["avg_degree"],
            r["plain_msgs"],
            r["faithful_msgs"],
            r["faithful_msgs"] / r["plain_msgs"],
            r["checker_comps"],
            r["faithful_comps"] / max(1, r["plain_comps"]),
        ]
        for r in rows
    ]
    print()
    print(
        render_table(
            [
                "n",
                "avg deg",
                "plain msgs",
                "faithful msgs",
                "msg factor",
                "checker comps",
                "comp factor",
            ],
            printable,
            float_digits=2,
            title="E7: construction+execution overhead, plain vs faithful",
        )
    )

    for r in rows:
        # Paper shape: checkpoints and redundancy cost real overhead.
        assert r["faithful_msgs"] > r["plain_msgs"]
        assert r["checker_comps"] > 0
        assert r["faithful_comps"] > r["plain_comps"]


# ---------------------------------------------------------------------------
# Telemetry overhead: the disabled path must cost ~nothing
# ---------------------------------------------------------------------------


def _timed_spans(iterations):
    """Wall seconds for ``iterations`` disabled span() round trips."""
    started = time.perf_counter()
    for _ in range(iterations):
        with span("bench.noop", owner="A"):
            pass
    return time.perf_counter() - started


def test_bench_disabled_span_microcost(benchmark):
    """A disabled span is a single attribute check plus a shared no-op.

    The instrumented hot paths (simulator dispatch, kernel recompute,
    mirror checkpoints) call :func:`span` with the bus off in every
    canonical run, so the per-call cost budget is microseconds, not
    tens of microseconds.
    """
    assert not BUS.enabled
    iterations = 100_000
    elapsed = once(benchmark, _timed_spans, iterations)
    per_call = elapsed / iterations
    print(f"\ndisabled span: {per_call * 1e9:.0f} ns/call")
    # ~0.5 µs on the dev machine; 10 µs is far outside any healthy run.
    assert per_call < 10e-6 * TIME_SCALE


def test_bench_disabled_overhead_on_convergence(benchmark):
    """Telemetry overhead is within noise on a 64-node convergence run.

    Times the same 64-node sparse-graph convergence with the bus
    disabled (the canonical configuration) and with a ``NullSink``
    attached (every span/counter record materialised, then dropped).
    The enabled run bounds the full instrumentation cost; the loose
    ratio keeps the gate meaningful without flaking on shared runners.
    """
    from test_bench_convergence import sparse_graph

    graph = sparse_graph(64)

    def run_once():
        started = time.perf_counter()
        stats = measure_convergence(graph, verify=False)
        return time.perf_counter() - started, stats

    def run_both():
        assert not BUS.enabled
        disabled_s, disabled_stats = run_once()
        sink = NullSink()
        BUS.attach(sink)
        try:
            enabled_s, enabled_stats = run_once()
        finally:
            BUS.detach(sink)
        # Instrumentation never changes the computation itself.
        assert disabled_stats.total_messages == enabled_stats.total_messages
        return disabled_s, enabled_s

    disabled_s, enabled_s = once(benchmark, run_both)
    print(
        f"\n64-node convergence: disabled {disabled_s:.3f}s, "
        f"NullSink-enabled {enabled_s:.3f}s "
        f"(x{enabled_s / max(disabled_s, 1e-9):.2f})"
    )
    # Ratio gate only: the two legs run back to back on the same box,
    # so their ratio bounds the instrumentation overhead even when an
    # absolute wall bound would flake under runner load (the old
    # five-second absolute gate did exactly that).  The computation
    # itself is already pinned by the message-count equality above.
    assert enabled_s < disabled_s * 4.0 * TIME_SCALE
