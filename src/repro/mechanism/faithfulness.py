"""Faithfulness: IC, CC, AC, strong-CC, strong-AC, and Propositions 1-2.

Definition 8: a distributed mechanism specification is an (ex post)
**faithful implementation** when the suggested strategy ``s^m`` is an
ex post Nash equilibrium.  The compatibility properties slice that
requirement by action class:

* **IC** (Definition 9): no profitable deviation confined to
  information-revelation actions;
* **CC** (Definition 10): none confined to message-passing actions;
* **AC** (Definition 11): none confined to computational actions;
* **strong-CC** (Definition 12): no profitable deviation *touching*
  message-passing, whatever the node simultaneously does to its
  computational and information-revelation actions;
* **strong-AC** (Definition 13): symmetrically for computation.

Proposition 1: IC + CC + AC in the same equilibrium => faithful.
Proposition 2: centralized strategyproofness + strong-CC + strong-AC
=> faithful.

The verifiers here operationalise those statements over an explicit
deviation catalogue (the strategy space ``Sigma``): an exhaustive check
on small instances, a statistical one on sampled instances.  They
cannot replace the paper's symbolic proofs — a sampled check is
falsification-complete only over the catalogue it is given — but they
make every claim *executable*: any bug in the mechanism that admits a
profitable catalogued deviation is reported as a concrete
counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import MechanismError
from ..specs.actions import ActionClass
from .centralized import StrategyproofnessReport
from .distributed import DistributedMechanism
from .solution import EquilibriumReport, check_ex_post_nash
from .types import TypeProfile


@dataclass
class CompatibilityReport:
    """IC/CC/AC verdicts plus the strong variants for one mechanism."""

    mechanism_name: str
    ic: Optional[EquilibriumReport] = None
    cc: Optional[EquilibriumReport] = None
    ac: Optional[EquilibriumReport] = None
    strong_cc: Optional[EquilibriumReport] = None
    strong_ac: Optional[EquilibriumReport] = None

    def _holds(self, report: Optional[EquilibriumReport]) -> bool:
        if report is None:
            raise MechanismError("property was not checked")
        return report.holds

    @property
    def is_ic(self) -> bool:
        """Definition 9 verdict."""
        return self._holds(self.ic)

    @property
    def is_cc(self) -> bool:
        """Definition 10 verdict."""
        return self._holds(self.cc)

    @property
    def is_ac(self) -> bool:
        """Definition 11 verdict."""
        return self._holds(self.ac)

    @property
    def is_strong_cc(self) -> bool:
        """Definition 12 verdict."""
        return self._holds(self.strong_cc)

    @property
    def is_strong_ac(self) -> bool:
        """Definition 13 verdict."""
        return self._holds(self.strong_ac)

    def all_violations(self) -> List:
        """Every counterexample found across all checked properties."""
        violations = []
        for report in (self.ic, self.cc, self.ac, self.strong_cc, self.strong_ac):
            if report is not None:
                violations.extend(report.violations)
        return violations

    def summary(self) -> Dict[str, float]:
        """Flat numeric view for per-scenario aggregation.

        Each *checked* property contributes ``<name>_holds`` (0/1) and
        ``<name>_violations``; unchecked properties are simply absent.
        Sweep runners average these across scenarios to report, e.g.,
        the fraction of sampled instances where CC held.
        """
        row: Dict[str, float] = {}
        for name, report in (
            ("ic", self.ic),
            ("cc", self.cc),
            ("ac", self.ac),
            ("strong_cc", self.strong_cc),
            ("strong_ac", self.strong_ac),
        ):
            if report is not None:
                row[f"{name}_holds"] = float(report.holds)
                row[f"{name}_violations"] = float(len(report.violations))
        return row


def check_ic(
    mechanism: DistributedMechanism,
    type_profiles: Iterable[TypeProfile],
    tolerance: float = 1e-9,
) -> EquilibriumReport:
    """Definition 9: deviations confined to information revelation."""
    return check_ex_post_nash(
        mechanism,
        type_profiles,
        classes=(ActionClass.INFORMATION_REVELATION,),
        tolerance=tolerance,
        concept="IC",
    )


def check_cc(
    mechanism: DistributedMechanism,
    type_profiles: Iterable[TypeProfile],
    tolerance: float = 1e-9,
) -> EquilibriumReport:
    """Definition 10: deviations confined to message passing."""
    return check_ex_post_nash(
        mechanism,
        type_profiles,
        classes=(ActionClass.MESSAGE_PASSING,),
        tolerance=tolerance,
        concept="CC",
    )


def check_ac(
    mechanism: DistributedMechanism,
    type_profiles: Iterable[TypeProfile],
    tolerance: float = 1e-9,
) -> EquilibriumReport:
    """Definition 11: deviations confined to computation."""
    return check_ex_post_nash(
        mechanism,
        type_profiles,
        classes=(ActionClass.COMPUTATION,),
        tolerance=tolerance,
        concept="AC",
    )


def check_strong_cc(
    mechanism: DistributedMechanism,
    type_profiles: Iterable[TypeProfile],
    tolerance: float = 1e-9,
) -> EquilibriumReport:
    """Definition 12: any deviation touching message passing, jointly
    with arbitrary revelation/computation changes."""
    return check_ex_post_nash(
        mechanism,
        type_profiles,
        require_touch=ActionClass.MESSAGE_PASSING,
        tolerance=tolerance,
        concept="strong-CC",
    )


def check_strong_ac(
    mechanism: DistributedMechanism,
    type_profiles: Iterable[TypeProfile],
    tolerance: float = 1e-9,
) -> EquilibriumReport:
    """Definition 13: any deviation touching computation, jointly with
    arbitrary revelation/message-passing changes."""
    return check_ex_post_nash(
        mechanism,
        type_profiles,
        require_touch=ActionClass.COMPUTATION,
        tolerance=tolerance,
        concept="strong-AC",
    )


def check_compatibility(
    mechanism: DistributedMechanism,
    type_profiles: Sequence[TypeProfile],
    tolerance: float = 1e-9,
    include_strong: bool = True,
) -> CompatibilityReport:
    """Run all compatibility checks over one profile set."""
    profiles = list(type_profiles)
    report = CompatibilityReport(mechanism_name=mechanism.name)
    report.ic = check_ic(mechanism, profiles, tolerance=tolerance)
    report.cc = check_cc(mechanism, profiles, tolerance=tolerance)
    report.ac = check_ac(mechanism, profiles, tolerance=tolerance)
    if include_strong:
        report.strong_cc = check_strong_cc(mechanism, profiles, tolerance=tolerance)
        report.strong_ac = check_strong_ac(mechanism, profiles, tolerance=tolerance)
    return report


@dataclass
class FaithfulnessVerdict:
    """The conclusion of a Proposition 1 or Proposition 2 argument."""

    mechanism_name: str
    proposition: str
    faithful: bool
    reasons: List[str] = field(default_factory=list)
    compatibility: Optional[CompatibilityReport] = None
    full_equilibrium: Optional[EquilibriumReport] = None

    def summary(self) -> Dict[str, float]:
        """Flat numeric view for per-scenario aggregation.

        Combines the headline verdict with the compatibility rows so a
        sweep can turn many per-instance verdicts into rates ("faithful
        on 97% of sampled scenarios, CC violated on 3").
        """
        row: Dict[str, float] = {"faithful": float(self.faithful)}
        if self.full_equilibrium is not None:
            row["equilibrium_violations"] = float(
                len(self.full_equilibrium.violations)
            )
        if self.compatibility is not None:
            row.update(self.compatibility.summary())
        return row


def proposition1_verdict(
    mechanism: DistributedMechanism,
    type_profiles: Sequence[TypeProfile],
    tolerance: float = 1e-9,
) -> FaithfulnessVerdict:
    """Proposition 1: IC and CC and AC (same equilibrium) => faithful.

    The verifier also confirms the conclusion independently by running
    the *unrestricted* ex post Nash check over the entire deviation
    catalogue: on every instance, the implication itself is validated,
    not merely applied.
    """
    profiles = list(type_profiles)
    compatibility = check_compatibility(
        mechanism, profiles, tolerance=tolerance, include_strong=False
    )
    reasons = []
    for prop_name, holds in (
        ("IC", compatibility.is_ic),
        ("CC", compatibility.is_cc),
        ("AC", compatibility.is_ac),
    ):
        if not holds:
            reasons.append(f"{prop_name} fails")
    premise = not reasons

    full = check_ex_post_nash(
        mechanism, profiles, tolerance=tolerance, concept="faithful"
    )
    faithful = full.holds
    if premise and not faithful:
        # Pure-class checks passed but some *joint* deviation profits;
        # this is exactly why the paper needs the strong properties.
        reasons.append(
            "IC+CC+AC hold for pure deviations but a joint deviation "
            "profits; Proposition 1 requires compatibility over the "
            "full strategy space (see strong-CC/strong-AC)"
        )
    return FaithfulnessVerdict(
        mechanism_name=mechanism.name,
        proposition="proposition-1",
        faithful=faithful,
        reasons=reasons,
        compatibility=compatibility,
        full_equilibrium=full,
    )


def proposition2_verdict(
    mechanism: DistributedMechanism,
    type_profiles: Sequence[TypeProfile],
    centralized_report: StrategyproofnessReport,
    tolerance: float = 1e-9,
) -> FaithfulnessVerdict:
    """Proposition 2: strategyproof center + strong-CC + strong-AC
    => faithful implementation.

    ``centralized_report`` is the audit of the corresponding
    centralized mechanism ``f(theta) = g(s^m(theta))``.  As with
    Proposition 1, the conclusion is re-validated with the full
    unrestricted equilibrium check.
    """
    profiles = list(type_profiles)
    reasons = []
    if not centralized_report.is_strategyproof:
        reasons.append(
            "corresponding centralized mechanism is not strategyproof "
            f"({len(centralized_report.violations)} profitable misreports)"
        )
    strong_cc = check_strong_cc(mechanism, profiles, tolerance=tolerance)
    strong_ac = check_strong_ac(mechanism, profiles, tolerance=tolerance)
    ic = check_ic(mechanism, profiles, tolerance=tolerance)
    if not strong_cc.holds:
        reasons.append("strong-CC fails")
    if not strong_ac.holds:
        reasons.append("strong-AC fails")
    if not ic.holds:
        # With strong-CC/AC in place, IC follows from centralized
        # strategyproofness; a failure here signals an inconsistent
        # information-revelation classification (Remark 4).
        reasons.append("IC fails despite strategyproof center")

    full = check_ex_post_nash(
        mechanism, profiles, tolerance=tolerance, concept="faithful"
    )
    compatibility = CompatibilityReport(
        mechanism_name=mechanism.name,
        ic=ic,
        strong_cc=strong_cc,
        strong_ac=strong_ac,
    )
    return FaithfulnessVerdict(
        mechanism_name=mechanism.name,
        proposition="proposition-2",
        faithful=full.holds and not reasons,
        reasons=reasons,
        compatibility=compatibility,
        full_equilibrium=full,
    )
