"""Distributed mechanism specifications ``dM = (g, Sigma, s^m)``.

Definition 1: a distributed mechanism specification defines an outcome
rule ``g``, a feasible strategy space ``Sigma``, and a suggested
strategy ``s^m``.  The outcome rule depends on the *sequence of actions
taken by nodes* — here, on which strategy each node runs inside the
network simulator — rather than on a vector of reports.

A strategy in this module is a named, classified element of ``Sigma_i``
(:class:`DistributedStrategy`); running the mechanism under a strategy
assignment is delegated to an *outcome engine* callable supplied by the
domain (e.g. the faithful-routing experiment runner).  The engine
returns per-node utilities, which is all the equilibrium and
faithfulness verifiers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import MechanismError
from ..specs.actions import ActionClass
from .types import AgentId, TypeProfile


@dataclass(frozen=True)
class DistributedStrategy:
    """One element of a node's feasible strategy space ``Sigma_i``.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"suggested"`` or ``"drop-routing-updates"``.
    deviation_classes:
        Which external-action classes the strategy deviates in,
        relative to the suggested strategy (empty for the suggested
        strategy itself).  This classification is what the IC/CC/AC
        verifiers filter on.
    payload:
        Opaque domain data (e.g. a node-subclass factory) that the
        outcome engine knows how to interpret.  Excluded from equality.
    """

    name: str
    deviation_classes: FrozenSet[ActionClass] = frozenset()
    payload: Any = field(default=None, compare=False)

    @property
    def is_suggested(self) -> bool:
        """True for the faithful strategy (no deviation classes)."""
        return not self.deviation_classes

    def touches(self, action_class: ActionClass) -> bool:
        """True if the strategy deviates in the given class."""
        return action_class in self.deviation_classes


@dataclass(frozen=True)
class MechanismRun:
    """The result of evaluating ``g`` under one strategy assignment."""

    utilities: Mapping[AgentId, float]
    outcome_data: Any = None

    def utility_of(self, agent: AgentId) -> float:
        """One agent's realised utility."""
        try:
            return self.utilities[agent]
        except KeyError:
            raise MechanismError(f"run has no utility for agent {agent!r}") from None


#: ``g``: (strategy assignment, type profile) -> realised run.
OutcomeEngine = Callable[[Mapping[AgentId, DistributedStrategy], TypeProfile], MechanismRun]


class DistributedMechanism:
    """``dM = (g, Sigma, s^m)`` with an executable outcome rule.

    Parameters
    ----------
    engine:
        The outcome rule ``g``, evaluated by simulation.
    strategy_space:
        ``Sigma_i`` per agent; each must contain the suggested
        strategy.
    suggested:
        ``s^m_i`` per agent.
    """

    def __init__(
        self,
        engine: OutcomeEngine,
        strategy_space: Mapping[AgentId, Sequence[DistributedStrategy]],
        suggested: Mapping[AgentId, DistributedStrategy],
        name: str = "dM",
    ) -> None:
        if not strategy_space:
            raise MechanismError("a distributed mechanism needs agents")
        self._engine = engine
        self._space: Dict[AgentId, Tuple[DistributedStrategy, ...]] = {
            agent: tuple(strategies) for agent, strategies in strategy_space.items()
        }
        self._suggested: Dict[AgentId, DistributedStrategy] = dict(suggested)
        self.name = name

        for agent in self._space:
            if agent not in self._suggested:
                raise MechanismError(f"no suggested strategy for agent {agent!r}")
            if self._suggested[agent] not in self._space[agent]:
                raise MechanismError(
                    f"suggested strategy of {agent!r} is outside Sigma_{agent!r}"
                )
            if not self._suggested[agent].is_suggested:
                raise MechanismError(
                    f"suggested strategy of {agent!r} is itself classified "
                    "as a deviation"
                )

    @property
    def agents(self) -> Tuple[AgentId, ...]:
        """All participating agents, repr-sorted."""
        return tuple(sorted(self._space, key=repr))

    def strategies_of(self, agent: AgentId) -> Tuple[DistributedStrategy, ...]:
        """``Sigma_i``."""
        try:
            return self._space[agent]
        except KeyError:
            raise MechanismError(f"unknown agent {agent!r}") from None

    def suggested_strategy(self, agent: AgentId) -> DistributedStrategy:
        """``s^m_i``."""
        return self._suggested[agent]

    def suggested_assignment(self) -> Dict[AgentId, DistributedStrategy]:
        """The full suggested profile ``s^m``."""
        return dict(self._suggested)

    def deviations_of(
        self,
        agent: AgentId,
        classes: Optional[Iterable[ActionClass]] = None,
        require_touch: Optional[ActionClass] = None,
    ) -> List[DistributedStrategy]:
        """Non-suggested strategies of one agent, optionally filtered.

        Parameters
        ----------
        classes:
            If given, keep only deviations whose classes are a subset
            (pure deviations for IC/CC/AC checks).
        require_touch:
            If given, keep only deviations that include this class
            (arbitrary joint deviations for strong-CC/strong-AC).
        """
        allowed = frozenset(classes) if classes is not None else None
        result = []
        for strategy in self._space[agent]:
            if strategy == self._suggested[agent]:
                continue
            if allowed is not None and not strategy.deviation_classes <= allowed:
                continue
            if require_touch is not None and not strategy.touches(require_touch):
                continue
            result.append(strategy)
        return result

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def run(
        self,
        assignment: Mapping[AgentId, DistributedStrategy],
        types: TypeProfile,
    ) -> MechanismRun:
        """Evaluate ``g`` under a full strategy assignment."""
        merged = dict(self._suggested)
        for agent, strategy in assignment.items():
            if agent not in self._space:
                raise MechanismError(f"unknown agent {agent!r}")
            if strategy not in self._space[agent]:
                raise MechanismError(
                    f"strategy {strategy.name!r} is outside Sigma_{agent!r}"
                )
            merged[agent] = strategy
        return self._engine(merged, types)

    def run_suggested(self, types: TypeProfile) -> MechanismRun:
        """Evaluate ``g(s^m(theta))``."""
        return self.run({}, types)

    def run_unilateral(
        self,
        agent: AgentId,
        strategy: DistributedStrategy,
        types: TypeProfile,
    ) -> MechanismRun:
        """Everyone faithful except one agent playing ``strategy``."""
        return self.run({agent: strategy}, types)
