"""Utility functions for rational nodes.

Nodes are modelled as game-theoretic utility maximisers with a utility
function ``u_i(o; theta_i)`` inducing a preference ordering over
outcomes (Section 3.2).  The library standardises on *quasi-linear*
utility — value of the decision plus money received — which is the
setting in which VCG mechanisms are strategyproof.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, TypeVar

from .types import AgentId, Outcome

TypeT = TypeVar("TypeT", bound=Hashable)

#: Signature of a valuation: value of a decision given the agent's type.
Valuation = Callable[[AgentId, object, object], float]


class UtilityFunction(Generic[TypeT]):
    """``u_i(o; theta_i)`` for quasi-linear agents.

    Parameters
    ----------
    valuation:
        ``valuation(agent, decision, theta_i)`` -> value in money units.
        The valuation uses the agent's *true* type; misreports change
        the outcome, never the valuation.
    """

    def __init__(self, valuation: Valuation) -> None:
        self._valuation = valuation

    def value(self, agent: AgentId, decision: object, true_type: TypeT) -> float:
        """The decision's worth to the agent."""
        return self._valuation(agent, decision, true_type)

    def utility(self, agent: AgentId, outcome: Outcome, true_type: TypeT) -> float:
        """Quasi-linear utility: valuation plus transfer received."""
        return self.value(agent, outcome.decision, true_type) + outcome.transfer_to(
            agent
        )

    def prefers(
        self,
        agent: AgentId,
        better: Outcome,
        worse: Outcome,
        true_type: TypeT,
        strictly: bool = True,
    ) -> bool:
        """Preference comparison between two outcomes."""
        lhs = self.utility(agent, better, true_type)
        rhs = self.utility(agent, worse, true_type)
        return lhs > rhs if strictly else lhs >= rhs
