"""Centralized (direct-revelation) mechanisms and strategyproofness.

A centralized mechanism ``M = (f, Theta)`` asks nodes to report types
to a trusted, obedient center that selects the outcome ``f(theta-hat)``
(Section 3.2).  Definition 5: ``M`` is **strategyproof** when truthful
reporting maximises each node's utility whatever the others report:

    u_i(f(theta_i, theta_{-i}); theta_i)
        >= u_i(f(theta-hat_i, theta_{-i}); theta_i)

for all ``theta_i``, all ``theta-hat_i != theta_i``, all ``theta_{-i}``.

The :func:`audit_strategyproofness` verifier checks that inequality
exhaustively on finite type spaces and statistically on sampled ones;
it is the "corresponding centralized mechanism is strategyproof" leg of
Proposition 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Hashable, List, Mapping, Optional, TypeVar

from ..errors import MechanismError
from .types import (
    AgentId,
    Outcome,
    TypeProfile,
    TypeSpace,
    enumerate_profiles,
    sample_profiles,
)
from .utility import UtilityFunction

TypeT = TypeVar("TypeT", bound=Hashable)

#: An outcome rule: reported profile -> outcome.
OutcomeRule = Callable[[TypeProfile], Outcome]


class DirectRevelationMechanism(Generic[TypeT]):
    """``M = (f, Theta)`` with quasi-linear utilities."""

    def __init__(
        self,
        outcome_rule: OutcomeRule,
        type_spaces: Mapping[AgentId, TypeSpace[TypeT]],
        utility: UtilityFunction[TypeT],
        name: str = "mechanism",
    ) -> None:
        if not type_spaces:
            raise MechanismError("a mechanism needs at least one agent")
        self._outcome_rule = outcome_rule
        self._type_spaces = dict(type_spaces)
        self.utility = utility
        self.name = name

    @property
    def agents(self) -> tuple:
        """All participating agent ids."""
        return tuple(sorted(self._type_spaces, key=repr))

    @property
    def type_spaces(self) -> Dict[AgentId, TypeSpace[TypeT]]:
        """Copy of the per-agent type spaces."""
        return dict(self._type_spaces)

    def outcome(self, reports: TypeProfile[TypeT]) -> Outcome:
        """``f(theta-hat)``."""
        return self._outcome_rule(reports)

    def agent_utility(
        self, agent: AgentId, reports: TypeProfile[TypeT], true_type: TypeT
    ) -> float:
        """Utility of one agent under given reports and its true type."""
        return self.utility.utility(agent, self.outcome(reports), true_type)


@dataclass(frozen=True)
class StrategyproofnessViolation:
    """A profitable misreport found by the auditor."""

    agent: AgentId
    true_profile: TypeProfile
    misreport: object
    truthful_utility: float
    deviant_utility: float

    @property
    def gain(self) -> float:
        """How much the lie earned."""
        return self.deviant_utility - self.truthful_utility


@dataclass
class StrategyproofnessReport:
    """Verdict of a strategyproofness audit."""

    mechanism_name: str
    profiles_checked: int
    deviations_checked: int
    violations: List[StrategyproofnessViolation] = field(default_factory=list)
    max_gain: float = 0.0

    @property
    def is_strategyproof(self) -> bool:
        """True if no profitable misreport was found."""
        return not self.violations


def audit_strategyproofness(
    mechanism: DirectRevelationMechanism[TypeT],
    rng: Optional[random.Random] = None,
    profile_samples: int = 50,
    misreport_samples: int = 10,
    tolerance: float = 1e-9,
) -> StrategyproofnessReport:
    """Search for profitable unilateral misreports (Definition 5).

    On finite type spaces the check is exhaustive over all profiles and
    all misreports; otherwise ``profile_samples`` joint profiles are
    drawn and ``misreport_samples`` alternative reports per agent.

    Parameters
    ----------
    tolerance:
        Gains below this are attributed to float noise and ignored.
    """
    spaces = mechanism.type_spaces
    finite = all(space.is_finite for space in spaces.values())
    rng = rng or random.Random(0)

    if finite:
        profiles = list(enumerate_profiles(spaces))
    else:
        profiles = sample_profiles(spaces, rng, profile_samples)

    report = StrategyproofnessReport(
        mechanism_name=mechanism.name, profiles_checked=len(profiles),
        deviations_checked=0,
    )

    for profile in profiles:
        for agent in mechanism.agents:
            true_type = profile.type_of(agent)
            truthful_utility = mechanism.agent_utility(agent, profile, true_type)
            if spaces[agent].is_finite:
                misreports = [t for t in spaces[agent].values if t != true_type]
            else:
                misreports = [
                    spaces[agent].sample(rng) for _ in range(misreport_samples)
                ]
                misreports = [m for m in misreports if m != true_type]
            for misreport in misreports:
                report.deviations_checked += 1
                deviant_profile = profile.replace(agent, misreport)
                deviant_utility = mechanism.agent_utility(
                    agent, deviant_profile, true_type
                )
                gain = deviant_utility - truthful_utility
                report.max_gain = max(report.max_gain, gain)
                if gain > tolerance:
                    report.violations.append(
                        StrategyproofnessViolation(
                            agent=agent,
                            true_profile=profile,
                            misreport=misreport,
                            truthful_utility=truthful_utility,
                            deviant_utility=deviant_utility,
                        )
                    )
    return report
