"""Solution concepts and equilibrium verification (Definitions 5-8).

The paper designs for **ex post Nash equilibrium** (Definition 6): a
strategy profile ``s*`` such that no node would deviate even knowing
the private types of all other nodes —

    u_i(g(s*(theta)); theta_i) >= u_i(g(s'_i(theta_i), s*_{-i}(theta_{-i})); theta_i)

for all nodes ``i``, all ``s'_i != s*_i``, all ``theta_i``, and all
``theta_{-i}``.  The verifier here checks that quantifier structure
directly: over every supplied type profile it evaluates every
unilateral strategy deviation of every agent and compares utilities.
On small finite instances this is an exhaustive proof-by-enumeration;
on sampled profiles it is a statistical test.

Remark 1 of the paper (weak equilibrium suffices — nodes are benevolent
and follow the suggestion when indifferent) is honoured by using a
``>=`` comparison with a numeric tolerance: ties do not count as
violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..specs.actions import ActionClass
from .distributed import DistributedMechanism, DistributedStrategy
from .types import AgentId, TypeProfile


@dataclass(frozen=True)
class EquilibriumViolation:
    """A profitable unilateral deviation found by a verifier."""

    agent: AgentId
    types: TypeProfile
    deviation: DistributedStrategy
    suggested_utility: float
    deviant_utility: float

    @property
    def gain(self) -> float:
        """The deviator's utility improvement."""
        return self.deviant_utility - self.suggested_utility


@dataclass
class EquilibriumReport:
    """Outcome of an equilibrium check over a set of type profiles."""

    concept: str
    profiles_checked: int = 0
    deviations_checked: int = 0
    violations: List[EquilibriumViolation] = field(default_factory=list)
    max_gain: float = 0.0

    @property
    def holds(self) -> bool:
        """True if no profitable deviation was found."""
        return not self.violations

    def merge(self, other: "EquilibriumReport") -> "EquilibriumReport":
        """Combine two reports (e.g. across experiment shards)."""
        merged = EquilibriumReport(concept=self.concept)
        merged.profiles_checked = self.profiles_checked + other.profiles_checked
        merged.deviations_checked = (
            self.deviations_checked + other.deviations_checked
        )
        merged.violations = self.violations + other.violations
        merged.max_gain = max(self.max_gain, other.max_gain)
        return merged


def check_ex_post_nash(
    mechanism: DistributedMechanism,
    type_profiles: Iterable[TypeProfile],
    agents: Optional[Sequence[AgentId]] = None,
    classes: Optional[Iterable[ActionClass]] = None,
    require_touch: Optional[ActionClass] = None,
    tolerance: float = 1e-9,
    concept: str = "ex-post-nash",
) -> EquilibriumReport:
    """Verify Definition 6 over the supplied profiles and deviations.

    Parameters
    ----------
    agents:
        Restrict the check to some deviators (default: everyone).
    classes / require_touch:
        Forwarded to :meth:`DistributedMechanism.deviations_of`,
        selecting pure-class deviations (IC/CC/AC) or any-joint
        deviations touching one class (strong-CC/strong-AC).
    tolerance:
        Gains below this are float noise / indifference (Remark 1).
    """
    report = EquilibriumReport(concept=concept)
    check_agents = tuple(agents) if agents is not None else mechanism.agents

    for types in type_profiles:
        report.profiles_checked += 1
        baseline = mechanism.run_suggested(types)
        for agent in check_agents:
            suggested_utility = baseline.utility_of(agent)
            for deviation in mechanism.deviations_of(
                agent, classes=classes, require_touch=require_touch
            ):
                report.deviations_checked += 1
                deviant_run = mechanism.run_unilateral(agent, deviation, types)
                deviant_utility = deviant_run.utility_of(agent)
                gain = deviant_utility - suggested_utility
                report.max_gain = max(report.max_gain, gain)
                if gain > tolerance:
                    report.violations.append(
                        EquilibriumViolation(
                            agent=agent,
                            types=types,
                            deviation=deviation,
                            suggested_utility=suggested_utility,
                            deviant_utility=deviant_utility,
                        )
                    )
    return report


def check_dominant_strategy(
    mechanism: DistributedMechanism,
    type_profiles: Iterable[TypeProfile],
    tolerance: float = 1e-9,
) -> EquilibriumReport:
    """Verify dominant-strategy faithfulness: the suggested strategy
    beats deviations against *every* joint strategy of the others.

    Far stronger than ex post Nash, and usually false for distributed
    mechanisms (Remark 3: a node must reason about whether *others*
    follow computation/message-passing suggestions, so the lowest
    common denominator is ex post Nash).  Provided so experiments can
    demonstrate exactly that gap on small instances.
    """
    import itertools

    report = EquilibriumReport(concept="dominant-strategy")
    agents = mechanism.agents

    for types in type_profiles:
        report.profiles_checked += 1
        for agent in agents:
            others = [a for a in agents if a != agent]
            other_spaces = [mechanism.strategies_of(a) for a in others]
            for combo in itertools.product(*other_spaces):
                opponents = dict(zip(others, combo, strict=True))
                baseline = mechanism.run(
                    {**opponents, agent: mechanism.suggested_strategy(agent)}, types
                )
                suggested_utility = baseline.utility_of(agent)
                for deviation in mechanism.deviations_of(agent):
                    report.deviations_checked += 1
                    run = mechanism.run({**opponents, agent: deviation}, types)
                    gain = run.utility_of(agent) - suggested_utility
                    report.max_gain = max(report.max_gain, gain)
                    if gain > tolerance:
                        report.violations.append(
                            EquilibriumViolation(
                                agent=agent,
                                types=types,
                                deviation=deviation,
                                suggested_utility=suggested_utility,
                                deviant_utility=run.utility_of(agent),
                            )
                        )
    return report
