"""Type spaces, profiles, and outcomes (paper Section 3.2).

Traditional mechanism design considers nodes ``i`` with private
information ``theta_i`` (their *type*) drawn from a type space
``Theta_i``; the mechanism implements an outcome ``f(theta)`` from a
set of feasible outcomes.  This module provides the small amount of
structure the rest of the library needs: finite or sampled type
spaces, immutable type profiles with ``theta_{-i}`` surgery, and a
generic outcome wrapper.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from ..errors import MechanismError

AgentId = Hashable
TypeT = TypeVar("TypeT", bound=Hashable)


class TypeSpace(Generic[TypeT]):
    """The set ``Theta_i`` of possible types for one node.

    Either an explicit finite set (``values``) for exhaustive
    verification, or a sampler for continuous spaces where faithfulness
    is checked statistically.
    """

    def __init__(
        self,
        values: Optional[Iterable[TypeT]] = None,
        sampler: Optional[Callable[[random.Random], TypeT]] = None,
        name: str = "Theta",
    ) -> None:
        self._values: Optional[Tuple[TypeT, ...]] = (
            tuple(values) if values is not None else None
        )
        self._sampler = sampler
        self.name = name
        if self._values is None and self._sampler is None:
            raise MechanismError("a type space needs values or a sampler")
        if self._values is not None and not self._values:
            raise MechanismError("a finite type space cannot be empty")

    @property
    def is_finite(self) -> bool:
        """True if the space can be enumerated exactly."""
        return self._values is not None

    @property
    def values(self) -> Tuple[TypeT, ...]:
        """All types (finite spaces only)."""
        if self._values is None:
            raise MechanismError(f"type space {self.name!r} is not finite")
        return self._values

    def sample(self, rng: random.Random) -> TypeT:
        """Draw one type."""
        if self._sampler is not None:
            return self._sampler(rng)
        assert self._values is not None
        return rng.choice(self._values)

    def __contains__(self, value: TypeT) -> bool:
        if self._values is None:
            return True  # samplers define open-ended spaces
        return value in self._values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._values is not None:
            return f"TypeSpace({self.name!r}, |Theta|={len(self._values)})"
        return f"TypeSpace({self.name!r}, sampled)"


class TypeProfile(Generic[TypeT]):
    """An immutable assignment of one type per agent (``theta``)."""

    def __init__(self, assignment: Mapping[AgentId, TypeT]) -> None:
        if not assignment:
            raise MechanismError("a type profile cannot be empty")
        self._assignment: Dict[AgentId, TypeT] = dict(assignment)

    @property
    def agents(self) -> Tuple[AgentId, ...]:
        """All agent ids, repr-sorted."""
        return tuple(sorted(self._assignment, key=repr))

    def type_of(self, agent: AgentId) -> TypeT:
        """``theta_i``."""
        try:
            return self._assignment[agent]
        except KeyError:
            raise MechanismError(f"no type for agent {agent!r}") from None

    def replace(self, agent: AgentId, new_type: TypeT) -> "TypeProfile[TypeT]":
        """The profile ``(hat-theta_i, theta_{-i})``."""
        if agent not in self._assignment:
            raise MechanismError(f"no type for agent {agent!r}")
        merged = dict(self._assignment)
        merged[agent] = new_type
        return TypeProfile(merged)

    def without(self, agent: AgentId) -> Dict[AgentId, TypeT]:
        """``theta_{-i}`` as a plain dict."""
        return {a: t for a, t in self._assignment.items() if a != agent}

    def as_dict(self) -> Dict[AgentId, TypeT]:
        """Copy of the full assignment."""
        return dict(self._assignment)

    def __getitem__(self, agent: AgentId) -> TypeT:
        return self.type_of(agent)

    def __iter__(self) -> Iterator[AgentId]:
        return iter(self.agents)

    def __len__(self) -> int:
        return len(self._assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeProfile):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        # lint: allow[hash-escape] in-process dict-key protocol only; delegates to a repr-canonicalised tuple and never reaches wire payloads or digests
        return hash(tuple(sorted(self._assignment.items(), key=repr)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TypeProfile({self._assignment!r})"


@dataclass(frozen=True)
class Outcome:
    """A mechanism outcome: a decision plus per-agent transfers.

    ``decision`` is domain-specific (a chosen leader, a set of routes).
    ``transfers`` holds payments *to* each agent (negative = the agent
    pays), the quasi-linear convention used throughout.
    """

    decision: Any
    transfers: Mapping[AgentId, float] = field(default_factory=dict)

    def transfer_to(self, agent: AgentId) -> float:
        """The payment flowing to one agent (0 if absent)."""
        return self.transfers.get(agent, 0.0)


def enumerate_profiles(
    spaces: Mapping[AgentId, TypeSpace[TypeT]]
) -> Iterator[TypeProfile[TypeT]]:
    """All joint type profiles of finite spaces (exhaustive checks)."""
    agents = sorted(spaces, key=repr)
    for space in spaces.values():
        if not space.is_finite:
            raise MechanismError("cannot enumerate a sampled type space")
    for combo in itertools.product(*(spaces[a].values for a in agents)):
        yield TypeProfile(dict(zip(agents, combo, strict=True)))


def sample_profiles(
    spaces: Mapping[AgentId, TypeSpace[TypeT]],
    rng: random.Random,
    count: int,
) -> List[TypeProfile[TypeT]]:
    """Independent joint samples (statistical checks)."""
    agents = sorted(spaces, key=repr)
    return [
        TypeProfile({a: spaces[a].sample(rng) for a in agents})
        for _ in range(count)
    ]
