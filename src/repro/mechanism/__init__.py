"""Mechanism design core: centralized MD, VCG, distributed specs,
solution concepts, and the faithfulness verifiers of Sections 3.2-3.8.
"""

from .centralized import (
    DirectRevelationMechanism,
    StrategyproofnessReport,
    StrategyproofnessViolation,
    audit_strategyproofness,
)
from .distributed import (
    DistributedMechanism,
    DistributedStrategy,
    MechanismRun,
    OutcomeEngine,
)
from .faithfulness import (
    CompatibilityReport,
    FaithfulnessVerdict,
    check_ac,
    check_cc,
    check_compatibility,
    check_ic,
    check_strong_ac,
    check_strong_cc,
    proposition1_verdict,
    proposition2_verdict,
)
from .solution import (
    EquilibriumReport,
    EquilibriumViolation,
    check_dominant_strategy,
    check_ex_post_nash,
)
from .types import (
    AgentId,
    Outcome,
    TypeProfile,
    TypeSpace,
    enumerate_profiles,
    sample_profiles,
)
from .utility import UtilityFunction
from .vcg import make_vcg_mechanism, vcg_outcome

__all__ = [
    "AgentId",
    "CompatibilityReport",
    "DirectRevelationMechanism",
    "DistributedMechanism",
    "DistributedStrategy",
    "EquilibriumReport",
    "EquilibriumViolation",
    "FaithfulnessVerdict",
    "MechanismRun",
    "Outcome",
    "OutcomeEngine",
    "StrategyproofnessReport",
    "StrategyproofnessViolation",
    "TypeProfile",
    "TypeSpace",
    "UtilityFunction",
    "audit_strategyproofness",
    "check_ac",
    "check_cc",
    "check_compatibility",
    "check_dominant_strategy",
    "check_ex_post_nash",
    "check_ic",
    "check_strong_ac",
    "check_strong_cc",
    "enumerate_profiles",
    "make_vcg_mechanism",
    "proposition1_verdict",
    "proposition2_verdict",
    "sample_profiles",
    "vcg_outcome",
]
