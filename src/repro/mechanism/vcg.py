"""Generic Vickrey-Clarke-Groves mechanisms.

FPSS achieves strategyproofness "by using a Vickrey-Clarke-Groves (VCG)
mechanism where transit nodes are paid based on the utility that they
bring to the routing system plus their declared cost" (Section 4.1).
This module provides VCG over an explicit finite decision set — used by
the leader-election example and the Proposition-2 test fixtures — while
:mod:`repro.routing.vcg_payments` specialises the payment formula for
the routing domain.

Given reported types ``theta-hat`` and a reported-value function
``v_i(d; theta-hat_i)``:

* decision: ``d* = argmax_d sum_i v_i(d; theta-hat_i)``;
* Clarke payment to agent ``i``:
  ``h_i = sum_{j != i} v_j(d*) - max_d sum_{j != i} v_j(d)``
  (a non-positive pivot; the agent receives its externality).

Truthful reporting is then a dominant strategy for quasi-linear agents.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Optional, Sequence, Tuple, TypeVar

from ..errors import MechanismError
from .centralized import DirectRevelationMechanism
from .types import AgentId, Outcome, TypeProfile, TypeSpace
from .utility import UtilityFunction

TypeT = TypeVar("TypeT", bound=Hashable)
Decision = Hashable

#: Reported value of a decision to one agent given its reported type.
ReportedValuation = Callable[[AgentId, Decision, object], float]


def _best_decision(
    decisions: Sequence[Decision],
    agents: Sequence[AgentId],
    profile: TypeProfile,
    valuation: ReportedValuation,
    exclude: Optional[AgentId] = None,
) -> Tuple[Decision, float]:
    """Welfare-maximising decision (optionally excluding one agent).

    Deterministic tie-break by decision repr so that every node (and
    every checker replaying a node) picks the same optimum.
    """
    best = None
    best_welfare = None
    for decision in sorted(decisions, key=repr):
        welfare = sum(
            valuation(agent, decision, profile.type_of(agent))
            for agent in agents
            if agent != exclude
        )
        if best_welfare is None or welfare > best_welfare:
            best, best_welfare = decision, welfare
    assert best_welfare is not None
    return best, best_welfare


def vcg_outcome(
    decisions: Sequence[Decision],
    profile: TypeProfile,
    valuation: ReportedValuation,
) -> Outcome:
    """Run VCG once: efficient decision plus Clarke transfers."""
    if not decisions:
        raise MechanismError("VCG needs a non-empty decision set")
    agents = profile.agents
    decision, _ = _best_decision(decisions, agents, profile, valuation)
    transfers: Dict[AgentId, float] = {}
    for agent in agents:
        others_at_decision = sum(
            valuation(other, decision, profile.type_of(other))
            for other in agents
            if other != agent
        )
        _, others_best = _best_decision(
            decisions, agents, profile, valuation, exclude=agent
        )
        transfers[agent] = others_at_decision - others_best
    return Outcome(decision=decision, transfers=transfers)


def make_vcg_mechanism(
    decisions: Sequence[Decision],
    type_spaces: Mapping[AgentId, TypeSpace[TypeT]],
    valuation: ReportedValuation,
    name: str = "vcg",
) -> DirectRevelationMechanism[TypeT]:
    """Package VCG as a :class:`DirectRevelationMechanism`.

    The same ``valuation`` is used both as the *reported* valuation in
    the outcome rule and as the *true* valuation in utilities — the
    agent's report only enters through the outcome rule, as Definition
    5 requires.
    """
    frozen_decisions = tuple(decisions)

    def outcome_rule(reports: TypeProfile) -> Outcome:
        return vcg_outcome(frozen_decisions, reports, valuation)

    utility = UtilityFunction(
        lambda agent, decision, true_type: valuation(agent, decision, true_type)
    )
    return DirectRevelationMechanism(
        outcome_rule, type_spaces, utility, name=name
    )
