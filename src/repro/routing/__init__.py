"""FPSS interdomain routing: graphs, LCP oracle, payments, protocol.

Implements the substrate of the paper's Section 4 case study: the AS
graph model, the centralized lowest-cost-path and VCG payment oracle,
the DATA1-DATA4 mechanism tables (with the DATA3* identity-tag
extension), and the distributed, trusting FPSS protocol.
"""

from .convergence import (
    ConvergenceStats,
    build_plain_network,
    measure_convergence,
    run_construction_phases,
    run_plain_fpss,
    topology_from_graph,
    verify_against_kernel,
    verify_against_oracle,
)
from .kernel import (
    KernelSnapshot,
    KernelStats,
    MirrorKernelPool,
    ReplayKernel,
    SharedKernel,
    kernel_fixed_point,
)
from .fpss import (
    KIND_COST_DECL,
    KIND_PRICE_UPDATE,
    KIND_RT_UPDATE,
    FPSSComputation,
    FPSSNode,
    FullRecomputeFPSSNode,
    decode_avoid_vector,
    decode_route_vector,
    encode_avoid_vector,
    encode_route_vector,
)
from .formal import (
    FORMAL_DEVIATIONS,
    classification_of,
    formal_deviation,
    fpss_actions,
    fpss_state_machine,
    suggested_specification,
    suggested_update_round,
)
from .dynamic import (
    ChurnRunResult,
    DynamicTopologyEngine,
    EpochReport,
    run_dynamic_fpss,
    verify_epoch_equivalence,
)
from .engine import RoutingEngine, engine_for
from .graph import ASGraph, PathCost, figure1_graph
from .lcp import (
    all_pairs_lcp,
    lcp_cost,
    lcp_tree,
    lowest_cost_path,
    total_routing_cost,
)
from .tables import (
    INFINITY,
    PaymentList,
    PricingEntry,
    PricingTable,
    RouteEntry,
    RoutingTable,
    TransitCostTable,
)
from .vcg_payments import (
    NodeEconomics,
    RoutePayments,
    all_pairs_payments,
    economics_under_traffic,
    route_payments,
    utility_of_misreport,
    vcg_transit_payment,
)

__all__ = [
    "ASGraph",
    "FORMAL_DEVIATIONS",
    "classification_of",
    "formal_deviation",
    "fpss_actions",
    "fpss_state_machine",
    "suggested_specification",
    "suggested_update_round",
    "ChurnRunResult",
    "ConvergenceStats",
    "DynamicTopologyEngine",
    "EpochReport",
    "run_dynamic_fpss",
    "verify_epoch_equivalence",
    "FPSSComputation",
    "FPSSNode",
    "FullRecomputeFPSSNode",
    "INFINITY",
    "KernelSnapshot",
    "KernelStats",
    "MirrorKernelPool",
    "ReplayKernel",
    "SharedKernel",
    "kernel_fixed_point",
    "verify_against_kernel",
    "KIND_COST_DECL",
    "KIND_PRICE_UPDATE",
    "KIND_RT_UPDATE",
    "NodeEconomics",
    "PathCost",
    "PaymentList",
    "PricingEntry",
    "PricingTable",
    "RouteEntry",
    "RoutePayments",
    "RoutingEngine",
    "RoutingTable",
    "TransitCostTable",
    "all_pairs_lcp",
    "all_pairs_payments",
    "build_plain_network",
    "decode_avoid_vector",
    "decode_route_vector",
    "economics_under_traffic",
    "encode_avoid_vector",
    "encode_route_vector",
    "engine_for",
    "figure1_graph",
    "lcp_cost",
    "lcp_tree",
    "lowest_cost_path",
    "measure_convergence",
    "route_payments",
    "run_construction_phases",
    "run_plain_fpss",
    "topology_from_graph",
    "total_routing_cost",
    "utility_of_misreport",
    "verify_against_oracle",
]
