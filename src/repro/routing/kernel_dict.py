"""The retained dict-keyed FPSS replay kernel: the columnar oracle.

Reproduces: the iterative FPSS calculation of Shneidman & Parkes,
"Specification Faithfulness in Networks with Rational Nodes" (PODC'04),
Section 4 -- the same state machine as
:class:`~repro.routing.kernel.ReplayKernel`, retained in its original
per-key dict form when the hot path moved to flat id-indexed columns.

:class:`DictReplayKernel` is the *reference semantics* of the columnar
kernel: every observable -- wire delta rows, changed-key sets, table
digests, withdrawal behaviour -- is property-tested bit-identical
against this oracle across withdrawal streams, churn epochs, deviant op
logs, and hash seeds (``tests/routing/test_columnar_kernel.py``).  The
oracle runs only in tests and parity sweeps, never on the protocol hot
path, and shares the candidate-ordering helpers (``_sort_key``,
``_lex_key``, the stripped-candidate comparators) with the columnar
kernel so the two implementations cannot drift on tie-breaking.
"""

from __future__ import annotations

# purity: kernel

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import ProtocolError
from ..sim.crypto import stable_hash
from ..sim.messages import NodeId
from .graph import Cost
from .kernel import (
    _BASE,
    AvoidKey,
    AvoidVector,
    KernelSnapshot,
    KernelStats,
    RouteVector,
    _lex_key,
    _sort_key,
    _stripped_beats_base,
    _stripped_equal,
    _stripped_worse,
)
from .tables import PricingTable, RouteEntry, RoutingTable, TransitCostTable

class DictReplayKernel:
    """Pure FPSS mechanism state for one node (or one replay of one).

    A message-driven state machine: :meth:`apply_route_delta` /
    :meth:`apply_avoid_delta` ingest wire rows (fusing the monotone
    avoidance relaxation into ingestion), the ``recompute_*`` methods
    settle the dirty keys, :meth:`consume_route_delta` /
    :meth:`consume_avoid_delta` read the changed-key sets off as the
    next suggested-specification broadcasts, and the digest methods
    hash the tables for bank comparison.  Determinism matters beyond
    tidiness: checker mirrors replay a principal's kernel on copies of
    its messages, and replay only works because the kernel is a pure
    function of (identity, neighbour set, op sequence).

    Parameters
    ----------
    owner:
        The node whose computation this is.
    neighbors:
        The owner's neighbour set (semi-private connectivity
        information; common knowledge between link endpoints).
    own_cost:
        The transit cost the owner *declares* (truthful for obedient
        nodes; a lie is an information-revelation deviation).
    """

    def __init__(
        self, owner: NodeId, neighbors: Sequence[NodeId], own_cost: Cost
    ) -> None:
        self.owner = owner
        self.neighbors: Tuple[NodeId, ...] = tuple(sorted(neighbors, key=repr))
        self._neighbor_set: FrozenSet[NodeId] = frozenset(self.neighbors)
        self.own_cost = float(own_cost)

        self.costs = TransitCostTable()  # DATA1
        self.costs.declare(owner, own_cost)
        self.routing = RoutingTable(owner)  # DATA2
        self.pricing = PricingTable(owner)  # DATA3*
        self.avoid: AvoidVector = {}
        #: Last routing/avoid vector received from each neighbour.
        self.neighbor_routes: Dict[NodeId, RouteVector] = {}
        self.neighbor_avoid: Dict[NodeId, AvoidVector] = {}
        self.computation_count = 0
        self.stats = KernelStats()
        self._reset_incremental_state()

    def _reset_incremental_state(self) -> None:
        """(Re)initialise the delta-recomputation bookkeeping."""
        #: Reference counts for the destination universe: +1 per
        #: neighbour vector currently announcing the destination, +1 if
        #: it is a neighbour (the base case of the relaxation).  A
        #: destination is relaxed only while its count is positive —
        #: the same universe the full rescans derive on every call.
        self._dest_refs: Dict[NodeId, int] = {
            n: 1 for n in self.neighbors if n != self.owner
        }
        #: Routing dirty map: destination -> the set of neighbours
        #: whose input changed since the last relaxation, or ``None``
        #: for "rescan every candidate" (universe (re)entry, DATA1
        #: change).
        self._dirty_routes: Dict[NodeId, Optional[Set[NodeId]]] = {}
        #: Avoidance keys whose reigning argmin was invalidated and
        #: that need a full candidate rescan.  Improvements never land
        #: here — they are adopted directly during ingestion (the
        #: common, monotone case), with :attr:`_avoid_changed`
        #: accumulating whether any entry moved since the last
        #: recompute call.
        self._avoid_rescan: Set[AvoidKey] = set()
        self._avoid_changed = False
        self._dirty_pricing: Set[NodeId] = set()
        #: Destinations that (re)entered the universe and whose
        #: avoidance keys still need a rescan sweep.  Expanded lazily
        #: at the next recompute — and only over the keys that ever
        #: stored an offer — instead of eagerly marking n keys.
        self._avoid_dest_pending: Set[NodeId] = set()
        #: Per destination, the avoided ids that ever had a stored
        #: offer (grow-only, conservative).  The re-entry sweep scans
        #: exactly these keys: a key with no offer history and no base
        #: case (non-neighbour destination) is a no-op in
        #: :meth:`_relax_avoid`, so skipping it matches the full
        #: rescan; neighbour destinations keep the all-keys sweep for
        #: the base case.  Keys with replay state but no offer history
        #: cannot exist for non-neighbour destinations (the base case
        #: is their only supplier-free candidate source).
        self._avoid_keys_by_dest: Dict[NodeId, Set[NodeId]] = {}
        #: Keys whose DATA2/avoidance entries changed since the last
        #: announcement was encoded — the O(|changes|) source for delta
        #: broadcasts of the unmodified (suggested) specification.
        self._route_changes: Set[NodeId] = set()
        self._avoid_changes: Set[AvoidKey] = set()
        #: Last relaxation result per key: ``(supplier, stripped key)``
        #: where the supplier is the neighbour whose candidate won (or
        #: ``_BASE`` for the directly-connected base case) and the
        #: stripped key orders candidates without materialising them.
        #: Tracking the argmin makes a relaxation O(|changed inputs|)
        #: unless the winning input itself worsened.
        self._route_state: Dict[NodeId, Tuple] = {}
        self._avoid_state: Dict[AvoidKey, Tuple] = {}

    # ------------------------------------------------------------------
    # phase 1: transit cost dissemination
    # ------------------------------------------------------------------

    def note_cost_declaration(self, node: NodeId, cost: Cost) -> bool:
        """Record a flooded declaration; True if DATA1 changed.

        DATA1 is frozen before phase 2 in any honest run; if it does
        change while phase-2 state exists, every derived entry is
        conservatively marked dirty so the incremental relaxations stay
        equivalent to the full rescans.
        """
        changed = self.costs.declare(node, cost)
        if changed and (
            self.neighbor_routes or self.neighbor_avoid or self.routing.destinations
        ):
            self._mark_all_dirty()
        return changed

    def _mark_all_dirty(self) -> None:
        """Schedule a full re-relaxation through the incremental path."""
        known = [n for n in self.costs.as_dict() if n != self.owner]
        for dest in self._dest_refs:
            self._dirty_routes[dest] = None
            self._dirty_pricing.add(dest)
            for avoided in known:
                if avoided != dest:
                    self._avoid_rescan.add((dest, avoided))
        # Rows for routed destinations that dropped out of the universe
        # are still re-derived by the full derive_pricing; match it.
        # Marking them dirty also lets the incremental rescan withdraw
        # entries stranded by topology events (inert on static runs,
        # where the universe covers every routed destination).
        for dest in self.routing.destinations:
            if dest not in self._dest_refs:
                self._dirty_routes[dest] = None
            self._dirty_pricing.add(dest)
        self._avoid_rescan.update(self.avoid)

    def known_nodes(self) -> Tuple[NodeId, ...]:
        """Every node with a DATA1 entry, repr-sorted."""
        return tuple(sorted(self.costs.as_dict(), key=repr))

    # ------------------------------------------------------------------
    # topology deltas (dynamic networks)
    # ------------------------------------------------------------------
    #
    # These mutators model rare out-of-band events — a link failing or
    # being restored, a node leaving or changing its declared cost —
    # applied synchronously at network quiescence by the dynamic
    # topology engine.  Each one conservatively marks every derived
    # entry dirty: topology events are orders of magnitude rarer than
    # vector updates, so the equivalence argument stays the full
    # rescan's and no new incremental invariant is introduced.

    def detach_neighbor(self, neighbor: NodeId) -> None:
        """Remove a failed or departed link's peer from this kernel.

        Drops the neighbour's stored vectors (releasing their universe
        references) and its base-case candidacy; the next settle
        withdraws every entry the neighbour was supporting.
        """
        if neighbor not in self._neighbor_set:
            raise ProtocolError(
                f"{self.owner!r} cannot detach non-neighbour {neighbor!r}"
            )
        self.neighbors = tuple(n for n in self.neighbors if n != neighbor)
        self._neighbor_set = frozenset(self.neighbors)
        routes = self.neighbor_routes.pop(neighbor, None)
        if routes:
            for dest in routes:
                if dest != self.owner:
                    self._universe_discard(dest)
        self.neighbor_avoid.pop(neighbor, None)
        # The base-case reference held for the neighbour itself.
        self._universe_discard(neighbor)
        self._mark_all_dirty()

    def attach_neighbor(self, neighbor: NodeId) -> None:
        """Add a restored or newly created link's peer to this kernel.

        The peer starts with no stored vectors; the protocol layer is
        responsible for the one-off full-table exchange that re-seeds
        the delta streams across the new link.
        """
        if neighbor == self.owner or neighbor in self._neighbor_set:
            raise ProtocolError(
                f"{self.owner!r} cannot attach {neighbor!r} as a new neighbour"
            )
        self.neighbors = tuple(sorted(self.neighbors + (neighbor,), key=repr))
        self._neighbor_set = frozenset(self.neighbors)
        self._universe_add(neighbor)
        self._mark_all_dirty()

    def retract_cost_declaration(self, node: NodeId) -> bool:
        """Forget a departed node's DATA1 entry; True if it was known.

        Avoidance state keyed on the departed node is withdrawn
        directly: a fresh computation on the post-event graph never
        forms ``(dest, node)`` keys for a node it has no declaration
        for, and the relaxations skip unknown avoided ids.
        """
        if node == self.owner:
            raise ProtocolError(f"{self.owner!r} cannot retract its own cost")
        if not self.costs.retract(node):
            return False
        for key in [k for k in self.avoid if k[1] == node]:
            self._drop_avoid_entry(key)
        for key in [k for k in self._avoid_state if k[1] == node]:
            del self._avoid_state[key]
        if self.neighbor_routes or self.neighbor_avoid or self.routing.destinations:
            self._mark_all_dirty()
        return True

    def change_own_cost(self, cost: Cost) -> bool:
        """Adopt a new declared transit cost for the owner itself."""
        self.own_cost = float(cost)
        return self.note_cost_declaration(self.owner, cost)

    # ------------------------------------------------------------------
    # phase 2: routing and pricing
    # ------------------------------------------------------------------

    def reset_phase2(self) -> None:
        """Clear DATA2/DATA3* state for a phase restart."""
        self.routing = RoutingTable(self.owner)
        self.pricing = PricingTable(self.owner)
        self.avoid = {}
        self.neighbor_routes = {}
        self.neighbor_avoid = {}
        self._reset_incremental_state()

    # --- destination-universe reference counting ----------------------

    def _universe_add(self, dest: NodeId) -> None:
        count = self._dest_refs.get(dest, 0)
        self._dest_refs[dest] = count + 1
        if count == 0:
            # The destination just (re)entered the universe: avoidance
            # inputs stored for it while it was outside become
            # relaxable, exactly as the full rescan would now see them.
            self._dirty_routes[dest] = None
            self._dirty_pricing.add(dest)
            self._avoid_dest_pending.add(dest)

    def _universe_discard(self, dest: NodeId) -> None:
        count = self._dest_refs.get(dest, 0)
        if count <= 1:
            self._dest_refs.pop(dest, None)
            if count == 1:
                # The destination left the universe (its last offer was
                # withdrawn): schedule its avoidance keys so retained
                # entries are withdrawn by the incremental rescan.  The
                # offer history covers every key a *wire* withdrawal
                # can strand; base-case-only keys are released through
                # detach_neighbor, which marks everything dirty anyway.
                for avoided in self._avoid_keys_by_dest.get(dest, ()):
                    self._avoid_rescan.add((dest, avoided))
                self._dirty_pricing.add(dest)
        else:
            self._dest_refs[dest] = count - 1

    def _note_offer(self, dest: NodeId, avoided: NodeId) -> None:
        """Record offer history for one key (grow-only, sweep input).

        Every site that stores a previously absent offer must call
        this: the re-entry rescan sweep trusts the history to cover
        all keys a full rescan could act on.
        """
        offered = self._avoid_keys_by_dest
        keys = offered.get(dest)
        if keys is None:
            offered[dest] = {avoided}
        else:
            keys.add(avoided)

    def consume_route_changes(self) -> Set[NodeId]:
        """Destinations whose DATA2 entry changed since last consumed."""
        changes = self._route_changes
        self._route_changes = set()
        return changes

    def consume_avoid_changes(self) -> Set[AvoidKey]:
        """Avoidance keys whose entry changed since last consumed."""
        changes = self._avoid_changes
        self._avoid_changes = set()
        return changes

    def consume_route_delta(self) -> Tuple:
        """The next suggested-specification routing delta broadcast.

        Reads the changed-key set in O(|changes|) and consumes it.
        Principals with an unmodified broadcast hook and checker
        mirrors both encode from here, which is what keeps actual and
        predicted broadcast streams bit-identical.  A changed key whose
        entry was deleted (a destination withdrawn by a topology event)
        becomes the withdrawal row ``(dest, None, ())``; on a static
        graph deletions never happen and no withdrawal is ever emitted.
        """
        routing = self.routing
        return tuple(
            (dest, entry.cost, entry.path)
            if (entry := routing.entry(dest)) is not None
            else (dest, None, ())
            for dest in sorted(self.consume_route_changes(), key=_sort_key)
        )

    def consume_avoid_delta(self) -> Tuple:
        """The next suggested-specification avoidance delta broadcast.

        Deleted avoidance entries become withdrawal rows
        ``(dest, avoided, None, ())``, mirroring
        :meth:`consume_route_delta`.
        """
        avoid = self.avoid
        return tuple(
            (key[0], key[1], entry.cost, entry.path)
            if (entry := avoid.get(key)) is not None
            else (key[0], key[1], None, ())
            for key in sorted(
                self.consume_avoid_changes(),
                key=lambda k: (_sort_key(k[0]), _sort_key(k[1])),
            )
        )

    # --- neighbour vector ingestion -----------------------------------
    #
    # Offers are stored *raw* as ``(cost, path)`` tuples straight off
    # the wire: with broadcast fan-out every announcement is ingested
    # by every neighbour, so per-row materialisation (entry objects,
    # sort keys) would dominate the hot path.  Entries are only
    # materialised for adopted winners.

    def apply_route_update(self, neighbor: NodeId, vector: RouteVector) -> None:
        """Store a neighbour's *full* routing vector (dict form).

        Diffs against the previously stored vector and marks only the
        destinations whose rows changed as dirty.  The protocol's wire
        path uses :meth:`apply_route_delta`; this entry point serves
        replay tests and any caller holding a whole table.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a route update from non-neighbour {neighbor!r}"
            )
        raw = {
            dest: (dest, entry.cost, entry.path) for dest, entry in vector.items()
        }
        stored = self.neighbor_routes.get(neighbor)
        if stored is None:
            stored = self.neighbor_routes[neighbor] = {}
        owner = self.owner
        dirty = self._dirty_routes
        for dest in sorted(stored.keys() | raw.keys(), key=_sort_key):
            offer = raw.get(dest)
            if stored.get(dest) == offer:
                continue
            if offer is None:
                del stored[dest]
                if dest != owner:
                    self._universe_discard(dest)
            else:
                if dest != owner and dest not in stored:
                    self._universe_add(dest)
                stored[dest] = offer
            if dest != owner:
                suppliers = dirty.get(dest)
                if suppliers is not None:
                    suppliers.add(neighbor)
                elif dest not in dirty:
                    dirty[dest] = {neighbor}
                # an existing None sentinel already demands a full rescan

    def apply_route_delta(self, neighbor: NodeId, rows: Sequence[Tuple]) -> None:
        """Ingest a wire delta produced by ``encode_route_delta``.

        Upserts ``(dest, cost, path)`` rows, removes withdrawal rows
        (``cost is None``), and marks each touched destination dirty
        with this neighbour as the changed supplier.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a route update from non-neighbour {neighbor!r}"
            )
        stored = self.neighbor_routes.get(neighbor)
        if stored is None:
            stored = self.neighbor_routes[neighbor] = {}
        owner = self.owner
        dirty = self._dirty_routes
        self.stats.rows_ingested += len(rows)
        for row in rows:
            dest = row[0]
            if row[1] is None:  # withdrawal
                if dest in stored:
                    del stored[dest]
                    if dest != owner:
                        self._universe_discard(dest)
            else:
                if dest != owner and dest not in stored:
                    self._universe_add(dest)
                stored[dest] = row  # rows are shared across receivers
            if dest != owner:
                suppliers = dirty.get(dest)
                if suppliers is not None:
                    suppliers.add(neighbor)
                elif dest not in dirty:
                    dirty[dest] = {neighbor}

    def apply_avoid_update(self, neighbor: NodeId, vector: AvoidVector) -> None:
        """Store a neighbour's *full* avoidance vector (dict form).

        Marks changed ``(destination, avoided)`` keys dirty, and their
        destinations' pricing rows with them: even a value-preserving
        tie change can alter a DATA3* identity tag.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a price update from non-neighbour {neighbor!r}"
            )
        raw = {
            key: (key[0], key[1], entry.cost, entry.path)
            for key, entry in vector.items()
        }
        stored = self.neighbor_avoid.get(neighbor)
        if stored is None:
            stored = self.neighbor_avoid[neighbor] = {}
        rescan = self._avoid_rescan
        for key in sorted(
            stored.keys() | raw.keys(), key=lambda k: (_sort_key(k[0]), _sort_key(k[1]))
        ):
            offer = raw.get(key)
            if stored.get(key) == offer:
                continue
            if offer is None:
                del stored[key]
            else:
                if key not in stored:
                    self._note_offer(key[0], key[1])
                stored[key] = offer
            rescan.add(key)
            self._dirty_pricing.add(key[0])

    def apply_avoid_delta(self, neighbor: NodeId, rows: Sequence[Tuple]) -> None:
        """Ingest a wire delta, fusing the monotone relaxation step.

        Every ``(dest, avoided, cost, path)`` row is stored as a raw
        offer; rows that *improve* on the reigning argmin are adopted
        immediately (a running min over the batch — confluent, so the
        batch-boundary result equals a batch-end relaxation), rows that
        worsen or withdraw the reigning argmin schedule a full rescan
        of the key, and strictly dominated rows — the overwhelming
        majority under broadcast fan-in — cost one comparison.
        Pricing rows are marked dirty only when a row can join, leave,
        or move the argmin tie, since DATA3* tags depend on exactly
        that set.  Every per-row invariant (neighbour cost, table
        references, the offer counter) is hoisted out of the loop.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a price update from non-neighbour {neighbor!r}"
            )
        stored = self.neighbor_avoid.get(neighbor)
        if stored is None:
            stored = self.neighbor_avoid[neighbor] = {}
        ncost = self.costs.get(neighbor)
        owner = self.owner
        refs = self._dest_refs
        state = self._avoid_state
        rescan_add = self._avoid_rescan.add
        pricing_add = self._dirty_pricing.add
        changes_add = self._avoid_changes.add
        note_offer = self._note_offer
        knows = self.costs.knows
        avoid = self.avoid
        stored_get = stored.get
        state_get = state.get
        avoid_changed = self._avoid_changed
        self.stats.rows_ingested += len(rows)
        if ncost is None:
            # Unusable offers (neighbour cost unknown), exactly as in a
            # full scan: store rows for later rescans, nothing to relax.
            for row in rows:
                dest, avoided, cost, path = row
                key = (dest, avoided)
                old = stored_get(key)
                if cost is None:
                    if old is not None:
                        del stored[key]
                    continue
                stored[key] = row
                if old is None:
                    note_offer(dest, avoided)
            return
        for row in rows:
            dest, avoided, cost, path = row
            key = (dest, avoided)
            old = stored_get(key)
            if cost is None:  # withdrawal
                if old is None:
                    continue
                del stored[key]
                st = state_get(key)
                if st is not None:
                    if st[0] == neighbor:
                        rescan_add(key)
                        pricing_add(dest)
                    elif ncost + old[2] <= st[1]:
                        pricing_add(dest)  # an argmin tie may shrink
                continue
            stored[key] = row  # rows are shared across receivers
            if old is None:
                note_offer(dest, avoided)
            if dest not in refs:
                # Entries freeze outside the destination universe (the
                # full rescan skips them too); re-entry rescans.
                pricing_add(dest)
                continue
            total = ncost + cost
            st = state_get(key)
            if st is None:
                # First valid candidate for this key (any earlier offer
                # would have been relaxed into a state entry).
                if (
                    avoided != owner
                    and avoided != dest
                    and knows(avoided)
                    and owner not in path
                    and avoided not in path
                ):
                    state[key] = (neighbor, total, len(path), path)
                    avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
                    changes_add(key)
                    avoid_changed = True
                    pricing_add(dest)
                continue
            st_cost = st[1]
            if st[0] == neighbor:
                # The reigning supplier re-announced: improved offers
                # stay adopted, worsened or invalid ones force a rescan.
                if owner in path or avoided in path:
                    rescan_add(key)
                    pricing_add(dest)
                    continue
                hops = len(path)
                if total < st_cost or (
                    total == st_cost
                    and (
                        hops < st[2]
                        or (hops == st[2] and _lex_key(path) < _lex_key(st[3]))
                    )
                ):
                    state[key] = (neighbor, total, hops, path)
                    avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
                    changes_add(key)
                    avoid_changed = True
                    pricing_add(dest)
                elif total == st_cost and hops == st[2] and path == st[3]:
                    pricing_add(dest)  # value-identical re-announce
                else:
                    rescan_add(key)
                    pricing_add(dest)
                continue
            if total > st_cost:
                # Dominated row — the hot path.  It still displaces the
                # neighbour's previous offer, which may have been tied
                # with the argmin.
                if old is not None and ncost + old[2] <= st_cost:
                    pricing_add(dest)
                continue
            if owner in path or avoided in path:
                if old is not None and ncost + old[2] <= st_cost:
                    pricing_add(dest)
                continue
            if total == st_cost:
                hops = len(path)
                if hops < st[2] or (
                    hops == st[2] and _lex_key(path) < _lex_key(st[3])
                ):
                    state[key] = (neighbor, total, hops, path)
                    avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
                    changes_add(key)
                    avoid_changed = True
                pricing_add(dest)  # joins or reshapes the tie either way
                continue
            state[key] = (neighbor, total, len(path), path)
            avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
            changes_add(key)
            avoid_changed = True
            pricing_add(dest)
        self._avoid_changed = avoid_changed

    # --- routing relaxation -------------------------------------------
    #
    # Candidates are compared through *stripped* keys ``(cost, hops,
    # lex)``: the actual candidate sort key is ``(cost, hops + 1,
    # (repr(owner),) + lex)`` with the owner prefix shared by every
    # candidate of a node, so dropping it is a monotone transformation
    # that preserves the argmin and every tie.  Cost is compared first
    # and the lexicographic component is built only on full ties, so
    # the common case never touches repr.  The per-key relaxation state
    # ``(supplier, cost, hops, path)`` remembers the reigning argmin:
    # as long as the winner's own input did not worsen, a relaxation
    # only scans the suppliers whose input changed.

    def recompute_routes(self) -> bool:
        """Re-derive DATA2 by rescanning every destination; True if changed.

        The relaxation is the path-vector Bellman-Ford of the
        Griffin-Wilfong model with the deterministic (cost, hops,
        lexicographic) tie-break shared with the centralized oracle.
        This full rescan is the reference the incremental variant is
        property-tested against; the hot path uses
        :meth:`recompute_routes_incremental`.
        """
        self.computation_count += 1
        changed = False
        destinations: Set[NodeId] = set()
        for vector in self.neighbor_routes.values():
            destinations.update(vector)
        destinations.update(self.neighbors)
        # Destinations with an installed entry but no remaining offer
        # (withdrawn by topology events) must be rescanned so the entry
        # is deleted; on a static graph this union adds nothing.
        destinations.update(self.routing.destinations)
        destinations.discard(self.owner)
        for destination in sorted(destinations, key=repr):
            if self._relax_route(destination):
                changed = True
        self._dirty_routes = {}
        return changed

    def recompute_routes_incremental(self) -> bool:
        """Relax only the dirty destinations; True if DATA2 changed.

        Observably identical to :meth:`recompute_routes` because a
        destination's candidate set depends only on its own rows in the
        neighbour vectors (diffed on ingestion) and on DATA1 (frozen in
        phase 2, conservatively handled otherwise).
        """
        self.computation_count += 1
        dirty = self._dirty_routes
        if not dirty:
            return False
        self._dirty_routes = {}
        refs = self._dest_refs
        changed = False
        for destination, suppliers in dirty.items():
            if destination not in refs:
                # Outside the universe the full rescan finds no
                # candidates either: withdraw any retained entry;
                # rejoining re-marks the destination dirty.
                if self._drop_route_entry(destination):
                    changed = True
                continue
            if self._relax_route(destination, suppliers):
                changed = True
        return changed

    def _drop_route_entry(self, destination: NodeId) -> bool:
        """Withdraw a destination's DATA2 entry; True if one existed."""
        self._route_state.pop(destination, None)
        if self.routing.remove(destination):
            self._route_changes.add(destination)
            self._dirty_pricing.add(destination)
            return True
        return False

    def _drop_avoid_entry(self, key: AvoidKey) -> bool:
        """Withdraw one avoidance entry; True if one existed."""
        self._avoid_state.pop(key, None)
        if self.avoid.pop(key, None) is not None:
            self._avoid_changes.add(key)
            self._dirty_pricing.add(key[0])
            return True
        return False

    def _relax_route(
        self, destination: NodeId, suppliers: Optional[Set[NodeId]] = None
    ) -> bool:
        """Relax one destination; True if its DATA2 entry changed.

        ``suppliers`` limits the scan to the neighbours whose input
        changed (``None`` rescans everything): if the previous winner
        is not among them it still bounds the minimum, and if it is but
        improved, it still wins against the unchanged rest — only a
        worsened winner forces the full rescan.
        """
        owner = self.owner
        state = self._route_state.get(destination)
        cur = self.routing.entry(destination)
        full = suppliers is None
        self.stats.route_relaxations += 1
        if cur is not None and state is None:
            # The entry lost its supporting candidate in an earlier
            # no-candidate rescan; only a full rescan may touch it.
            full = True
        # best: (supplier, cost, hops, offer path) stripped candidate.
        best = None
        keep = False
        if not full and state is not None:
            sup = state[0]
            if sup is not _BASE and sup in suppliers:
                offer = self.neighbor_routes.get(sup, {}).get(destination)
                cand = None
                if offer is not None:
                    cost = self.costs.get(sup)
                    opath = offer[2]
                    if cost is not None and owner not in opath:
                        cand = (sup, cost + offer[1], len(opath), opath)
                if cand is None or _stripped_worse(cand, state):
                    full = True  # the reigning input worsened: rescan
                else:
                    best = cand
            else:
                best = state
                keep = True
        if full:
            self.stats.route_rescans += 1
        costs_get = self.costs.get
        routes_get = self.neighbor_routes.get
        # lint: allow[unordered-iter] argmin over the strict total order (cost, hops, lex key) is iteration-order independent
        for neighbor in (self.neighbors if full else suppliers):
            if neighbor == destination:
                if state is None or full:
                    if best is None or _stripped_beats_base(destination, best):
                        best = (_BASE, 0.0, 1, (destination,))
                        keep = False
                continue
            if best is not None and neighbor == best[0]:
                continue
            vec = routes_get(neighbor)
            offer = vec.get(destination) if vec else None
            if offer is None:
                continue
            ncost = costs_get(neighbor)
            if ncost is None:
                continue
            total = ncost + offer[1]
            opath = offer[2]
            if best is not None:
                bcost = best[1]
                if total > bcost:
                    continue
                hops = len(opath)
                if total == bcost:
                    bhops = best[2]
                    if hops > bhops:
                        continue
                    if hops == bhops and _lex_key(opath) >= _lex_key(best[3]):
                        continue
            if owner in opath:
                continue
            best = (neighbor, total, len(opath), opath)
            keep = False
        if best is None:
            # Only a full rescan can reach here with an entry installed
            # (partial scans keep the reigning argmin as a bound), so a
            # surviving entry genuinely has no candidate left anywhere:
            # the destination became unreachable and is withdrawn, just
            # as a fresh computation on the shrunken graph would never
            # have derived it.  On a static graph this never fires —
            # obedient neighbours never retract their offers.
            if state is not None:
                del self._route_state[destination]
            if cur is not None:
                self.routing.remove(destination)
                self._route_changes.add(destination)
                self._dirty_pricing.add(destination)
                return True
            return False
        if keep:
            return False
        if state is not None:
            if _stripped_equal(best, state):
                self._route_state[destination] = best
                return False
        elif cur is not None and (
            best[1] == cur.cost
            and best[2] == len(cur.path) - 1
            and _lex_key(tuple(best[3])) == _lex_key(cur.path[1:])
        ):
            # The rescan re-derived the previously unsupported entry.
            self._route_state[destination] = best
            return False
        self._route_state[destination] = best
        sup, total, _hops, opath = best
        if sup is _BASE:
            entry = RouteEntry(cost=0.0, path=(owner, destination))
        else:
            entry = RouteEntry(cost=total, path=(owner,) + tuple(opath))
        self.routing.update(destination, entry)
        self._route_changes.add(destination)
        self._dirty_pricing.add(destination)
        return True

    # --- avoidance relaxation -----------------------------------------

    def recompute_avoidance(self) -> bool:
        """Re-derive the avoidance table by full rescan; True if changed.

        Reference counterpart of
        :meth:`recompute_avoidance_incremental`, retained for phase
        starts and the equivalence property tests.  The returned flag
        also covers entries already moved by the fused ingestion since
        the previous recompute call, so "did anything change since the
        last recomputation" keeps its meaning in every mode.
        """
        self.computation_count += 1
        changed = self._avoid_changed
        self._avoid_changed = False
        all_nodes = set(self.known_nodes())
        destinations: Set[NodeId] = set()
        for vector in self.neighbor_routes.values():
            destinations.update(vector)
        destinations.update(self.neighbors)
        destinations.discard(self.owner)
        # Entries whose destination left the universe, or keyed on a
        # node without a DATA1 entry, have no counterpart in a fresh
        # fixed point: withdraw them before relaxing (static runs never
        # produce such keys).
        stale = [
            key
            for key in self.avoid
            if key[0] not in destinations or key[1] not in all_nodes
        ]
        for key in sorted(stale, key=lambda k: (_sort_key(k[0]), _sort_key(k[1]))):
            if self._drop_avoid_entry(key):
                changed = True
        if not any(self.neighbor_avoid.values()):
            # Without avoidance inputs only the base case can supply a
            # candidate, so only directly-connected destinations matter
            # (typical at a phase start) — plus destinations that still
            # hold entries, which the rescan must be able to withdraw.
            destinations &= set(self.neighbors) | {key[0] for key in self.avoid}
        for destination in sorted(destinations, key=repr):
            for avoided in sorted(all_nodes, key=repr):
                if avoided in (self.owner, destination):
                    continue
                if self._relax_avoid(destination, avoided):
                    changed = True
        self._avoid_rescan = set()
        self._avoid_dest_pending = set()
        return changed

    def recompute_avoidance_incremental(self) -> bool:
        """Settle the avoidance table; True if it changed.

        Improvements were already adopted during ingestion (the
        :attr:`_avoid_changed` flag); what remains is rescanning the
        keys whose reigning argmin was invalidated — worsened,
        withdrawn, or whose destination (re)entered the universe.
        """
        self.computation_count += 1
        changed = self._avoid_changed
        self._avoid_changed = False
        rescan = self._avoid_rescan
        pending = self._avoid_dest_pending
        if pending:
            self._avoid_dest_pending = set()
            refs = self._dest_refs
            offered = self._avoid_keys_by_dest
            neighbor_set = self._neighbor_set
            owner = self.owner
            for dest in sorted(pending, key=_sort_key):
                if dest not in refs:
                    continue  # left the universe again; re-entry re-pends
                if dest in neighbor_set:
                    # The base case supplies a candidate for every
                    # avoided id, so neighbour destinations sweep the
                    # whole key row.
                    for avoided in self.costs.as_dict():
                        if avoided != owner and avoided != dest:
                            rescan.add((dest, avoided))
                    continue
                # Non-neighbour destination: only keys that ever stored
                # an offer can yield or invalidate anything; the rest
                # are no-ops in the full rescan too.
                for avoided in offered.get(dest, ()):
                    if avoided != owner and avoided != dest:
                        rescan.add((dest, avoided))
        if rescan:
            self._avoid_rescan = set()
            refs = self._dest_refs
            costs = self.costs
            owner = self.owner
            for key in sorted(
                rescan, key=lambda k: (_sort_key(k[0]), _sort_key(k[1]))
            ):
                destination, avoided = key
                if destination not in refs:
                    # Outside the universe a fresh fixed point holds no
                    # entry: withdraw any retained one (rejoining the
                    # universe re-marks the key).
                    if self._drop_avoid_entry(key):
                        changed = True
                    continue
                if avoided == owner or avoided == destination:
                    continue
                if not costs.knows(avoided):
                    # No DATA1 entry for the avoided node (retracted by
                    # a departure): the key cannot exist freshly.
                    if self._drop_avoid_entry(key):
                        changed = True
                    continue
                if self._relax_avoid(destination, avoided):
                    changed = True
        return changed

    def _relax_avoid(self, destination: NodeId, avoided: NodeId) -> bool:
        """Fully rescan one avoidance key; True if its entry changed.

        Same stripped-candidate scan as :meth:`_relax_route`, with the
        avoided node excluded both as a neighbour and inside paths.
        """
        owner = self.owner
        key = (destination, avoided)
        state = self._avoid_state.get(key)
        cur = self.avoid.get(key)
        best = None
        self.stats.avoid_rescans += 1
        costs_get = self.costs.get
        avoid_get = self.neighbor_avoid.get
        for neighbor in self.neighbors:
            if neighbor == avoided:
                continue
            if neighbor == destination:
                if best is None or _stripped_beats_base(destination, best):
                    best = (_BASE, 0.0, 1, (destination,))
                continue
            vec = avoid_get(neighbor)
            offer = vec.get(key) if vec else None
            if offer is None:
                continue
            ncost = costs_get(neighbor)
            if ncost is None:
                continue
            total = ncost + offer[2]
            opath = offer[3]
            if best is not None:
                bcost = best[1]
                if total > bcost:
                    continue
                hops = len(opath)
                if total == bcost:
                    bhops = best[2]
                    if hops > bhops:
                        continue
                    if hops == bhops and _lex_key(opath) >= _lex_key(best[3]):
                        continue
            if owner in opath or avoided in opath:
                continue
            best = (neighbor, total, len(opath), opath)
        if best is None:
            # No candidate anywhere supports this key: withdraw the
            # entry (topology events only — static runs never retract
            # offers, so this branch is inert there).
            if state is not None:
                del self._avoid_state[key]
            if cur is not None:
                del self.avoid[key]
                self._avoid_changes.add(key)
                self._dirty_pricing.add(destination)
                return True
            return False
        if state is not None:
            if _stripped_equal(best, state):
                self._avoid_state[key] = best
                return False
        elif cur is not None and (
            best[1] == cur.cost
            and best[2] == len(cur.path) - 1
            and _lex_key(tuple(best[3])) == _lex_key(cur.path[1:])
        ):
            # The rescan re-derived the previously unsupported entry.
            self._avoid_state[key] = best
            return False
        self._avoid_state[key] = best
        sup, total, _hops, opath = best
        if sup is _BASE:
            entry = RouteEntry(cost=0.0, path=(owner, destination))
        else:
            entry = RouteEntry(cost=total, path=(owner,) + tuple(opath))
        self.avoid[key] = entry
        self._avoid_changes.add(key)
        self._dirty_pricing.add(destination)
        return True

    # --- pricing derivation -------------------------------------------

    def derive_pricing(self) -> bool:
        """Recompute DATA3* from DATA2 and the avoidance table.

        For every destination ``j`` with a route, and every transit
        node ``k`` interior to that route, install

            price = c_k + d^{-k}(owner, j) - d(owner, j)

        with the identity tag set to the argmin suppliers of the
        avoidance entry.  Returns True if any cell changed.  Full-table
        reference counterpart of :meth:`derive_pricing_incremental`.
        """
        self.computation_count += 1
        changed = False
        for destination in self.routing.destinations:
            if self._derive_pricing_row(destination):
                changed = True
        # Rows whose destination lost its route (withdrawn by topology
        # events) are cleared — a fresh computation never derives them.
        routed = set(self.routing.destinations)
        for destination in self.pricing.destinations:
            if destination not in routed and self._clear_pricing_row(destination):
                changed = True
        self._dirty_pricing = set()
        return changed

    def derive_pricing_incremental(self) -> bool:
        """Re-derive only the dirty pricing rows; True if changed.

        A row depends on its destination's DATA2 entry, the avoidance
        entries along that path, and the supplier tags (which read the
        avoidance *inputs* directly — a tie union can change a tag
        without changing any avoidance entry, which is why vector
        ingestion marks rows dirty by input key, not by entry change).
        """
        self.computation_count += 1
        dirty = self._dirty_pricing
        if not dirty:
            return False
        self._dirty_pricing = set()
        changed = False
        for destination in sorted(dirty, key=_sort_key):
            if self.routing.entry(destination) is None:
                # No route (possibly withdrawn): clear any retained row;
                # a route arriving later re-marks it.
                if self._clear_pricing_row(destination):
                    changed = True
                continue
            if self._derive_pricing_row(destination):
                changed = True
        return changed

    def _clear_pricing_row(self, destination: NodeId) -> bool:
        """Clear one DATA3* row; True if it held any cell."""
        if self.pricing.row(destination):
            self.pricing.clear_destination(destination)
            return True
        return False

    def _derive_pricing_row(self, destination: NodeId) -> bool:
        """Re-derive one destination's DATA3* row; True if it changed."""
        entry = self.routing.entry(destination)
        assert entry is not None
        desired: Dict[NodeId, Tuple[Cost, FrozenSet[NodeId]]] = {}
        for transit in entry.path[1:-1]:
            avoid_entry = self.avoid.get((destination, transit))
            if avoid_entry is None or not self.costs.knows(transit):
                continue
            price = self.costs.cost(transit) + avoid_entry.cost - entry.cost
            tag = self._supplier_tag(destination, transit)
            desired[transit] = (price, tag)
        current_row = self.pricing.row(destination)
        current_view = {
            transit: (cell.price, cell.tag) for transit, cell in current_row.items()
        }
        if current_view == desired:
            return False
        self.pricing.clear_destination(destination)
        for transit, (price, tag) in desired.items():
            self.pricing.set_price(destination, transit, price, tag)
        return True

    def _supplier_tag(self, destination: NodeId, avoided: NodeId) -> FrozenSet[NodeId]:
        """Argmin suppliers of one avoidance entry (union on ties)."""
        owner = self.owner
        key = (destination, avoided)
        best = None  # (cost, hops, path)
        tag: List[NodeId] = []
        costs_get = self.costs.get
        avoid_get = self.neighbor_avoid.get
        for neighbor in self.neighbors:
            if neighbor == avoided:
                continue
            if neighbor == destination:
                cand = (0.0, 1, (destination,))
            else:
                vec = avoid_get(neighbor)
                offer = vec.get(key) if vec else None
                if offer is None:
                    continue
                ncost = costs_get(neighbor)
                if ncost is None:
                    continue
                opath = offer[3]
                if owner in opath or avoided in opath:
                    continue
                cand = (ncost + offer[2], len(opath), opath)
            if best is None:
                best = cand
                tag = [neighbor]
                continue
            if cand[0] != best[0]:
                if cand[0] < best[0]:
                    best = cand
                    tag = [neighbor]
                continue
            if cand[1] != best[1]:
                if cand[1] < best[1]:
                    best = cand
                    tag = [neighbor]
                continue
            if cand[2] is best[2]:
                tag.append(neighbor)
                continue
            lex_c, lex_b = _lex_key(cand[2]), _lex_key(best[2])
            if lex_c < lex_b:
                best = cand
                tag = [neighbor]
            elif lex_c == lex_b:
                tag.append(neighbor)
        return frozenset(tag)

    # ------------------------------------------------------------------
    # digests for bank comparison, snapshots
    # ------------------------------------------------------------------

    def routing_digest(self) -> str:
        """Hash of DATA2 (BANK1 material)."""
        return self.routing.stable_digest()

    def pricing_digest(self) -> str:
        """Hash of DATA3* including tags (BANK2 material)."""
        return self.pricing.stable_digest()

    def cost_digest(self) -> str:
        """Hash of DATA1 (first-construction-phase checkpoint)."""
        return self.costs.stable_digest()

    def full_digest(self) -> str:
        """Combined digest over all construction state."""
        return stable_hash(
            (self.cost_digest(), self.routing_digest(), self.pricing_digest())
        )

    def settle(self) -> Tuple[Optional[Tuple], Optional[Tuple]]:
        """Run one incremental settle step; returns the emitted deltas.

        Relaxes routes, settles the avoidance table, re-derives dirty
        pricing rows, and consumes the changed-key sets into the
        suggested-specification broadcast deltas — ``(route_delta,
        avoid_delta)``, each ``None`` when that table did not change.
        This ordering *is* the replay-exactness contract: principals,
        shared kernels, forked mirrors, and the synchronous oracle all
        settle through this one implementation, which is what keeps
        their broadcast streams bit-identical; callers only differ in
        what they do with the deltas (announce, record, queue, post,
        or discard).
        """
        route_delta = (
            self.consume_route_delta()
            if self.recompute_routes_incremental()
            else None
        )
        avoid_delta = (
            self.consume_avoid_delta()
            if self.recompute_avoidance_incremental()
            else None
        )
        self.derive_pricing_incremental()
        return route_delta, avoid_delta

    def snapshot(self) -> KernelSnapshot:
        """Digest-level checkpoint of the current construction state.

        The bank-comparable view of the kernel at this instant; cheap
        (no table copies), immutable, and sufficient to compare two
        replays for observational equality.
        """
        return KernelSnapshot(
            owner=self.owner,
            cost_digest=self.cost_digest(),
            routing_digest=self.routing_digest(),
            pricing_digest=self.pricing_digest(),
            computation_count=self.computation_count,
        )
