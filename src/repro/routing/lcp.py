"""Centralized lowest-cost-path (LCP) oracle.

The cost of a path is the sum of the *transit costs of its interior
nodes*: packets cost nothing to originate or terminate, so endpoints
never contribute (Section 4.1).  This module computes LCPs with a
node-weighted Dijkstra and serves as the reference oracle the
distributed FPSS protocol must agree with.

Tie-breaking is deterministic: among equal-cost paths the oracle
prefers fewer hops, then the lexicographically smallest node sequence.
FPSS assumes ties are broken consistently network-wide; both the oracle
and the distributed protocol use this same rule.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Tuple

from ..errors import GraphError, RoutingError
from .graph import ASGraph, Cost, NodeId, PathCost

#: Sort key making path preference total and deterministic.
def _path_key(cost: Cost, path: Tuple[NodeId, ...]) -> Tuple:
    return (cost, len(path), tuple(repr(n) for n in path))


def lowest_cost_path(
    graph: ASGraph,
    source: NodeId,
    destination: NodeId,
    avoiding: Optional[NodeId] = None,
) -> PathCost:
    """The LCP from ``source`` to ``destination``.

    Parameters
    ----------
    graph:
        The AS graph with (declared) transit costs.
    avoiding:
        If given, paths through this node are forbidden — the
        ``-k`` restriction used in the VCG payment formula.

    Raises
    ------
    RoutingError
        If no path exists (e.g. avoidance disconnects the pair).
    """
    if source not in graph:
        raise GraphError(f"unknown source {source!r}")
    if destination not in graph:
        raise GraphError(f"unknown destination {destination!r}")
    if avoiding is not None and avoiding in (source, destination):
        raise RoutingError(
            f"cannot avoid endpoint {avoiding!r} of pair ({source!r}, {destination!r})"
        )
    if source == destination:
        return PathCost(path=(source,), cost=0.0)

    # Dijkstra where the "distance" to node v is the transit cost of the
    # best known path source..v, counting interior nodes only.  When we
    # extend a path ending at u by edge (u, v), u becomes interior
    # (unless u is the source) and contributes c_u.
    best: Dict[NodeId, Tuple[Cost, Tuple[NodeId, ...]]] = {}
    heap = [( _path_key(0.0, (source,)), 0.0, (source,) )]
    while heap:
        _, cost, path = heapq.heappop(heap)
        node = path[-1]
        if node in best and _path_key(*best[node]) <= _path_key(cost, path):
            continue
        best[node] = (cost, path)
        if node == destination:
            continue
        extension_cost = 0.0 if node == source else graph.cost(node)
        for neighbor in graph.neighbors(node):
            if neighbor == avoiding or neighbor in path:
                continue
            new_cost = cost + extension_cost
            new_path = path + (neighbor,)
            if neighbor in best and _path_key(*best[neighbor]) <= _path_key(
                new_cost, new_path
            ):
                continue
            heapq.heappush(heap, (_path_key(new_cost, new_path), new_cost, new_path))

    if destination not in best:
        detail = f" avoiding {avoiding!r}" if avoiding is not None else ""
        raise RoutingError(
            f"no path from {source!r} to {destination!r}{detail}"
        )
    cost, path = best[destination]
    return PathCost(path=path, cost=cost)


def lcp_cost(
    graph: ASGraph,
    source: NodeId,
    destination: NodeId,
    avoiding: Optional[NodeId] = None,
) -> Cost:
    """Just the cost of the LCP (convenience wrapper)."""
    return lowest_cost_path(graph, source, destination, avoiding=avoiding).cost


def lcp_tree(graph: ASGraph, source: NodeId) -> Dict[NodeId, PathCost]:
    """LCPs from ``source`` to every other node (Figure 1's bold tree)."""
    return {
        destination: lowest_cost_path(graph, source, destination)
        for destination in graph.nodes
        if destination != source
    }


def all_pairs_lcp(graph: ASGraph) -> Dict[Tuple[NodeId, NodeId], PathCost]:
    """LCPs for every ordered (source, destination) pair."""
    result: Dict[Tuple[NodeId, NodeId], PathCost] = {}
    for source in graph.nodes:
        for destination, path_cost in lcp_tree(graph, source).items():
            result[(source, destination)] = path_cost
    return result


def total_routing_cost(
    graph: ASGraph,
    truthful_graph: Optional[ASGraph] = None,
) -> Cost:
    """Sum of *true* costs of the LCPs chosen under declared costs.

    ``graph`` carries declared costs (which determine route choice);
    ``truthful_graph`` carries true costs (which determine the real
    resource usage).  With a single argument the two coincide.  This is
    the network-efficiency measure of Example 1: a lie that diverts
    traffic onto a path whose *true* cost is higher damages efficiency.
    """
    truth = truthful_graph if truthful_graph is not None else graph
    total = 0.0
    for source in graph.nodes:
        for destination in graph.nodes:
            if source == destination:
                continue
            chosen = lowest_cost_path(graph, source, destination)
            total += sum(truth.cost(k) for k in chosen.transit_nodes)
    return total
