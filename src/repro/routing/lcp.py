"""Centralized lowest-cost-path (LCP) oracle.

The cost of a path is the sum of the *transit costs of its interior
nodes*: packets cost nothing to originate or terminate, so endpoints
never contribute (Section 4.1).  This module is the stable functional
facade over :class:`repro.routing.engine.RoutingEngine`, which computes
LCPs with a predecessor-pointer, node-weighted Dijkstra and memoizes
whole single-source trees per graph.

Tie-breaking is deterministic: among equal-cost paths the oracle
prefers fewer hops, then the lexicographically smallest node sequence.
FPSS assumes ties are broken consistently network-wide; the engine, the
distributed protocol, and :meth:`repro.routing.tables.RouteEntry.sort_key`
all use this same rule.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import RoutingError
from .engine import RoutingEngine, engine_for
from .graph import ASGraph, Cost, NodeId, PathCost

__all__ = [
    "RoutingEngine",
    "engine_for",
    "lowest_cost_path",
    "lcp_cost",
    "lcp_tree",
    "all_pairs_lcp",
    "total_routing_cost",
]


def lowest_cost_path(
    graph: ASGraph,
    source: NodeId,
    destination: NodeId,
    avoiding: Optional[NodeId] = None,
) -> PathCost:
    """The LCP from ``source`` to ``destination``.

    Parameters
    ----------
    graph:
        The AS graph with (declared) transit costs.
    avoiding:
        If given, paths through this node are forbidden — the
        ``-k`` restriction used in the VCG payment formula.

    Raises
    ------
    RoutingError
        If no path exists (e.g. avoidance disconnects the pair).
    """
    return engine_for(graph).path(source, destination, avoiding=avoiding)


def lcp_cost(
    graph: ASGraph,
    source: NodeId,
    destination: NodeId,
    avoiding: Optional[NodeId] = None,
) -> Cost:
    """Just the cost of the LCP (convenience wrapper)."""
    return engine_for(graph).cost(source, destination, avoiding=avoiding)


def lcp_tree(
    graph: ASGraph,
    source: NodeId,
    avoiding: Optional[NodeId] = None,
) -> Dict[NodeId, PathCost]:
    """LCPs from ``source`` to every other node (Figure 1's bold tree).

    One Dijkstra run computes the whole tree.  With ``avoiding`` set,
    the tree is ``LCP_{-k}``.  Unreachable destinations (a disconnected
    graph, or pairs the avoided node disconnects) are absent from the
    result rather than raising, unlike the pairwise query.
    """
    return dict(engine_for(graph).tree(source, avoiding=avoiding))


def all_pairs_lcp(graph: ASGraph) -> Dict[Tuple[NodeId, NodeId], PathCost]:
    """LCPs for every ordered (source, destination) pair."""
    engine = engine_for(graph)
    result: Dict[Tuple[NodeId, NodeId], PathCost] = {}
    for source in graph.nodes:
        for destination, path_cost in engine.tree(source).items():
            result[(source, destination)] = path_cost
    return result


def total_routing_cost(
    graph: ASGraph,
    truthful_graph: Optional[ASGraph] = None,
) -> Cost:
    """Sum of *true* costs of the LCPs chosen under declared costs.

    ``graph`` carries declared costs (which determine route choice);
    ``truthful_graph`` carries true costs (which determine the real
    resource usage).  With a single argument the two coincide.  This is
    the network-efficiency measure of Example 1: a lie that diverts
    traffic onto a path whose *true* cost is higher damages efficiency.
    """
    truth = truthful_graph if truthful_graph is not None else graph
    engine = engine_for(graph)
    total = 0.0
    for source in graph.nodes:
        tree = engine.tree(source)
        for destination in graph.nodes:
            if source == destination:
                continue
            chosen = tree.get(destination)
            if chosen is None:
                raise RoutingError(
                    f"no path from {source!r} to {destination!r}"
                )
            total += sum(truth.cost(k) for k in chosen.transit_nodes)
    return total
