"""Formal state-machine model of the FPSS node (Sections 3.1 + 4.1).

The paper notes that the FPSS specification "could be formalized with a
state machine", and classifies its external actions:

* declaring the transit cost and providing connectivity information are
  **information-revelation** actions;
* relaying other nodes' transit-cost announcements are
  **message-passing** actions;
* updating and forwarding routing and pricing tables are
  **computation** actions;
* reporting payments to the bank is a further computation action.

This module builds that machine explicitly with the
:mod:`repro.specs` language, at the granularity of one input-handling
round, together with the suggested specification and the catalogue of
single-state deviations.  It is the bridge between the paper's formal
Section 3 machinery and the executable Section 4 protocol: the
machine's deviation classes match the classifications assigned to the
operational manipulation catalogue
(:data:`repro.faithful.manipulations.DEVIATION_CATALOGUE`), which
``tests/routing/test_formal.py`` verifies.
"""

from __future__ import annotations

import functools
from typing import Dict, Tuple

from ..specs import (
    Action,
    Specification,
    StateMachine,
    Transition,
    computation,
    internal,
    message_passing,
    revelation,
)

# ----------------------------------------------------------------------
# states: one handling round of the suggested node specification
# ----------------------------------------------------------------------

#: The node is idle, before declaring its type.
S_START = "start"
#: Declared; waiting for input (the hub state of the event loop).
S_READY = "ready"
#: A transit-cost announcement was received and recorded.
S_GOT_COST_DECL = "got-cost-decl"
#: A routing/pricing update was received; copies must go to checkers.
S_GOT_UPDATE = "got-update"
#: Copies forwarded; tables must be recomputed.
S_COPIED = "copied"
#: Tables recomputed; announcements are due if anything changed.
S_RECOMPUTED = "recomputed"
#: The bank asked for a digest/settlement report.
S_BANK_QUERY = "bank-query"
#: Terminal state of the modelled round.
S_DONE = "done"


@functools.lru_cache(maxsize=1)
def _cached_actions() -> Tuple[Action, ...]:
    return tuple(_build_actions())


def fpss_actions() -> Dict[str, Action]:
    """The classified action alphabet of the FPSS node machine."""
    return {action.name: action for action in _cached_actions()}


def _build_actions():
    actions = [
        # Information revelation (Definition 2).
        revelation("declare-true-cost", table="DATA1"),
        revelation("declare-false-cost", table="DATA1"),
        # Message passing (Definition 3).
        message_passing("relay-cost-declaration"),
        message_passing("drop-cost-declaration"),
        message_passing("forward-copies-to-checkers", rule="PRINC1/PRINC2"),
        message_passing("drop-checker-copies"),
        message_passing("alter-checker-copies"),
        # Computation (Definition 4).
        computation("recompute-tables-honestly", tables="DATA2/DATA3*"),
        computation("miscompute-tables", tables="DATA2/DATA3*"),
        computation("announce-tables", rule="PRINC1/PRINC2"),
        computation("announce-false-tables"),
        computation("suppress-announcement"),
        computation("report-honest-digest", rule="BANK1/BANK2"),
        computation("report-false-digest"),
        # Internal actions (unconstrained, Section 3.3).
        internal("record-input"),
        internal("await-input"),
        internal("note-bank-query"),
    ]
    return actions


@functools.lru_cache(maxsize=1)
def fpss_state_machine() -> StateMachine:
    """One input-handling round of the faithful FPSS node.

    Cached: all specifications over the machine must share one
    instance, since specification comparisons are machine-identity
    scoped.
    """
    a = fpss_actions()
    transitions = [
        # Startup: reveal the type (truthfully or not).
        Transition(S_START, a["declare-true-cost"], S_READY),
        Transition(S_START, a["declare-false-cost"], S_READY),
        # Cost-declaration flooding (first construction phase).
        Transition(S_READY, a["record-input"], S_GOT_COST_DECL),
        Transition(S_GOT_COST_DECL, a["relay-cost-declaration"], S_DONE),
        Transition(S_GOT_COST_DECL, a["drop-cost-declaration"], S_DONE),
        # Update handling (second construction phase, PRINC1/PRINC2).
        Transition(S_READY, a["await-input"], S_GOT_UPDATE),
        Transition(S_GOT_UPDATE, a["forward-copies-to-checkers"], S_COPIED),
        Transition(S_GOT_UPDATE, a["drop-checker-copies"], S_COPIED),
        Transition(S_GOT_UPDATE, a["alter-checker-copies"], S_COPIED),
        Transition(S_COPIED, a["recompute-tables-honestly"], S_RECOMPUTED),
        Transition(S_COPIED, a["miscompute-tables"], S_RECOMPUTED),
        Transition(S_RECOMPUTED, a["announce-tables"], S_DONE),
        Transition(S_RECOMPUTED, a["announce-false-tables"], S_DONE),
        Transition(S_RECOMPUTED, a["suppress-announcement"], S_DONE),
        # Bank interaction (checkpoints and settlement).
        Transition(S_READY, a["note-bank-query"], S_BANK_QUERY),
        Transition(S_BANK_QUERY, a["report-honest-digest"], S_DONE),
        Transition(S_BANK_QUERY, a["report-false-digest"], S_DONE),
    ]
    return StateMachine(
        states=[
            S_START,
            S_READY,
            S_GOT_COST_DECL,
            S_GOT_UPDATE,
            S_COPIED,
            S_RECOMPUTED,
            S_BANK_QUERY,
            S_DONE,
        ],
        initial_states=[S_START],
        transitions=transitions,
    )


def suggested_choices() -> Dict[str, str]:
    """State -> suggested action name (the faithful specification).

    The hub state ``ready`` is nondeterministic in the machine (the
    environment decides which input arrives); the suggested choice
    models the cost-declaration round.  Use :func:`suggested_update_round`
    for the update-handling projection.
    """
    return {
        S_START: "declare-true-cost",
        S_READY: "record-input",
        S_GOT_COST_DECL: "relay-cost-declaration",
        S_GOT_UPDATE: "forward-copies-to-checkers",
        S_COPIED: "recompute-tables-honestly",
        S_RECOMPUTED: "announce-tables",
        S_BANK_QUERY: "report-honest-digest",
    }


def _specification_from(choices: Dict[str, str], name: str) -> Specification:
    machine = fpss_state_machine()
    actions = fpss_actions()
    return Specification(
        machine,
        {state: actions[action] for state, action in choices.items()},
        name=name,
    )


def suggested_specification() -> Specification:
    """The suggested FPSS node specification ``s^m_i``."""
    return _specification_from(suggested_choices(), "fpss-suggested")


def suggested_update_round() -> Specification:
    """The suggested specification entering the update-handling branch."""
    choices = dict(suggested_choices())
    choices[S_READY] = "await-input"
    return _specification_from(choices, "fpss-suggested-update")


def suggested_bank_round() -> Specification:
    """The suggested specification entering the bank-query branch."""
    choices = dict(suggested_choices())
    choices[S_READY] = "note-bank-query"
    return _specification_from(choices, "fpss-suggested-bank")


def _base_for_state(state: str) -> Specification:
    """The suggested round whose environment reaches ``state``."""
    if state in (S_GOT_UPDATE, S_COPIED, S_RECOMPUTED):
        return suggested_update_round()
    if state == S_BANK_QUERY:
        return suggested_bank_round()
    return suggested_specification()


#: Formal single-state deviations mirroring the operational catalogue:
#: deviation name -> (state, deviant action name).
FORMAL_DEVIATIONS: Dict[str, Tuple[str, str]] = {
    "cost-lie": (S_START, "declare-false-cost"),
    "copy-drop": (S_GOT_UPDATE, "drop-checker-copies"),
    "copy-alter": (S_GOT_UPDATE, "alter-checker-copies"),
    "false-route-announce": (S_RECOMPUTED, "announce-false-tables"),
    "route-suppress": (S_RECOMPUTED, "suppress-announcement"),
    "routing-digest-lie": (S_BANK_QUERY, "report-false-digest"),
}


def formal_deviation(name: str) -> Specification:
    """The deviant specification for one catalogue entry."""
    state, action_name = FORMAL_DEVIATIONS[name]
    actions = fpss_actions()
    return _base_for_state(state).deviate(
        {state: actions[action_name]}, name=name
    )


def classification_of(name: str) -> frozenset:
    """Action classes touched by a formal deviation (Defs 2-4)."""
    state, _ = FORMAL_DEVIATIONS[name]
    return _base_for_state(state).deviation_classes(formal_deviation(name))
