"""The memoizing routing engine: single-source LCP trees at scale.

The seed oracle in :mod:`repro.routing.lcp` enumerated whole paths in
its priority queue, which is exponential in the worst case and
quadratic in path length even on friendly graphs.  This module replaces
it with a proper node-weighted Dijkstra that keeps ``(cost, hops)``
keys and predecessor pointers in the heap, resolves lexicographic ties
once per settled node, and computes a *whole single-source tree* per
run — including the ``LCP_{-k}`` avoidance trees the VCG payment
formula needs.

Tie-breaking is bit-identical to the seed oracle (and to
:meth:`repro.routing.tables.RouteEntry.sort_key`): among equal-cost
paths prefer fewer hops, then the lexicographically smallest
``repr``-keyed node sequence.  The per-node ``repr`` keys are computed
once per graph instead of once per heap operation.

:class:`RoutingEngine` memoizes every tree it computes, keyed by
``(source, avoiding)``.  All-pairs payments therefore cost one Dijkstra
run per source plus one per *distinct transit node* of that source's
tree, instead of one exponential search per (pair, transit) triple.
Graphs are immutable, so a module-level weak cache
(:func:`engine_for`) shares one engine per live graph across the
functional APIs in :mod:`repro.routing.lcp` and
:mod:`repro.routing.vcg_payments`.
"""

from __future__ import annotations

import heapq
import weakref
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import GraphError, RoutingError
from .graph import ASGraph, Cost, NodeId, PathCost

_INF = float("inf")


class RoutingEngine:
    """Cached lowest-cost-path trees over one immutable :class:`ASGraph`.

    One engine instance indexes the graph once (node order, costs,
    adjacency, per-node ``repr`` tie-break keys) and then serves LCP
    queries from memoized single-source trees.  ``avoiding`` trees —
    the ``-k`` restriction of the VCG payment rule — are ordinary trees
    on the graph minus one node and are cached the same way.
    """

    def __init__(self, graph: ASGraph) -> None:
        # Only extracted arrays are kept — a strong reference to the
        # graph here would pin every WeakKeyDictionary entry in
        # engine_for's cache forever (value referencing key).
        ids = graph.nodes
        self._ids: Tuple[NodeId, ...] = ids
        self._index: Dict[NodeId, int] = {node: i for i, node in enumerate(ids)}
        self._costs: List[Cost] = [graph.cost(node) for node in ids]
        #: Per-node repr computed once; the lex tie-break compares these.
        self._rkeys: List[str] = [repr(node) for node in ids]
        index = self._index
        self._adj: List[Tuple[int, ...]] = [
            tuple(index[m] for m in graph.neighbors(node)) for node in ids
        ]
        #: (source index, avoided index or -1) -> destination -> PathCost.
        self._trees: Dict[Tuple[int, int], Mapping[NodeId, PathCost]] = {}
        #: (source, avoided, frozenset of target indices) -> partial tree.
        self._partials: Dict[
            Tuple[int, int, frozenset], Mapping[NodeId, PathCost]
        ] = {}
        #: Dijkstra runs actually performed (cache misses).
        self.runs = 0
        #: Early-exit (partial) runs among ``runs``.
        self.partial_runs = 0
        #: Nodes settled across all runs (early exit keeps this low).
        self.settled = 0
        #: Tree queries served from cache.
        self.hits = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def tree(
        self, source: NodeId, avoiding: Optional[NodeId] = None
    ) -> Mapping[NodeId, PathCost]:
        """The LCP tree from ``source`` to every reachable destination.

        With ``avoiding`` set, paths through that node are forbidden
        (``LCP_{-k}``); destinations it disconnects are simply absent.
        The mapping is cached and read-only — copy before mutating.
        """
        src = self._index.get(source)
        if src is None:
            raise GraphError(f"unknown source {source!r}")
        if avoiding is None:
            avoid = -1
        else:
            maybe = self._index.get(avoiding)
            if maybe is None:
                raise GraphError(f"unknown node {avoiding!r}")
            if maybe == src:
                raise RoutingError(
                    f"cannot avoid the tree source {avoiding!r}"
                )
            avoid = maybe
        key = (src, avoid)
        cached = self._trees.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        tree = MappingProxyType(self._sssp(src, avoid))
        self._trees[key] = tree
        return tree

    def partial_tree(
        self,
        source: NodeId,
        targets: Iterable[NodeId],
        avoiding: Optional[NodeId] = None,
    ) -> Mapping[NodeId, PathCost]:
        """The LCP entries for just ``targets``, via early-exit Dijkstra.

        The run stops relaxing as soon as every requested target is
        settled, so on large graphs a handful of destinations costs a
        fraction of a full tree.  Entries are bit-identical to the
        corresponding :meth:`tree` entries (settled labels never change
        after settling), which the property tests assert.  Targets the
        restriction disconnects are absent, exactly as in :meth:`tree`.

        A full cached tree is reused when available; otherwise the
        partial result is cached under its own target set and promoted
        to nothing — full-tree queries stay full-tree computations.
        """
        src = self._index.get(source)
        if src is None:
            raise GraphError(f"unknown source {source!r}")
        avoid = -1
        if avoiding is not None:
            maybe = self._index.get(avoiding)
            if maybe is None:
                raise GraphError(f"unknown node {avoiding!r}")
            if maybe == src:
                raise RoutingError(
                    f"cannot avoid the tree source {avoiding!r}"
                )
            avoid = maybe
        wanted = []
        for target in targets:
            index = self._index.get(target)
            if index is None:
                raise GraphError(f"unknown destination {target!r}")
            if index != src and index != avoid:
                wanted.append(index)
        until = frozenset(wanted)

        full = self._trees.get((src, avoid))
        if full is not None:
            self.hits += 1
            ids = self._ids
            return MappingProxyType(
                {
                    ids[i]: full[ids[i]]
                    for i in sorted(until)
                    if ids[i] in full
                }
            )
        key = (src, avoid, until)
        cached = self._partials.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        settled = self._sssp(src, avoid, until=until)
        ids = self._ids
        partial = MappingProxyType(
            {
                ids[i]: settled[ids[i]]
                for i in sorted(until)
                if ids[i] in settled
            }
        )
        self._partials[key] = partial
        return partial

    def path(
        self,
        source: NodeId,
        destination: NodeId,
        avoiding: Optional[NodeId] = None,
    ) -> PathCost:
        """The LCP for one pair, with the seed oracle's exact contract.

        Raises :class:`GraphError` for unknown nodes and
        :class:`RoutingError` when ``avoiding`` is an endpoint or the
        pair is disconnected.
        """
        if source not in self._index:
            raise GraphError(f"unknown source {source!r}")
        if destination not in self._index:
            raise GraphError(f"unknown destination {destination!r}")
        if avoiding is not None and avoiding in (source, destination):
            raise RoutingError(
                f"cannot avoid endpoint {avoiding!r} of pair "
                f"({source!r}, {destination!r})"
            )
        if source == destination:
            return PathCost(path=(source,), cost=0.0)
        found = self.tree(source, avoiding).get(destination)
        if found is None:
            detail = f" avoiding {avoiding!r}" if avoiding is not None else ""
            raise RoutingError(
                f"no path from {source!r} to {destination!r}{detail}"
            )
        return found

    def cost(
        self,
        source: NodeId,
        destination: NodeId,
        avoiding: Optional[NodeId] = None,
    ) -> Cost:
        """Just the LCP cost for one pair."""
        return self.path(source, destination, avoiding=avoiding).cost

    def node_cost(self, node: NodeId) -> Cost:
        """The declared transit cost of one node."""
        index = self._index.get(node)
        if index is None:
            raise GraphError(f"unknown node {node!r}")
        return self._costs[index]

    # ------------------------------------------------------------------
    # cache control
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every memoized tree (the graph index is kept)."""
        self._trees.clear()
        self._partials.clear()

    @property
    def cached_trees(self) -> int:
        """How many single-source trees are currently memoized."""
        return len(self._trees)

    # ------------------------------------------------------------------
    # the Dijkstra core
    # ------------------------------------------------------------------

    def _sssp(
        self, src: int, avoid: int, until: Optional[frozenset] = None
    ) -> Dict[NodeId, PathCost]:
        """One node-weighted Dijkstra run from ``src``.

        The heap holds ``(cost, path_len, seq)`` keys only; predecessor
        pointers replace full paths.  Lexicographic ties are resolved
        once per settled node by comparing candidate predecessors'
        repr-key sequences, which reproduces the seed oracle's
        ``(cost, len(path), tuple(repr(n) for n in path))`` preference
        exactly: a settled node's interior prefixes always settle
        first, so every tying predecessor is available for comparison.

        With ``until`` (a set of node indices) the run stops once every
        listed index is settled.  Settling order is identical to the
        full run up to that point, so the labels of settled nodes —
        including their tie-breaks — match the full tree exactly.
        """
        self.runs += 1
        remaining = None
        if until is not None:
            self.partial_runs += 1
            remaining = set(until)
            remaining.discard(src)
            remaining.discard(avoid)
            if not remaining:
                return {}
        ids = self._ids
        costs = self._costs
        adj = self._adj
        rkeys = self._rkeys
        n = len(ids)

        dist: List[Cost] = [_INF] * n
        # Mirrors the seed's len(path) component (nodes, not edges).
        plen: List[int] = [0] * n
        settled: List[bool] = [False] * n
        paths: List[Optional[Tuple[NodeId, ...]]] = [None] * n
        lexpaths: List[Optional[Tuple[str, ...]]] = [None] * n

        dist[src] = 0.0
        plen[src] = 1
        heap: List[Tuple[Cost, int, int, int]] = [(0.0, 1, 0, src)]
        seq = 1
        push = heapq.heappush
        pop = heapq.heappop
        result: Dict[NodeId, PathCost] = {}

        while heap:
            cost, length, _, node = pop(heap)
            if settled[node]:
                continue
            settled[node] = True
            self.settled += 1
            if node == src:
                paths[src] = (ids[src],)
                lexpaths[src] = (rkeys[src],)
            else:
                # Choose the predecessor: every settled neighbour whose
                # own label extends to exactly this (cost, length) label
                # ties; the lexicographically smallest extension wins.
                best_u = -1
                best_lex: Optional[Tuple[str, ...]] = None
                rk = rkeys[node]
                for u in adj[node]:
                    if not settled[u]:
                        continue
                    step = 0.0 if u == src else costs[u]
                    if dist[u] + step == cost and plen[u] + 1 == length:
                        if best_u < 0:
                            best_u = u
                        else:
                            if best_lex is None:
                                best_lex = lexpaths[best_u] + (rk,)
                            challenger = lexpaths[u] + (rk,)
                            if challenger < best_lex:
                                best_u = u
                                best_lex = challenger
                paths[node] = paths[best_u] + (ids[node],)
                lexpaths[node] = lexpaths[best_u] + (rk,)
                result[ids[node]] = PathCost(path=paths[node], cost=cost)
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            extension = 0.0 if node == src else costs[node]
            base = cost + extension
            next_length = length + 1
            for v in adj[node]:
                if v == avoid or settled[v]:
                    continue
                label = dist[v]
                if base < label or (base == label and next_length < plen[v]):
                    dist[v] = base
                    plen[v] = next_length
                    push(heap, (base, next_length, seq, v))
                    seq += 1
        return result


#: One shared engine per live graph; graphs are immutable, so trees
#: computed for any caller stay valid for every other caller.
_ENGINES: "weakref.WeakKeyDictionary[ASGraph, RoutingEngine]" = (
    weakref.WeakKeyDictionary()
)


def engine_for(graph: ASGraph) -> RoutingEngine:
    """The shared :class:`RoutingEngine` for a graph (weakly cached)."""
    engine = _ENGINES.get(graph)
    if engine is None:
        engine = RoutingEngine(graph)
        _ENGINES[graph] = engine
    return engine
