"""The memoizing routing engine: single-source LCP trees at scale.

The seed oracle in :mod:`repro.routing.lcp` enumerated whole paths in
its priority queue, which is exponential in the worst case and
quadratic in path length even on friendly graphs.  This module replaces
it with a proper node-weighted Dijkstra that keeps ``(cost, hops)``
keys and predecessor pointers in the heap, resolves lexicographic ties
once per settled node, and computes a *whole single-source tree* per
run — including the ``LCP_{-k}`` avoidance trees the VCG payment
formula needs.

Tie-breaking is bit-identical to the seed oracle (and to
:meth:`repro.routing.tables.RouteEntry.sort_key`): among equal-cost
paths prefer fewer hops, then the lexicographically smallest
``repr``-keyed node sequence.  The per-node ``repr`` keys are computed
once per graph instead of once per heap operation.

:class:`RoutingEngine` memoizes every tree it computes, keyed by
``(source, avoiding)``.  All-pairs payments therefore cost one Dijkstra
run per source plus one per *distinct transit node* of that source's
tree, instead of one exponential search per (pair, transit) triple.
Graphs are immutable, so a module-level weak cache
(:func:`engine_for`) shares one engine per live graph across the
functional APIs in :mod:`repro.routing.lcp` and
:mod:`repro.routing.vcg_payments`.

Cost-only queries are cheaper still.  Node-weighted path costs are
direction-symmetric — reversing a path keeps its interior (transit)
set, so ``cost(i, j, avoiding=k) == cost(j, i, avoiding=k)`` — which
lets :meth:`RoutingEngine.cost` and the batched
:meth:`RoutingEngine.detour_costs` serve a query from a tree rooted at
*either* endpoint.  When no tree covers the pair, a cost-only Dijkstra
(no path reconstruction, no lexicographic tie-breaks: the minimum cost
is the same for every tying path) fills a separate, lighter cache.
"""

from __future__ import annotations

import heapq
import weakref
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import GraphError, RoutingError
from .graph import ASGraph, Cost, NodeId, PathCost

_INF = float("inf")

#: Cache-miss sentinel for cost lookups, distinct from ``None`` (which
#: is an authoritative "disconnected" answer from a complete tree).
_MISS = object()


class RoutingEngine:
    """Cached lowest-cost-path trees over one immutable :class:`ASGraph`.

    One engine instance indexes the graph once (node order, costs,
    adjacency, per-node ``repr`` tie-break keys) and then serves LCP
    queries from memoized single-source trees.  ``avoiding`` trees —
    the ``-k`` restriction of the VCG payment rule — are ordinary trees
    on the graph minus one node and are cached the same way.
    """

    def __init__(self, graph: ASGraph) -> None:
        # Only extracted arrays are kept — a strong reference to the
        # graph here would pin every WeakKeyDictionary entry in
        # engine_for's cache forever (value referencing key).
        ids = graph.nodes
        self._ids: Tuple[NodeId, ...] = ids
        self._index: Dict[NodeId, int] = {node: i for i, node in enumerate(ids)}
        self._costs: List[Cost] = [graph.cost(node) for node in ids]
        #: Per-node repr computed once; the lex tie-break compares these.
        self._rkeys: List[str] = [repr(node) for node in ids]
        index = self._index
        self._adj: List[Tuple[int, ...]] = [
            tuple(index[m] for m in graph.neighbors(node)) for node in ids
        ]
        #: (source index, avoided index or -1) -> destination -> PathCost.
        self._trees: Dict[Tuple[int, int], Mapping[NodeId, PathCost]] = {}
        #: (source, avoided, frozenset of target indices) -> partial tree.
        self._partials: Dict[
            Tuple[int, int, frozenset], Mapping[NodeId, PathCost]
        ] = {}
        #: (source index, avoided index or -1) -> (labels, complete):
        #: cost-only labels by node index — no paths, so far cheaper
        #: than ``_trees``.  ``complete`` False marks an early-exit
        #: run, where an absent index means "not settled", not
        #: "disconnected".
        self._cost_trees: Dict[
            Tuple[int, int], Tuple[Dict[int, Cost], bool]
        ] = {}
        #: Dijkstra runs actually performed (cache misses).
        self.runs = 0
        #: Early-exit (partial) runs among ``runs``.
        self.partial_runs = 0
        #: Cost-only runs (tracked separately from ``runs``).
        self.cost_runs = 0
        #: Nodes settled across all runs (early exit keeps this low).
        self.settled = 0
        #: Tree queries served from cache.
        self.hits = 0
        #: Cost queries served from a tree rooted at the other endpoint.
        self.symmetry_hits = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def tree(
        self, source: NodeId, avoiding: Optional[NodeId] = None
    ) -> Mapping[NodeId, PathCost]:
        """The LCP tree from ``source`` to every reachable destination.

        With ``avoiding`` set, paths through that node are forbidden
        (``LCP_{-k}``); destinations it disconnects are simply absent.
        The mapping is cached and read-only — copy before mutating.
        """
        src = self._index.get(source)
        if src is None:
            raise GraphError(f"unknown source {source!r}")
        if avoiding is None:
            avoid = -1
        else:
            maybe = self._index.get(avoiding)
            if maybe is None:
                raise GraphError(f"unknown node {avoiding!r}")
            if maybe == src:
                raise RoutingError(
                    f"cannot avoid the tree source {avoiding!r}"
                )
            avoid = maybe
        key = (src, avoid)
        cached = self._trees.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        tree = MappingProxyType(self._sssp(src, avoid))
        self._trees[key] = tree
        return tree

    def partial_tree(
        self,
        source: NodeId,
        targets: Iterable[NodeId],
        avoiding: Optional[NodeId] = None,
    ) -> Mapping[NodeId, PathCost]:
        """The LCP entries for just ``targets``, via early-exit Dijkstra.

        The run stops relaxing as soon as every requested target is
        settled, so on large graphs a handful of destinations costs a
        fraction of a full tree.  Entries are bit-identical to the
        corresponding :meth:`tree` entries (settled labels never change
        after settling), which the property tests assert.  Targets the
        restriction disconnects are absent, exactly as in :meth:`tree`.

        A full cached tree is reused when available; otherwise the
        partial result is cached under its own target set and promoted
        to nothing — full-tree queries stay full-tree computations.
        """
        src = self._index.get(source)
        if src is None:
            raise GraphError(f"unknown source {source!r}")
        avoid = -1
        if avoiding is not None:
            maybe = self._index.get(avoiding)
            if maybe is None:
                raise GraphError(f"unknown node {avoiding!r}")
            if maybe == src:
                raise RoutingError(
                    f"cannot avoid the tree source {avoiding!r}"
                )
            avoid = maybe
        wanted = []
        for target in targets:
            index = self._index.get(target)
            if index is None:
                raise GraphError(f"unknown destination {target!r}")
            if index != src and index != avoid:
                wanted.append(index)
        until = frozenset(wanted)

        full = self._trees.get((src, avoid))
        if full is not None:
            self.hits += 1
            ids = self._ids
            return MappingProxyType(
                {
                    ids[i]: full[ids[i]]
                    for i in sorted(until)
                    if ids[i] in full
                }
            )
        key = (src, avoid, until)
        cached = self._partials.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        settled = self._sssp(src, avoid, until=until)
        ids = self._ids
        partial = MappingProxyType(
            {
                ids[i]: settled[ids[i]]
                for i in sorted(until)
                if ids[i] in settled
            }
        )
        self._partials[key] = partial
        return partial

    def path(
        self,
        source: NodeId,
        destination: NodeId,
        avoiding: Optional[NodeId] = None,
    ) -> PathCost:
        """The LCP for one pair, with the seed oracle's exact contract.

        Raises :class:`GraphError` for unknown nodes and
        :class:`RoutingError` when ``avoiding`` is an endpoint or the
        pair is disconnected.
        """
        if source not in self._index:
            raise GraphError(f"unknown source {source!r}")
        if destination not in self._index:
            raise GraphError(f"unknown destination {destination!r}")
        if avoiding is not None and avoiding in (source, destination):
            raise RoutingError(
                f"cannot avoid endpoint {avoiding!r} of pair "
                f"({source!r}, {destination!r})"
            )
        if source == destination:
            return PathCost(path=(source,), cost=0.0)
        found = self.tree(source, avoiding).get(destination)
        if found is None:
            detail = f" avoiding {avoiding!r}" if avoiding is not None else ""
            raise RoutingError(
                f"no path from {source!r} to {destination!r}{detail}"
            )
        return found

    def cost(
        self,
        source: NodeId,
        destination: NodeId,
        avoiding: Optional[NodeId] = None,
    ) -> Cost:
        """Just the LCP cost for one pair (cost-only, symmetry-aware).

        A path's cost is the sum of its interior node costs, and
        reversing a path keeps its interior set, so
        ``cost(i, j, -k) == cost(j, i, -k)``: a cached tree rooted at
        either endpoint answers the query.  When neither endpoint has
        one, a cost-only Dijkstra runs from ``source`` — no path
        reconstruction and no lexicographic tie-breaks, because every
        tying path has the same (minimum) cost.  Validation matches
        :meth:`path` exactly.
        """
        src = self._index.get(source)
        if src is None:
            raise GraphError(f"unknown source {source!r}")
        dst = self._index.get(destination)
        if dst is None:
            raise GraphError(f"unknown destination {destination!r}")
        if avoiding is not None and avoiding in (source, destination):
            raise RoutingError(
                f"cannot avoid endpoint {avoiding!r} of pair "
                f"({source!r}, {destination!r})"
            )
        if src == dst:
            return 0.0
        avoid = -1
        if avoiding is not None:
            maybe = self._index.get(avoiding)
            if maybe is None:
                raise GraphError(f"unknown node {avoiding!r}")
            avoid = maybe
        found = self._pair_cost(src, dst, avoid)
        if found is None:
            detail = f" avoiding {avoiding!r}" if avoiding is not None else ""
            raise RoutingError(
                f"no path from {source!r} to {destination!r}{detail}"
            )
        return found

    def detour_costs(
        self,
        source: NodeId,
        avoiding: NodeId,
        destinations: Iterable[NodeId],
    ) -> Dict[NodeId, Cost]:
        """Batched ``LCP_{-k}`` costs: one source, many destinations.

        The batch shape of the VCG payment rule — every destination
        routed through transit node ``avoiding`` needs the detour cost
        around it.  Each destination is served from any cached tree
        rooted at either endpoint (cost symmetry); the remainder, if
        any, is covered by a *single* cost-only Dijkstra from
        ``source``.  Raises :class:`RoutingError` when a destination is
        disconnected by the restriction or coincides with an endpoint.
        """
        src = self._index.get(source)
        if src is None:
            raise GraphError(f"unknown source {source!r}")
        avoid = self._index.get(avoiding)
        if avoid is None:
            raise GraphError(f"unknown node {avoiding!r}")
        result: Dict[NodeId, Cost] = {}
        missing: List[Tuple[NodeId, int]] = []
        full = self._trees.get((src, avoid))
        cached = None if full is not None else self._cost_trees.get(
            (src, avoid)
        )
        for destination in destinations:
            dst = self._index.get(destination)
            if dst is None:
                raise GraphError(f"unknown destination {destination!r}")
            if destination in (source, avoiding):
                raise RoutingError(
                    f"cannot avoid endpoint {avoiding!r} of pair "
                    f"({source!r}, {destination!r})"
                )
            found: object
            if full is not None:
                entry = full.get(destination)
                found = None if entry is None else entry.cost
                self.hits += 1
            elif cached is not None:
                labels, labels_complete = cached
                found = labels.get(dst)
                if found is None and not labels_complete:
                    found = _MISS
                else:
                    self.hits += 1
            else:
                found = self._reverse_cost(src, dst, avoid)
            if found is _MISS:
                missing.append((destination, dst))
                continue
            if found is None:
                raise RoutingError(
                    f"no path from {source!r} to {destination!r} "
                    f"avoiding {avoiding!r}"
                )
            result[destination] = found
        if missing:
            fresh, complete = self._sssp_costs(
                src, avoid, until=[dst for _, dst in missing]
            )
            if cached is not None:
                stale, stale_complete = cached
                merged = dict(stale)
                merged.update(fresh)
                fresh, complete = merged, complete or stale_complete
            self._cost_trees[(src, avoid)] = (fresh, complete)
            for destination, dst in missing:
                found = fresh.get(dst)
                if found is None:
                    raise RoutingError(
                        f"no path from {source!r} to {destination!r} "
                        f"avoiding {avoiding!r}"
                    )
                result[destination] = found
        return result

    def source_detour_labels(
        self, source: NodeId
    ) -> Dict[NodeId, Dict[NodeId, Cost]]:
        """Every VCG detour cost from one source, in one repair sweep.

        Returns ``{k: {d: cost(source, d, avoiding=k)}}`` for each
        transit node ``k`` of the source's LCP tree, covering exactly
        the destinations routed through ``k``.  Instead of one Dijkstra
        per transit node, each ``LCP_{-k}`` is obtained by *decremental
        repair* of the base labels: a node whose tree path avoids ``k``
        keeps its label in the ``-k`` subgraph (its witness path
        survives, and labels cannot drop when paths are removed), so
        only the below-``k`` group is re-relaxed, seeded from its
        frozen boundary.  Labels are bit-identical to a from-scratch
        run — every label is the minimum over the same set of
        left-to-right path-cost sums.

        Raises :class:`RoutingError` naming the first destination a
        restriction disconnects (impossible on biconnected graphs).
        """
        base = self.tree(source)
        index = self._index
        ids = self._ids
        costs = self._costs
        adj = self._adj
        src = index[source]
        n = len(ids)
        base_label: List[Cost] = [_INF] * n
        base_label[src] = 0.0
        groups: Dict[int, List[int]] = {}
        for destination, entry in base.items():
            d = index[destination]
            base_label[d] = entry.cost
            for transit in entry.transit_nodes:
                groups.setdefault(index[transit], []).append(d)
        push = heapq.heappush
        pop = heapq.heappop
        # Per-``k`` scratch state is stamped with ``k`` instead of
        # reallocated: a slot belongs to the current group only when
        # its stamp matches (``k`` values are distinct node indices).
        member_of = [-1] * n
        dist: List[Cost] = [0.0] * n
        dist_stamp = [-1] * n
        settled_val: List[Cost] = [0.0] * n
        settled_stamp = [-1] * n
        out: Dict[NodeId, Dict[NodeId, Cost]] = {}
        for k, members in groups.items():
            for u in members:
                member_of[u] = k
            heap: List[Tuple[Cost, int]] = []
            # Boundary seeds: the cheapest single step from any frozen
            # neighbour into each group member.
            for u in members:
                best = _INF
                for m in adj[u]:
                    if m == k or member_of[m] == k:
                        continue
                    cand = 0.0 if m == src else base_label[m] + costs[m]
                    if cand < best:
                        best = cand
                if best < _INF:
                    dist[u] = best
                    dist_stamp[u] = k
                    heap.append((best, u))
            heapq.heapify(heap)
            while heap:
                label, u = pop(heap)
                if settled_stamp[u] == k:
                    continue
                settled_stamp[u] = k
                settled_val[u] = label
                through = label + costs[u]
                for v in adj[u]:
                    if member_of[v] == k and settled_stamp[v] != k:
                        if dist_stamp[v] != k or through < dist[v]:
                            dist[v] = through
                            dist_stamp[v] = k
                            push(heap, (through, v))
            detours: Dict[NodeId, Cost] = {}
            for u in members:
                if settled_stamp[u] != k:
                    raise RoutingError(
                        f"no path from {source!r} to {ids[u]!r} "
                        f"avoiding {ids[k]!r}"
                    )
                detours[ids[u]] = settled_val[u]
            out[ids[k]] = detours
        return out

    def _pair_cost(self, src: int, dst: int, avoid: int) -> Optional[Cost]:
        """Cost label for one indexed pair; ``None`` when disconnected.

        Lookup order: full tree at either endpoint, cost-only labels at
        either endpoint, then one fresh cost-only run from ``src``.
        """
        full = self._trees.get((src, avoid))
        if full is not None:
            self.hits += 1
            entry = full.get(self._ids[dst])
            return None if entry is None else entry.cost
        cached = self._cost_trees.get((src, avoid))
        if cached is not None:
            labels, complete = cached
            found = labels.get(dst)
            if found is not None or complete:
                self.hits += 1
                return found
        found = self._reverse_cost(src, dst, avoid)
        if found is not _MISS:
            return found
        labels, complete = self._sssp_costs(src, avoid)
        if cached is not None:
            merged = dict(cached[0])
            merged.update(labels)
            labels = merged
        self._cost_trees[(src, avoid)] = (labels, True)
        return labels.get(dst)

    def _reverse_cost(self, src: int, dst: int, avoid: int):
        """Serve ``cost(src -> dst, -avoid)`` from a tree rooted at
        ``dst``, or return the ``_MISS`` sentinel when none is cached.

        ``None`` (as opposed to ``_MISS``) is an authoritative answer:
        the reverse tree is complete and does not reach ``src``, so by
        cost symmetry the forward pair is disconnected too.
        """
        full = self._trees.get((dst, avoid))
        if full is not None:
            self.symmetry_hits += 1
            entry = full.get(self._ids[src])
            return None if entry is None else entry.cost
        cached = self._cost_trees.get((dst, avoid))
        if cached is not None:
            labels, complete = cached
            found = labels.get(src)
            if found is not None or complete:
                self.symmetry_hits += 1
                return found
        return _MISS

    def node_cost(self, node: NodeId) -> Cost:
        """The declared transit cost of one node."""
        index = self._index.get(node)
        if index is None:
            raise GraphError(f"unknown node {node!r}")
        return self._costs[index]

    # ------------------------------------------------------------------
    # cache control
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every memoized tree (the graph index is kept)."""
        self._trees.clear()
        self._partials.clear()
        self._cost_trees.clear()

    @property
    def cached_trees(self) -> int:
        """How many single-source trees are currently memoized."""
        return len(self._trees)

    @property
    def cached_cost_trees(self) -> int:
        """How many cost-only label sets are currently memoized."""
        return len(self._cost_trees)

    # ------------------------------------------------------------------
    # the Dijkstra core
    # ------------------------------------------------------------------

    def _sssp(
        self, src: int, avoid: int, until: Optional[frozenset] = None
    ) -> Dict[NodeId, PathCost]:
        """One node-weighted Dijkstra run from ``src``.

        The heap holds ``(cost, path_len, seq)`` keys only; predecessor
        pointers replace full paths.  Lexicographic ties are resolved
        once per settled node by comparing candidate predecessors'
        repr-key sequences, which reproduces the seed oracle's
        ``(cost, len(path), tuple(repr(n) for n in path))`` preference
        exactly: a settled node's interior prefixes always settle
        first, so every tying predecessor is available for comparison.

        With ``until`` (a set of node indices) the run stops once every
        listed index is settled.  Settling order is identical to the
        full run up to that point, so the labels of settled nodes —
        including their tie-breaks — match the full tree exactly.
        """
        self.runs += 1
        remaining = None
        if until is not None:
            self.partial_runs += 1
            remaining = set(until)
            remaining.discard(src)
            remaining.discard(avoid)
            if not remaining:
                return {}
        ids = self._ids
        costs = self._costs
        adj = self._adj
        rkeys = self._rkeys
        n = len(ids)

        dist: List[Cost] = [_INF] * n
        # Mirrors the seed's len(path) component (nodes, not edges).
        plen: List[int] = [0] * n
        settled: List[bool] = [False] * n
        paths: List[Optional[Tuple[NodeId, ...]]] = [None] * n
        lexpaths: List[Optional[Tuple[str, ...]]] = [None] * n

        dist[src] = 0.0
        plen[src] = 1
        heap: List[Tuple[Cost, int, int, int]] = [(0.0, 1, 0, src)]
        seq = 1
        push = heapq.heappush
        pop = heapq.heappop
        result: Dict[NodeId, PathCost] = {}

        while heap:
            cost, length, _, node = pop(heap)
            if settled[node]:
                continue
            settled[node] = True
            self.settled += 1
            if node == src:
                paths[src] = (ids[src],)
                lexpaths[src] = (rkeys[src],)
            else:
                # Choose the predecessor: every settled neighbour whose
                # own label extends to exactly this (cost, length) label
                # ties; the lexicographically smallest extension wins.
                best_u = -1
                best_lex: Optional[Tuple[str, ...]] = None
                rk = rkeys[node]
                for u in adj[node]:
                    if not settled[u]:
                        continue
                    step = 0.0 if u == src else costs[u]
                    if dist[u] + step == cost and plen[u] + 1 == length:
                        if best_u < 0:
                            best_u = u
                        else:
                            if best_lex is None:
                                best_lex = lexpaths[best_u] + (rk,)
                            challenger = lexpaths[u] + (rk,)
                            if challenger < best_lex:
                                best_u = u
                                best_lex = challenger
                paths[node] = paths[best_u] + (ids[node],)
                lexpaths[node] = lexpaths[best_u] + (rk,)
                result[ids[node]] = PathCost(path=paths[node], cost=cost)
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            extension = 0.0 if node == src else costs[node]
            base = cost + extension
            next_length = length + 1
            for v in adj[node]:
                if v == avoid or settled[v]:
                    continue
                label = dist[v]
                if base < label or (base == label and next_length < plen[v]):
                    dist[v] = base
                    plen[v] = next_length
                    push(heap, (base, next_length, seq, v))
                    seq += 1
        return result

    def _sssp_costs(
        self, src: int, avoid: int, until: Optional[Iterable[int]] = None
    ) -> Tuple[Dict[int, Cost], bool]:
        """One cost-only Dijkstra run from ``src`` (indexed labels).

        No predecessor pointers, no path tuples, no lexicographic
        resolution: the returned label is the *cost* of the LCP, which
        is identical for every tying path, so the result is bit-equal
        to the ``.cost`` fields of the corresponding :meth:`_sssp`
        tree.  Unreachable nodes (and ``src`` itself) are absent.

        With ``until`` (node indices) the run stops once every listed
        index has settled.  The second component reports whether the
        labels are *complete*: only then does an absent index mean
        "disconnected" rather than "not settled before the early
        exit".  An unreachable ``until`` member simply drains the heap,
        so exhaustion always yields a complete label set.
        """
        self.cost_runs += 1
        costs = self._costs
        adj = self._adj
        dist: List[Cost] = [_INF] * len(self._ids)
        dist[src] = 0.0
        heap: List[Tuple[Cost, int]] = [(0.0, src)]
        push = heapq.heappush
        pop = heapq.heappop
        result: Dict[int, Cost] = {}
        remaining = None
        if until is not None:
            remaining = set(until)
            remaining.discard(src)
            remaining.discard(avoid)
        complete = True
        while heap:
            label, node = pop(heap)
            if node == src:
                base = 0.0
            else:
                if node in result:
                    continue
                result[node] = label
                if remaining is not None:
                    remaining.discard(node)
                    if not remaining:
                        # Conservative: stale heap entries alone would
                        # still make a complete set, but flagging them
                        # partial only costs a future re-run.
                        complete = not heap
                        break
                base = label + costs[node]
            for v in adj[node]:
                if v == avoid:
                    continue
                if base < dist[v]:
                    dist[v] = base
                    push(heap, (base, v))
        return result, complete


#: One shared engine per live graph; graphs are immutable, so trees
#: computed for any caller stay valid for every other caller.
_ENGINES: "weakref.WeakKeyDictionary[ASGraph, RoutingEngine]" = (
    weakref.WeakKeyDictionary()
)


def engine_for(graph: ASGraph) -> RoutingEngine:
    """The shared :class:`RoutingEngine` for a graph (weakly cached)."""
    engine = _ENGINES.get(graph)
    if engine is None:
        engine = RoutingEngine(graph)
        _ENGINES[graph] = engine
    return engine
