"""FPSS/VCG transit payments (centralized reference).

FPSS pays each transit node based on the utility it brings to the
routing system plus its declared cost: for a packet from ``i`` to ``j``
whose LCP passes through transit node ``k``,

    p^{ij}_k = c_k + cost(LCP_{-k}(i, j)) - cost(LCP(i, j))

where ``LCP_{-k}`` is the lowest-cost path avoiding ``k``.  Nodes not
on the LCP receive nothing.  Biconnectivity guarantees ``LCP_{-k}``
exists, so every payment is well-defined.

This module is the centralized oracle; the distributed protocol in
:mod:`repro.routing.fpss` must converge to the same values, and the
strategyproofness benchmark (experiment E3) sweeps misreports against
these payments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import RoutingError
from .engine import RoutingEngine, engine_for
from .graph import ASGraph, Cost, NodeId, PathCost


@dataclass(frozen=True)
class RoutePayments:
    """The LCP for one (source, destination) pair and its payments."""

    source: NodeId
    destination: NodeId
    route: PathCost
    payments: Mapping[NodeId, Cost]

    @property
    def total_payment(self) -> Cost:
        """Sum paid by the source for one packet on this route."""
        return sum(self.payments.values())


def vcg_transit_payment(
    graph: ASGraph, source: NodeId, destination: NodeId, transit: NodeId
) -> Cost:
    """The per-packet VCG payment to one transit node.

    Returns 0 for nodes not on the LCP (their marginal contribution is
    nil).  Raises :class:`RoutingError` if ``transit`` is an endpoint.
    """
    if transit in (source, destination):
        raise RoutingError(f"{transit!r} is an endpoint, not a transit node")
    engine = engine_for(graph)
    route = engine.path(source, destination)
    if transit not in route.transit_nodes:
        return 0.0
    without_k = engine.cost(source, destination, avoiding=transit)
    return graph.cost(transit) + without_k - route.cost


def _lazy_path(
    engine: RoutingEngine,
    source: NodeId,
    destination: NodeId,
    avoiding: Optional[NodeId] = None,
) -> PathCost:
    """One pair's LCP via an early-exit (partial) tree.

    Same contract as :meth:`RoutingEngine.path`, but the Dijkstra run
    stops as soon as ``destination`` settles instead of finishing the
    whole tree — the right trade when a source only ever routes to a
    few destinations.
    """
    if source == destination:
        return PathCost(path=(source,), cost=0.0)
    found = engine.partial_tree(source, (destination,), avoiding=avoiding).get(
        destination
    )
    if found is None:
        detail = f" avoiding {avoiding!r}" if avoiding is not None else ""
        raise RoutingError(
            f"no path from {source!r} to {destination!r}{detail}"
        )
    return found


def _route_payments(
    engine: RoutingEngine,
    source: NodeId,
    destination: NodeId,
    lazy: bool = False,
) -> RoutePayments:
    """:func:`route_payments` against an already-built engine.

    With ``lazy=False`` every ``LCP_{-k}`` lookup is a whole cached
    avoidance tree, so pairs sharing a source and a transit node share
    one Dijkstra run — the right shape for dense (all-pairs) traffic.
    With ``lazy=True`` each lookup early-exits at the destination,
    which wins when the traffic matrix is sparse.
    """
    if lazy:
        route = _lazy_path(engine, source, destination)
    else:
        route = engine.path(source, destination)
    payments: Dict[NodeId, Cost] = {}
    for transit in route.transit_nodes:
        if lazy:
            without_k = _lazy_path(
                engine, source, destination, avoiding=transit
            ).cost
        else:
            without_k = engine.cost(source, destination, avoiding=transit)
        payments[transit] = engine.node_cost(transit) + without_k - route.cost
    return RoutePayments(
        source=source, destination=destination, route=route, payments=payments
    )


def route_payments(
    graph: ASGraph, source: NodeId, destination: NodeId
) -> RoutePayments:
    """LCP and all transit payments for one ordered pair."""
    return _route_payments(engine_for(graph), source, destination)


def all_pairs_payments(
    graph: ASGraph,
) -> Dict[Tuple[NodeId, NodeId], RoutePayments]:
    """Route payments for every ordered pair (requires biconnectivity).

    Batched per source: one full Dijkstra tree gives every route, and
    one :meth:`RoutingEngine.source_detour_labels` repair sweep gives
    every ``LCP_{-k}`` cost the payment rule needs — the below-``k``
    group of each transit node is re-relaxed from its frozen boundary
    instead of re-running Dijkstra per (source, transit).
    """
    graph.require_biconnected()
    engine = engine_for(graph)
    result: Dict[Tuple[NodeId, NodeId], RoutePayments] = {}
    nodes = graph.nodes
    node_cost = {node: graph.cost(node) for node in nodes}
    for source in nodes:
        base = engine.tree(source)
        detours = engine.source_detour_labels(source)
        for destination in nodes:
            if destination == source:
                continue
            route = base[destination]
            route_cost = route.cost
            payments = {
                transit: node_cost[transit]
                + detours[transit][destination]
                - route_cost
                for transit in route.transit_nodes
            }
            result[(source, destination)] = RoutePayments(
                source=source,
                destination=destination,
                route=route,
                payments=payments,
            )
    return result


@dataclass
class NodeEconomics:
    """One node's cash flows and true costs under a traffic matrix."""

    received: Cost = 0.0
    paid: Cost = 0.0
    true_transit_cost: Cost = 0.0
    penalties: Cost = 0.0
    #: Extra terms (e.g. non-progress penalty) applied by experiments.
    adjustments: Cost = 0.0
    detail: Dict[str, Cost] = field(default_factory=dict)

    @property
    def utility(self) -> Cost:
        """Quasi-linear utility: income minus expenditure and cost."""
        return (
            self.received
            - self.paid
            - self.true_transit_cost
            - self.penalties
            + self.adjustments
        )


def economics_under_traffic(
    declared_graph: ASGraph,
    true_graph: ASGraph,
    traffic: Mapping[Tuple[NodeId, NodeId], float],
    payment_rule: str = "vcg",
    sparse: Optional[bool] = None,
) -> Dict[NodeId, NodeEconomics]:
    """Per-node economics when routes/payments follow declared costs.

    Parameters
    ----------
    declared_graph:
        Topology with the costs nodes *declared*; routing and payments
        are computed from these.
    true_graph:
        Same topology with *true* costs; real transit expenses come
        from these.
    traffic:
        Mapping (source, destination) -> packet volume.
    payment_rule:
        ``"vcg"`` for the FPSS payment above, or ``"declared-cost"``
        for the naive scheme that simply reimburses each transit node
        its declared cost — the scheme Example 1 shows is manipulable.
    sparse:
        ``True`` routes every lookup through early-exit partial trees
        (wins when few pairs carry traffic), ``False`` uses full cached
        trees (wins for dense matrices).  ``None`` — the default —
        picks partial trees when the matrix has at most as many flows
        as the graph has nodes.

    Returns
    -------
    dict
        Economics for every node of the graph (zeroed if untouched).
    """
    if payment_rule not in ("vcg", "declared-cost"):
        raise RoutingError(f"unknown payment rule {payment_rule!r}")
    economics: Dict[NodeId, NodeEconomics] = {
        node: NodeEconomics() for node in declared_graph.nodes
    }
    engine = engine_for(declared_graph)
    if sparse is None:
        sparse = len(traffic) <= len(declared_graph.nodes)
    for (source, destination), volume in sorted(traffic.items(), key=repr):
        if volume == 0:
            continue
        if volume < 0:
            raise RoutingError(f"negative traffic volume for {(source, destination)}")
        if payment_rule == "vcg":
            # One payment bundle per pair: the base LCP is computed once
            # and shared across its transit nodes instead of re-derived
            # inside a per-transit payment query.
            bundle = _route_payments(engine, source, destination, lazy=sparse)
            pair_payments = bundle.payments
            transit_nodes = bundle.route.transit_nodes
        else:
            if sparse:
                route = _lazy_path(engine, source, destination)
            else:
                route = engine.path(source, destination)
            transit_nodes = route.transit_nodes
            pair_payments = {
                transit: declared_graph.cost(transit) for transit in transit_nodes
            }
        for transit in transit_nodes:
            payment = pair_payments[transit]
            economics[source].paid += volume * payment
            economics[transit].received += volume * payment
            economics[transit].true_transit_cost += volume * true_graph.cost(transit)
    return economics


def utility_of_misreport(
    true_graph: ASGraph,
    node: NodeId,
    declared_cost: Cost,
    traffic: Mapping[Tuple[NodeId, NodeId], float],
    payment_rule: str = "vcg",
) -> Tuple[Cost, Cost]:
    """(truthful utility, misreport utility) for one node's cost lie.

    All other nodes declare truthfully.  Under ``"vcg"`` the second
    component never exceeds the first (strategyproofness, Definition
    5); under ``"declared-cost"`` it can, reproducing Example 1.
    """
    truthful = economics_under_traffic(
        true_graph, true_graph, traffic, payment_rule=payment_rule
    )[node].utility
    lied_graph = true_graph.with_costs({node: declared_cost})
    lied = economics_under_traffic(
        lied_graph, true_graph, traffic, payment_rule=payment_rule
    )[node].utility
    return truthful, lied
