"""The mechanism data tables DATA1-DATA4 and the DATA3* extension.

Section 4.1 lists the state every FPSS node maintains:

* **DATA1** transit-cost list — this node's knowledge of the declared
  transit costs of other nodes;
* **DATA2** routing table — LCP to each destination with the aggregate
  path cost;
* **DATA3** pricing table — per-packet payment owed by this node to
  each transit node on the LCP, per destination;
* **DATA4** payment list — total money owed to other nodes for
  originated traffic (execution phase).

The faithful extension (Section 4.3) replaces DATA3 with **DATA3***,
which additionally stores an *identity tag* per pricing entry: the node
that triggered the most recent pricing update (a set, because pricing
ties union their suggesters).  Spoofed pricing messages create
inconsistencies in these tags that BANK2 catches.

All tables support a :meth:`stable_digest` so the bank can compare a
principal's table against its checkers' mirrors by hash, as the paper
suggests ("a hash of the entire table is sufficient").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..errors import RoutingError
from ..sim.crypto import stable_hash
from .graph import Cost, NodeId

INFINITY = float("inf")


@dataclass(frozen=True)
class RouteEntry:
    """One routing-table row: LCP to a destination and its cost."""

    cost: Cost
    path: Tuple[NodeId, ...]

    def better_than(self, other: Optional["RouteEntry"]) -> bool:
        """Deterministic preference: cost, then hops, then lex path."""
        if other is None:
            return True
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> Tuple:
        """Total order consistent with the oracle's tie-breaking.

        Cached per (frozen) instance: the incremental FPSS relaxation
        compares candidate keys millions of times per run, and entries
        are long-lived table rows.
        """
        key = self.__dict__.get("_sort_key_cache")
        if key is None:
            key = (self.cost, len(self.path), tuple(repr(n) for n in self.path))
            object.__setattr__(self, "_sort_key_cache", key)
        return key


class TransitCostTable:
    """DATA1: declared transit costs known to this node."""

    def __init__(self) -> None:
        self._costs: Dict[NodeId, Cost] = {}

    def declare(self, node: NodeId, cost: Cost) -> bool:
        """Record a declaration; returns True if this changed the table."""
        if cost < 0:
            raise RoutingError(f"negative declared cost for {node!r}")
        if self._costs.get(node) == cost:
            return False
        self._costs[node] = float(cost)
        return True

    def cost(self, node: NodeId) -> Cost:
        """The declared cost of a node (raises if unknown)."""
        try:
            return self._costs[node]
        except KeyError:
            raise RoutingError(f"no declared cost known for {node!r}") from None

    def get(self, node: NodeId, default: Optional[Cost] = None) -> Optional[Cost]:
        """The declared cost of a node, or ``default`` if unknown."""
        return self._costs.get(node, default)

    def knows(self, node: NodeId) -> bool:
        """True if a declaration for the node has been recorded."""
        return node in self._costs

    def retract(self, node: NodeId) -> bool:
        """Forget a declaration (node left the network); True if known.

        Never exercised on the static paper protocol — DATA1 only grows
        during a run — but required by the dynamic-topology engine so a
        departed node's declaration does not linger in digests.
        """
        return self._costs.pop(node, None) is not None

    def as_dict(self) -> Dict[NodeId, Cost]:
        """Copy of the underlying mapping."""
        return dict(self._costs)

    def __len__(self) -> int:
        return len(self._costs)

    def stable_digest(self) -> str:
        """Hash for bank comparisons."""
        return stable_hash(self._costs)


class RoutingTable:
    """DATA2: LCP entries per destination."""

    def __init__(self, owner: NodeId) -> None:
        self.owner = owner
        self._entries: Dict[NodeId, RouteEntry] = {}

    def entry(self, destination: NodeId) -> Optional[RouteEntry]:
        """The current entry for a destination, if any."""
        return self._entries.get(destination)

    def update(self, destination: NodeId, entry: RouteEntry) -> bool:
        """Install an entry; returns True if the table changed."""
        if destination == self.owner:
            raise RoutingError("a node needs no route to itself")
        current = self._entries.get(destination)
        if current == entry:
            return False
        self._entries[destination] = entry
        return True

    def remove(self, destination: NodeId) -> bool:
        """Withdraw an entry; returns True if the table changed.

        Obedient nodes on a static graph never withdraw (their tables
        only grow); topology events — failed links, departed nodes —
        are what make destinations genuinely unreachable.
        """
        return self._entries.pop(destination, None) is not None

    def cost(self, destination: NodeId) -> Cost:
        """Path cost to a destination (INFINITY if unknown)."""
        entry = self._entries.get(destination)
        return entry.cost if entry is not None else INFINITY

    def next_hop(self, destination: NodeId) -> Optional[NodeId]:
        """First hop of the stored LCP toward a destination."""
        entry = self._entries.get(destination)
        if entry is None or len(entry.path) < 2:
            return None
        return entry.path[1]

    @property
    def destinations(self) -> Tuple[NodeId, ...]:
        """Destinations with an entry, repr-sorted."""
        return tuple(sorted(self._entries, key=repr))

    def as_dict(self) -> Dict[NodeId, Tuple[Cost, Tuple[NodeId, ...]]]:
        """Plain representation: dest -> (cost, path)."""
        return {d: (e.cost, e.path) for d, e in self._entries.items()}

    def stable_digest(self) -> str:
        """Hash for BANK1 comparisons."""
        return stable_hash(self.as_dict())


@dataclass(frozen=True)
class PricingEntry:
    """One DATA3* cell: price for a transit node plus identity tag."""

    price: Cost
    #: Identity tag: nodes that triggered/suggested this entry's value
    #: (union on pricing ties) — the DATA3* extension of Section 4.3.
    tag: FrozenSet[NodeId] = frozenset()


class PricingTable:
    """DATA3*: per-destination map of transit node -> priced entry."""

    def __init__(self, owner: NodeId) -> None:
        self.owner = owner
        self._entries: Dict[NodeId, Dict[NodeId, PricingEntry]] = {}

    def set_price(
        self,
        destination: NodeId,
        transit: NodeId,
        price: Cost,
        tag: FrozenSet[NodeId],
    ) -> bool:
        """Install one price cell; returns True if the table changed."""
        row = self._entries.setdefault(destination, {})
        entry = PricingEntry(price=price, tag=frozenset(tag))
        if row.get(transit) == entry:
            return False
        row[transit] = entry
        return True

    def clear_destination(self, destination: NodeId) -> None:
        """Remove a whole row (used when the LCP changes)."""
        self._entries.pop(destination, None)

    def price(self, destination: NodeId, transit: NodeId) -> Cost:
        """The price for one transit node (0 if absent, as off-path)."""
        return self._entries.get(destination, {}).get(
            transit, PricingEntry(0.0)
        ).price

    def entry(self, destination: NodeId, transit: NodeId) -> Optional[PricingEntry]:
        """The full cell, tags included."""
        return self._entries.get(destination, {}).get(transit)

    def row(self, destination: NodeId) -> Dict[NodeId, PricingEntry]:
        """Copy of one destination's row."""
        return dict(self._entries.get(destination, {}))

    def total_price(self, destination: NodeId) -> Cost:
        """Per-packet total the owner pays to reach a destination."""
        return sum(e.price for e in self._entries.get(destination, {}).values())

    @property
    def destinations(self) -> Tuple[NodeId, ...]:
        """Destinations with at least one priced transit node."""
        return tuple(sorted(self._entries, key=repr))

    def as_dict(self) -> Dict[NodeId, Dict[NodeId, Tuple[Cost, Tuple[NodeId, ...]]]]:
        """Plain nested representation including sorted tags."""
        return {
            destination: {
                transit: (cell.price, tuple(sorted(cell.tag, key=repr)))
                for transit, cell in row.items()
            }
            for destination, row in self._entries.items()
        }

    def prices_only(self) -> Dict[NodeId, Dict[NodeId, Cost]]:
        """The DATA3 view without tags (for plain-FPSS comparisons)."""
        return {
            destination: {transit: cell.price for transit, cell in row.items()}
            for destination, row in self._entries.items()
        }

    def stable_digest(self) -> str:
        """Hash (prices *and* tags) for BANK2 comparisons."""
        return stable_hash(self.as_dict())


class PaymentList:
    """DATA4: money owed to other nodes for originated traffic."""

    def __init__(self, owner: NodeId) -> None:
        self.owner = owner
        self._owed: Dict[NodeId, Cost] = {}

    def charge(self, payee: NodeId, amount: Cost) -> None:
        """Accumulate an obligation toward one transit node."""
        if amount < 0:
            raise RoutingError(f"negative charge toward {payee!r}")
        self._owed[payee] = self._owed.get(payee, 0.0) + amount

    def owed_to(self, payee: NodeId) -> Cost:
        """Current obligation toward one node."""
        return self._owed.get(payee, 0.0)

    @property
    def total(self) -> Cost:
        """Total obligations."""
        return sum(self._owed.values())

    def as_dict(self) -> Dict[NodeId, Cost]:
        """Copy of payee -> amount."""
        return dict(self._owed)

    def scaled(self, factor: float) -> Dict[NodeId, Cost]:
        """A proportionally under/over-reported copy (for fraud tests)."""
        return {payee: amount * factor for payee, amount in self._owed.items()}

    def stable_digest(self) -> str:
        """Hash for settlement comparisons."""
        return stable_hash(self._owed)
