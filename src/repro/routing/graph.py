"""AS-level network graphs with per-node transit costs.

FPSS models the Internet as an undirected graph of autonomous systems.
Each node ``k`` has a per-packet *transit cost* ``c_k`` incurred when it
carries traffic that neither originates nor terminates at ``k``.
The mechanism requires the graph to be **biconnected** so that VCG
payments are well-defined: removing any single transit node must leave
every source-destination pair connected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..errors import GraphError, NotBiconnectedError

NodeId = Hashable
Cost = float


class ASGraph:
    """An undirected graph with node transit costs.

    Parameters
    ----------
    costs:
        Mapping node id -> true per-packet transit cost (non-negative).
    edges:
        Iterable of (a, b) pairs; both endpoints must appear in costs.
    """

    def __init__(
        self,
        costs: Mapping[NodeId, Cost],
        edges: Iterable[Tuple[NodeId, NodeId]],
    ) -> None:
        self._costs: Dict[NodeId, Cost] = {}
        for node, cost in costs.items():
            if cost < 0:
                raise GraphError(f"transit cost of {node!r} is negative: {cost}")
            self._costs[node] = float(cost)

        self._adjacency: Dict[NodeId, Set[NodeId]] = {n: set() for n in self._costs}
        self._edges: Set[FrozenSet[NodeId]] = set()
        for a, b in edges:
            if a == b:
                raise GraphError(f"self-loop at {a!r}")
            for endpoint in (a, b):
                if endpoint not in self._costs:
                    raise GraphError(f"edge endpoint {endpoint!r} has no cost entry")
            key = frozenset((a, b))
            if key not in self._edges:
                self._edges.add(key)
                self._adjacency[a].add(b)
                self._adjacency[b].add(a)

        # The graph is immutable, so the deterministic (repr-sorted)
        # views are computed once here instead of on every property
        # access inside the routing hot loops.
        self._sorted_nodes: Tuple[NodeId, ...] = tuple(
            sorted(self._costs, key=repr)
        )
        pairs = [tuple(sorted(edge, key=repr)) for edge in self._edges]
        self._sorted_edges: Tuple[Tuple[NodeId, NodeId], ...] = tuple(
            sorted(pairs, key=repr)
        )  # type: ignore[assignment]
        self._sorted_neighbors: Dict[NodeId, Tuple[NodeId, ...]] = {
            node: tuple(sorted(adjacent, key=repr))
            for node, adjacent in self._adjacency.items()
        }

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All node ids in deterministic (repr-sorted) order."""
        return self._sorted_nodes

    @property
    def edges(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """All edges as sorted pairs, deterministically ordered."""
        return self._sorted_edges

    def cost(self, node: NodeId) -> Cost:
        """The transit cost of a node."""
        try:
            return self._costs[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    @property
    def costs(self) -> Dict[NodeId, Cost]:
        """A copy of the cost mapping."""
        return dict(self._costs)

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Neighbours of a node, repr-sorted for determinism."""
        try:
            return self._sorted_neighbors[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def degree(self, node: NodeId) -> int:
        """Number of neighbours."""
        return len(self._adjacency.get(node, ()))

    def has_edge(self, a: NodeId, b: NodeId) -> bool:
        """True if an (a, b) link exists."""
        return frozenset((a, b)) in self._edges

    def __contains__(self, node: NodeId) -> bool:
        return node in self._costs

    def __len__(self) -> int:
        return len(self._costs)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.nodes)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------

    def with_costs(self, declared: Mapping[NodeId, Cost]) -> "ASGraph":
        """The same topology under *declared* (possibly untruthful) costs.

        Nodes absent from ``declared`` keep their current cost.  Used to
        evaluate outcomes under misreports.
        """
        merged = dict(self._costs)
        for node, cost in declared.items():
            if node not in merged:
                raise GraphError(f"declared cost for unknown node {node!r}")
            merged[node] = float(cost)
        return ASGraph(merged, self.edges)

    def without_node(self, removed: NodeId) -> "ASGraph":
        """The graph with one node (and its edges) deleted.

        This is the "-k" graph in the VCG payment definition.
        """
        if removed not in self._costs:
            raise GraphError(f"unknown node {removed!r}")
        costs = {n: c for n, c in self._costs.items() if n != removed}
        edges = [(a, b) for a, b in self.edges if removed not in (a, b)]
        return ASGraph(costs, edges)

    # ------------------------------------------------------------------
    # structure checks
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """True if all nodes are in one component."""
        if not self._costs:
            return True
        start = self.nodes[0]
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self._adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self._costs)

    def articulation_points(self) -> FrozenSet[NodeId]:
        """Cut vertices, via Hopcroft-Tarjan lowpoint DFS (iterative)."""
        if not self._costs:
            return frozenset()
        index: Dict[NodeId, int] = {}
        low: Dict[NodeId, int] = {}
        parent: Dict[NodeId, Optional[NodeId]] = {}
        points: Set[NodeId] = set()
        counter = 0

        for root in self.nodes:
            if root in index:
                continue
            parent[root] = None
            root_children = 0
            # Stack holds (node, iterator over neighbours).
            stack: List[Tuple[NodeId, Iterator[NodeId]]] = []
            index[root] = low[root] = counter
            counter += 1
            stack.append((root, iter(self.neighbors(root))))
            while stack:
                node, neighbor_iter = stack[-1]
                advanced = False
                for neighbor in neighbor_iter:
                    if neighbor not in index:
                        parent[neighbor] = node
                        if node == root:
                            root_children += 1
                        index[neighbor] = low[neighbor] = counter
                        counter += 1
                        stack.append((neighbor, iter(self.neighbors(neighbor))))
                        advanced = True
                        break
                    elif neighbor != parent[node]:
                        low[node] = min(low[node], index[neighbor])
                if not advanced:
                    stack.pop()
                    if stack:
                        above = stack[-1][0]
                        low[above] = min(low[above], low[node])
                        if above != root and low[node] >= index[above]:
                            points.add(above)
            if root_children > 1:
                points.add(root)
        return frozenset(points)

    def is_biconnected(self) -> bool:
        """True if connected, has >= 3 nodes, and no articulation point.

        Biconnectivity is the FPSS precondition making every VCG
        payment well-defined (an alternative path avoiding any single
        transit node always exists).
        """
        if len(self._costs) < 3:
            return False
        return self.is_connected() and not self.articulation_points()

    def require_biconnected(self) -> None:
        """Raise :class:`NotBiconnectedError` unless biconnected."""
        if not self.is_biconnected():
            raise NotBiconnectedError(
                "FPSS requires a biconnected graph; articulation points: "
                f"{sorted(map(repr, self.articulation_points()))}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ASGraph(n={len(self._costs)}, m={len(self._edges)})"


@dataclass(frozen=True)
class PathCost:
    """A path and its transit cost (sum over interior nodes)."""

    path: Tuple[NodeId, ...]
    cost: Cost

    @property
    def transit_nodes(self) -> Tuple[NodeId, ...]:
        """Interior nodes of the path (those that earn payments)."""
        return self.path[1:-1]

    @property
    def hops(self) -> int:
        """Number of edges traversed."""
        return max(0, len(self.path) - 1)


def figure1_graph() -> ASGraph:
    """The exact network of paper Figure 1.

    Six nodes A, B, C, D, X, Z with transit costs
    ``{A: 5, B: 1000, C: 1, D: 1, X: 6, Z: 100}``.  Edges are chosen to
    match the figure's drawing and its stated lowest-cost paths:

    * LCP(X, Z) = X-D-C-Z with transit cost 2 (through D and C);
      if C declared cost 5, X-A-Z would become the X-Z LCP (Example 1,
      via the X-A and A-Z links, transiting A at cost 5);
    * LCP(Z, D) has cost 1 (Z-C-D, transiting C);
    * LCP(B, D) has cost 0 (direct link, no transit nodes).
    """
    costs = {"A": 5.0, "B": 1000.0, "C": 1.0, "D": 1.0, "X": 6.0, "Z": 100.0}
    edges = [
        ("X", "A"),
        ("A", "Z"),
        ("X", "D"),
        ("D", "C"),
        ("C", "Z"),
        ("B", "D"),
        ("B", "C"),
    ]
    return ASGraph(costs, edges)
