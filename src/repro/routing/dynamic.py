"""Dynamic topology engine: churn, failures, and reconvergence.

Drives a converged plain-FPSS network through a
:class:`~repro.sim.churn.ChurnSchedule`: each epoch applies a batch of
topology events at network quiescence, kicks every node's incremental
relaxation, lets the resulting withdrawal/update storm reconverge, and
then routes traffic on the new fixed point.

Quiesce-per-epoch model
-----------------------
Events are applied *synchronously at quiescence* — no messages are in
flight when the topology mutates.  This is the discrete-event analogue
of routesim2's ``link_has_been_updated`` callbacks (where a link change
interrupts the node between message deliveries): the affected kernels
ingest the topology delta out of band (detached neighbours, DATA1
changes flooded in compressed form), and everything downstream —
withdrawal rows on the wire, incremental re-relaxation, delta
broadcasts — flows through the ordinary message machinery of
:mod:`repro.routing.fpss`.

The epoch-equivalence oracle
----------------------------
:func:`verify_epoch_equivalence` is the correctness contract of the
whole subsystem: after every reconvergence epoch, each surviving node's
DATA1/DATA2/DATA3* digests must be *bit-identical* to a fresh
:func:`~repro.routing.kernel.kernel_fixed_point` run on the post-event
graph.  Incremental reconvergence from stale state must therefore be
indistinguishable from never having seen the old topology at all —
including withdrawals of unreachable destinations (partitions leave no
stale entries) and retraction of departed nodes' declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from ..errors import ConvergenceError, RoutingError
from ..obs.trace import emit_counters, emit_marker
from ..sim.churn import ChurnEvent, ChurnSchedule, apply_churn_event
from ..sim.simulator import Simulator
from .convergence import (
    ConvergenceStats,
    build_plain_network,
    run_construction_phases,
)
from .fpss import FPSSNode
from .graph import ASGraph, Cost, NodeId
from .kernel import kernel_fixed_point, _sort_key

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "DynamicTopologyEngine",
    "EpochReport",
    "ChurnRunResult",
    "run_dynamic_fpss",
    "verify_epoch_equivalence",
]

#: Traffic matrices map ordered ``(origin, destination)`` pairs to a
#: packet volume; a callable derives one from the current graph.
TrafficMatrix = Mapping[Tuple[NodeId, NodeId], float]
TrafficSource = Callable[[ASGraph], TrafficMatrix]


def verify_epoch_equivalence(
    graph: ASGraph, nodes: Mapping[NodeId, FPSSNode]
) -> None:
    """Assert every node's tables match a fresh fixed point on ``graph``.

    Digest-exact across all three tables: DATA1 (so departed nodes'
    declarations are retracted everywhere, not stale), DATA2 (so
    unreachable destinations are withdrawn, not retained), and DATA3*
    (prices *and* identity tags).  This is strictly stronger than
    :func:`~repro.routing.convergence.verify_against_kernel`, which
    only compares DATA2/DATA3*.

    Raises
    ------
    ConvergenceError
        On the first digest disagreement.
    """
    kernels = kernel_fixed_point(graph)
    for node_id, kernel in kernels.items():
        node = nodes.get(node_id)
        comp = node.comp if node is not None else None
        if comp is None:
            raise ConvergenceError(
                f"{node_id!r} is in the post-event graph but has no computation"
            )
        for table, digest in (
            ("DATA1", "cost_digest"),
            ("DATA2", "routing_digest"),
            ("DATA3*", "pricing_digest"),
        ):
            if getattr(comp, digest)() != getattr(kernel, digest)():
                raise ConvergenceError(
                    f"{node_id!r}: {table} digest differs from the fresh "
                    f"fixed point on the post-event graph"
                )


@dataclass
class EpochReport:
    """What one reconvergence epoch did and cost."""

    epoch: int
    events: Tuple[ChurnEvent, ...]
    graph: ASGraph
    reconvergence_events: int
    reconvergence_messages: int
    reconvergence_time: float
    routed_flows: int = 0
    unroutable_flows: int = 0
    payments_total: float = 0.0

    @property
    def availability(self) -> float:
        """Fraction of attempted flows the network could route."""
        attempted = self.routed_flows + self.unroutable_flows
        return self.routed_flows / attempted if attempted else 1.0


@dataclass
class ChurnRunResult:
    """A full dynamic run: initial convergence plus every epoch."""

    simulator: Simulator
    nodes: Dict[NodeId, FPSSNode]
    graph: ASGraph
    initial_stats: ConvergenceStats
    initial_messages: int
    epochs: List[EpochReport] = field(default_factory=list)

    @property
    def message_amplification(self) -> float:
        """Total reconvergence messages relative to initial construction."""
        if not self.initial_messages:
            return 0.0
        total = sum(report.reconvergence_messages for report in self.epochs)
        return total / self.initial_messages

    @property
    def availability(self) -> float:
        """Flow availability across all epochs."""
        routed = sum(report.routed_flows for report in self.epochs)
        attempted = routed + sum(report.unroutable_flows for report in self.epochs)
        return routed / attempted if attempted else 1.0


class DynamicTopologyEngine:
    """Owns one network's lifecycle across reconvergence epochs.

    Build, :meth:`converge`, then :meth:`run_epoch` per event batch (or
    :meth:`run` for a whole schedule).  ``verify=True`` (the default)
    runs the epoch-equivalence oracle after initial convergence and
    after every epoch.
    """

    def __init__(
        self,
        graph: ASGraph,
        node_factory: Optional[Callable[[NodeId, Cost], FPSSNode]] = None,
        link_delays=1.0,
        batch_delivery: bool = True,
        trace_enabled: bool = False,
        verify: bool = True,
        max_events: int = 2_000_000,
    ) -> None:
        self.graph = graph
        self.verify = verify
        self.max_events = max_events
        self._link_delays = link_delays
        self._factory = node_factory or (
            lambda node_id, cost: FPSSNode(node_id, cost)
        )
        self.simulator, self.nodes = build_plain_network(
            graph,
            node_factory=node_factory,
            trace_enabled=trace_enabled,
            link_delays=link_delays,
            batch_delivery=batch_delivery,
        )
        self.active: Set[NodeId] = set(graph.nodes)
        self.epoch = 0
        self.reports: List[EpochReport] = []
        self.initial_stats: Optional[ConvergenceStats] = None
        self.initial_messages = 0
        self._pending_resends: List[Tuple[NodeId, NodeId]] = []
        self._pending_joins: List[NodeId] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def converge(self) -> ConvergenceStats:
        """Run both construction phases on the initial graph (epoch 0)."""
        self.initial_stats = run_construction_phases(
            self.simulator, self.nodes, max_events=self.max_events
        )
        self.initial_messages = self.simulator.metrics.total_messages
        if self.verify:
            self.verify_equivalence()
        return self.initial_stats

    def run_epoch(self, events: Tuple[ChurnEvent, ...]) -> EpochReport:
        """Apply one epoch's events at quiescence and reconverge."""
        if self.initial_stats is None:
            raise ConvergenceError("converge() must run before the first epoch")
        if not self.simulator.is_quiescent():
            raise ConvergenceError("topology events require network quiescence")
        self.epoch += 1
        for event in events:
            self.graph = apply_churn_event(self.graph, event)
            self._apply_event(event)
        messages_before = self.simulator.metrics.total_messages
        time_before = self.simulator.now
        self._kick()
        processed = self.simulator.run_until_quiescent(max_events=self.max_events)
        if self.verify:
            self.verify_equivalence()
        report = EpochReport(
            epoch=self.epoch,
            events=tuple(events),
            graph=self.graph,
            reconvergence_events=processed,
            reconvergence_messages=(
                self.simulator.metrics.total_messages - messages_before
            ),
            reconvergence_time=self.simulator.now - time_before,
        )
        self.reports.append(report)
        emit_marker(
            "churn.epoch",
            sim_time=self.simulator.now,
            epoch=self.epoch,
            events=[event.describe() for event in events],
            reconvergence_events=processed,
            reconvergence_messages=report.reconvergence_messages,
        )
        emit_counters(
            "churn",
            {
                "epochs": 1,
                "events": len(events),
                "reconvergence_events": processed,
                "reconvergence_messages": report.reconvergence_messages,
            },
            sim_time=self.simulator.now,
        )
        return report

    def run(
        self,
        schedule: ChurnSchedule,
        traffic: Optional[object] = None,
    ) -> ChurnRunResult:
        """Converge, then run every epoch with traffic in between.

        ``traffic`` is a matrix ``{(origin, dest): volume}``, a callable
        deriving one from the current graph, or ``None``.  Traffic is
        routed after initial convergence and again after every epoch, so
        the run alternates construction and execution exactly as the
        paper's phases do.
        """
        if self.initial_stats is None:
            self.converge()
        self._route(self._matrix(traffic))  # epoch-0 traffic, not reported
        result = ChurnRunResult(
            simulator=self.simulator,
            nodes=self.nodes,
            graph=self.graph,
            initial_stats=self.initial_stats,  # type: ignore[arg-type]
            initial_messages=self.initial_messages,
        )
        for events in schedule.epochs:
            report = self.run_epoch(events)
            routed, unroutable, payments = self._route(self._matrix(traffic))
            report.routed_flows = routed
            report.unroutable_flows = unroutable
            report.payments_total = payments
            result.epochs.append(report)
        result.graph = self.graph
        return result

    def verify_equivalence(self) -> None:
        """Run the epoch-equivalence oracle on the current graph."""
        verify_epoch_equivalence(self.graph, self.nodes)

    # ------------------------------------------------------------------
    # event application (synchronous, at quiescence)
    # ------------------------------------------------------------------

    def _sorted_active(self) -> List[NodeId]:
        return sorted(self.active, key=repr)

    def _delay_for(self, a: NodeId, b: NodeId) -> float:
        delays = self._link_delays
        if callable(delays):
            return delays(a, b)
        if isinstance(delays, dict):
            # New links may have no configured delay; default to unit.
            return delays.get(frozenset((a, b)), 1.0)
        return float(delays)

    def _comp(self, node_id: NodeId):
        """The node's live kernel, or ``None`` before its join kick.

        Nodes joining this epoch have no computation yet — they
        bootstrap at kick time from the final post-epoch topology and
        cost map, so kernel-level deltas for them are skipped here.
        """
        return self.nodes[node_id].comp

    def _apply_event(self, event: ChurnEvent) -> None:
        topology = self.simulator.topology
        if event.kind == "cost":
            node_id = event.node
            new_cost = float(event.cost)  # type: ignore[arg-type]
            self.nodes[node_id].true_cost = new_cost
            # The compressed equivalent of re-flooding phase 1: every
            # active kernel learns the new declaration directly.
            for member in self._sorted_active():
                comp = self._comp(member)
                if comp is None:
                    continue
                if member == node_id:
                    comp.change_own_cost(new_cost)
                else:
                    comp.note_cost_declaration(node_id, new_cost)
        elif event.kind == "link-down":
            a, b = event.link  # type: ignore[misc]
            topology.remove_link(a, b)
            for end, peer in ((a, b), (b, a)):
                comp = self._comp(end)
                if comp is not None:
                    comp.detach_neighbor(peer)
        elif event.kind == "link-up":
            a, b = event.link  # type: ignore[misc]
            topology.add_link(a, b, delay=self._delay_for(a, b))
            for end, peer in ((a, b), (b, a)):
                comp = self._comp(end)
                if comp is not None:
                    comp.attach_neighbor(peer)
            # Delta streams assume shared history: both endpoints
            # exchange full tables once across the fresh link.
            self._pending_resends.append((a, b))
            self._pending_resends.append((b, a))
        elif event.kind == "leave":
            node_id = event.node
            for peer in topology.neighbors(node_id):
                comp = self._comp(peer)
                if comp is not None:
                    comp.detach_neighbor(node_id)
            topology.remove_node(node_id)
            self.active.discard(node_id)
            self.nodes[node_id].phase = "left"
            for member in self._sorted_active():
                comp = self._comp(member)
                if comp is not None:
                    comp.retract_cost_declaration(node_id)
        else:  # join
            node_id = event.node
            new_cost = float(event.cost)  # type: ignore[arg-type]
            topology.add_node(node_id)
            node = self._factory(node_id, new_cost)
            self.nodes[node_id] = node
            self.simulator.add_node(node)
            peers = []
            for pair in event.links:
                peer = pair[1] if pair[0] == node_id else pair[0]
                topology.add_link(node_id, peer, delay=self._delay_for(node_id, peer))
                peers.append(peer)
            for member in self._sorted_active():
                comp = self._comp(member)
                if comp is not None:
                    comp.note_cost_declaration(node_id, new_cost)
            for peer in sorted(set(peers), key=repr):
                comp = self._comp(peer)
                if comp is not None:
                    comp.attach_neighbor(node_id)
                self._pending_resends.append((peer, node_id))
            self.active.add(node_id)
            self._pending_joins.append(node_id)

    def _kick(self) -> None:
        """Schedule the epoch's local actions in deterministic order.

        Full-table resends across fresh links go first (they carry the
        *pre-settle* tables; the subsequent reaction deltas then apply
        on top, so new neighbours end bit-identical to old ones), then
        joining nodes bootstrap, then every surviving node settles and
        broadcasts its topology-delta fallout.
        """
        resends, self._pending_resends = self._pending_resends, []
        joins, self._pending_joins = self._pending_joins, []
        joined = set(joins)
        topology = self.simulator.topology
        scheduled = set()
        for sender, receiver in resends:
            if sender not in self.active or receiver not in self.active:
                continue
            if sender in joined:
                # A joiner's bootstrap force-announces full tables to
                # every current neighbour; a separate resend would
                # arrive before its kernel exists.
                continue
            if not topology.has_link(sender, receiver):
                continue  # the fresh link failed again within the epoch
            if (sender, receiver) in scheduled:
                continue
            scheduled.add((sender, receiver))
            self.simulator.schedule_local(
                sender,
                0.0,
                partial(self.nodes[sender].resend_full_tables, receiver),
                label=f"churn-resend:->{receiver}",
            )
        known = self.graph.costs
        for node_id in joins:
            if node_id not in self.active:
                continue  # joined and left within one epoch
            self.simulator.schedule_local(
                node_id,
                0.0,
                partial(self.nodes[node_id].join_network, known),
                label="churn-join",
            )
        for node_id in self._sorted_active():
            if node_id in joined:
                continue
            self.simulator.schedule_local(
                node_id,
                0.0,
                self.nodes[node_id].react_to_topology_change,
                label="churn-react",
            )

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------

    def _matrix(self, traffic: Optional[object]) -> TrafficMatrix:
        if traffic is None:
            return {}
        if callable(traffic):
            return traffic(self.graph)
        return traffic  # type: ignore[return-value]

    def _route(self, matrix: TrafficMatrix) -> Tuple[int, int, float]:
        """Route one traffic matrix; returns (routed, unroutable, payments).

        Flows whose endpoints left the network are skipped outright;
        flows between live nodes that the current tables cannot carry
        (partitions) count as unroutable — the availability metric's
        denominator.  Payments are the DATA4 charges accrued by this
        matrix alone.
        """
        flows = [
            (origin, destination, volume)
            for (origin, destination), volume in sorted(
                matrix.items(),
                key=lambda kv: (_sort_key(kv[0][0]), _sort_key(kv[0][1])),
            )
            if origin != destination
            and origin in self.active
            and destination in self.active
        ]
        if not flows:
            return 0, 0, 0.0
        before = {
            node_id: self.nodes[node_id].data4.total
            for node_id in self._sorted_active()
        }
        counts = {"routed": 0, "unroutable": 0}

        def originate(origin: NodeId, destination: NodeId, volume: float) -> None:
            try:
                self.nodes[origin].originate_flow(destination, volume)
            except RoutingError:
                counts["unroutable"] += 1
            else:
                counts["routed"] += 1

        for origin, destination, volume in flows:
            self.simulator.schedule_local(
                origin,
                0.0,
                partial(originate, origin, destination, volume),
                label=f"churn-flow:->{destination}",
            )
        self.simulator.run_until_quiescent(max_events=self.max_events)
        payments = sum(
            self.nodes[node_id].data4.total - before[node_id]
            for node_id in self._sorted_active()
        )
        if counts["unroutable"]:
            emit_counters(
                "churn",
                {"unroutable_flows": counts["unroutable"]},
                sim_time=self.simulator.now,
            )
        return counts["routed"], counts["unroutable"], payments


def run_dynamic_fpss(
    graph: ASGraph,
    schedule: ChurnSchedule,
    traffic: Optional[object] = None,
    node_factory: Optional[Callable[[NodeId, Cost], FPSSNode]] = None,
    link_delays=1.0,
    batch_delivery: bool = True,
    verify: bool = True,
    max_events: int = 2_000_000,
) -> ChurnRunResult:
    """Run a whole churn scenario: converge, then every epoch + traffic."""
    engine = DynamicTopologyEngine(
        graph,
        node_factory=node_factory,
        link_delays=link_delays,
        batch_delivery=batch_delivery,
        verify=verify,
        max_events=max_events,
    )
    return engine.run(schedule, traffic=traffic)
