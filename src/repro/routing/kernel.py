"""The shared FPSS replay kernel: one incremental computation, many clients.

Reproduces: the iterative FPSS calculation of Shneidman & Parkes,
"Specification Faithfulness in Networks with Rational Nodes" (PODC'04),
Section 4 — DATA1-DATA3* and the checker replay of Section 4.2/4.3.

:class:`ReplayKernel` is the *pure, message-driven state machine* at the
centre of every FPSS computation in this repository: ingest wire deltas,
run the fused monotone relaxation, expose changed-key sets, hash the
tables.  It has no I/O and no simulator coupling, so it is consumed by
three very different clients:

* the principal's own :class:`~repro.routing.fpss.FPSSComputation`
  (a thin subclass, kept for the protocol-facing name);
* a checker's :class:`~repro.faithful.mirror.PrincipalMirror`, which
  replays a neighbouring principal on forwarded copies; and
* the pure-kernel convergence oracle (:func:`kernel_fixed_point`),
  which iterates synchronous rounds of the same state machine with no
  simulator at all and cross-checks the distributed fixed point.

Columnar hot path
-----------------
The ingest → fused relaxation → changed-key-set hot path runs over flat
parallel lists indexed by dense int ids: node ids and
``(destination, avoided)`` keys are interned once per kernel, replay
state lives in id-indexed columns, and every canonical drain sorts ids
by a precomputed id→rank permutation instead of re-deriving ``repr``
sort keys per call (rank order equals ``_sort_key`` order by
construction — see the :class:`ReplayKernel` docstring and
``docs/determinism.md``).  The previous dict-keyed implementation is
retained verbatim as
:class:`~repro.routing.kernel_dict.DictReplayKernel`, the equivalence
oracle the columnar kernel is property-tested bit-identical against.

Shared checker replay
---------------------
A principal's broadcast reaches all of its k checkers identically, so k
independent mirrors replay the *identical* op stream — the ~O(deg²)
redundancy that made checked networks lag plain ones by two size rungs.
:class:`SharedKernel` deduplicates that work within one simulated host
(one OS process running the whole network): it pairs one
:class:`ReplayKernel` with an append-only *op log*.  The first mirror to
reach the log frontier executes the op (ingest or flush) and records it
together with its observable results (the predicted broadcast deltas);
every other mirror *verifies* that its own op is bit-identical to the
logged one and reuses the recorded result for the cost of a tuple
compare.  Per-checker state shrinks to the cheap parts: the own-sent
ledger, expected-broadcast queues, and a cursor into the log.

Sharing invariant
-----------------
Mirrors of one principal may share a kernel **iff** they replay the
same op stream from the same seed.  Both conditions are checked, never
assumed:

* *seed*: :meth:`MirrorKernelPool.acquire` compares the principal's
  neighbour set, declared cost, and the checker's converged DATA1
  against the shared kernel's seed; any mismatch (possible off the
  honest path, e.g. divergent phase-1 state) refuses sharing and the
  mirror falls back to its private per-neighbour replay.
* *stream*: every op a follower submits is compared against the log.
  The first divergence — a deviant principal sending different copies
  to different checkers, dropping copies selectively, or a lazy checker
  that stopped replaying — **forks** the mirror:
  :meth:`SharedKernel.fork_at` rebuilds a private kernel by replaying
  the *agreed* log prefix (exactly the ops this mirror already
  verified), and the mirror continues on it independently.  Fork cost
  is one per-neighbour replay of the prefix, paid only on divergence —
  i.e. only in deviant runs, where detection work is the point.

The per-neighbour path (a mirror with ``shared=None``) is retained
unchanged as the reference semantics and property-tested bit-identical
to the shared path (``tests/faithful/test_shared_mirror.py``).

Snapshot semantics
------------------
:meth:`ReplayKernel.snapshot` captures the digest-level state (DATA1 /
DATA2 / DATA3* hashes plus work counters) — the checkpoint material the
bank compares — without copying tables; :meth:`SharedKernel.fork_at`
is the state fork (replay of a verified log prefix).
"""

from __future__ import annotations

# purity: kernel

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ConvergenceError, ProtocolError
from ..sim.crypto import stable_hash
from ..sim.messages import NodeId
from .graph import Cost
from .tables import PricingTable, RouteEntry, RoutingTable, TransitCostTable

#: Message kinds of the second construction phase (also re-exported by
#: :mod:`repro.routing.fpss`, which owns the protocol nodes).
KIND_RT_UPDATE = "rt-update"
KIND_PRICE_UPDATE = "price-update"

RouteVector = Dict[NodeId, RouteEntry]
AvoidKey = Tuple[NodeId, NodeId]  # (destination, avoided node)
AvoidVector = Dict[AvoidKey, RouteEntry]

#: Memoized ``repr`` sort keys for vector encoding.  Vector keys are
#: node ids or (destination, avoided) pairs drawn from a small universe
#: that recurs across every broadcast of a run, while ``repr`` itself
#: builds a fresh string per call — measurable on n^2-row vectors.
_SORT_KEY_MEMO: Dict = {}


def _sort_key(value) -> str:
    key = _SORT_KEY_MEMO.get(value)
    if key is None:
        # lint: allow[kernel-purity] value-deterministic repr memo; cached string depends only on the key, so replay cannot observe fill order
        key = _SORT_KEY_MEMO[value] = repr(value)
    return key


#: Relaxation sentinel: the argmin supplier for the directly-connected
#: base case (whose candidate never changes).
_BASE = object()


@lru_cache(maxsize=65536)
def _lex_key(path: Tuple) -> Tuple[str, ...]:
    """Memoized lexicographic tie-break key of a path.

    Only consulted when two candidates tie on cost *and* hop count,
    which keeps the common relaxation path free of repr calls.
    """
    return tuple(_sort_key(node) for node in path)


def _stripped_worse(cand: Tuple, state: Tuple) -> bool:
    """True if candidate ``cand`` orders strictly after ``state``.

    Both are ``(supplier, cost, hops, path)`` stripped candidates; the
    lexicographic component is materialised only on full ties.
    """
    if cand[1] != state[1]:
        return cand[1] > state[1]
    if cand[2] != state[2]:
        return cand[2] > state[2]
    if cand[3] is state[3]:
        return False
    return _lex_key(cand[3]) > _lex_key(state[3])


def _stripped_equal(cand: Tuple, state: Tuple) -> bool:
    """True if two stripped candidates denote the same table entry."""
    return (
        cand[1] == state[1]
        and cand[2] == state[2]
        and (cand[3] is state[3] or _lex_key(cand[3]) == _lex_key(state[3]))
    )


def _stripped_beats_base(destination, best: Tuple) -> bool:
    """True if the base candidate ``(0.0, 1, (destination,))`` beats
    the current ``best`` stripped candidate."""
    # lint: allow[float-eq] base-case transit cost is exactly 0.0 by construction, never a computed sum
    if best[1] != 0.0:
        return best[1] > 0.0
    if best[2] != 1:
        return best[2] > 1
    return (_sort_key(destination),) < _lex_key(best[3])


@dataclass
class KernelStats:
    """Work counters of one :class:`ReplayKernel` (or a shared pool).

    ``rows_ingested`` counts wire rows entering the fused relaxation
    (the per-row ingestion constant ROADMAP flags), ``route_rescans`` /
    ``avoid_rescans`` count full candidate scans (the expensive,
    argmin-invalidated path), and ``shared_hits`` / ``forks`` count the
    checker-side dedup (ops satisfied from a shared log, and mirrors
    that diverged off it).
    """

    rows_ingested: int = 0
    route_relaxations: int = 0
    route_rescans: int = 0
    avoid_rescans: int = 0
    shared_hits: int = 0
    forks: int = 0
    seed_mismatches: int = 0

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another counter set into this one."""
        self.rows_ingested += other.rows_ingested
        self.route_relaxations += other.route_relaxations
        self.route_rescans += other.route_rescans
        self.avoid_rescans += other.avoid_rescans
        self.shared_hits += other.shared_hits
        self.forks += other.forks
        self.seed_mismatches += other.seed_mismatches

    def as_dict(self) -> Dict[str, int]:
        """Plain dict view for benchmark tables."""
        return {
            "rows_ingested": self.rows_ingested,
            "route_relaxations": self.route_relaxations,
            "route_rescans": self.route_rescans,
            "avoid_rescans": self.avoid_rescans,
            "shared_hits": self.shared_hits,
            "forks": self.forks,
            "seed_mismatches": self.seed_mismatches,
        }


@dataclass(frozen=True)
class KernelSnapshot:
    """Digest-level checkpoint of a kernel (bank comparison material)."""

    owner: NodeId
    cost_digest: str
    routing_digest: str
    pricing_digest: str
    computation_count: int

    def full_digest(self) -> str:
        """Combined digest over all construction state."""
        return stable_hash(
            (self.cost_digest, self.routing_digest, self.pricing_digest)
        )


class ReplayKernel:
    """Pure FPSS mechanism state for one node, over columnar storage.

    A message-driven state machine: :meth:`apply_route_delta` /
    :meth:`apply_avoid_delta` ingest wire rows (fusing the monotone
    avoidance relaxation into ingestion), the ``recompute_*`` methods
    settle the dirty keys, :meth:`consume_route_delta` /
    :meth:`consume_avoid_delta` read the changed-key sets off as the
    next suggested-specification broadcasts, and the digest methods
    hash the tables for bank comparison.  Determinism matters beyond
    tidiness: checker mirrors replay a principal's kernel on copies of
    its messages, and replay only works because the kernel is a pure
    function of (identity, neighbour set, op sequence).

    Columnar layout
    ---------------
    Every node id and every ``(destination, avoided)`` key is interned
    once per kernel into a contiguous int id (:meth:`_intern_node`,
    :meth:`_intern_avoid`); the hot-path state lives in flat parallel
    lists indexed by those ids:

    * ``_ref_col[did]`` — destination-universe reference counts;
    * ``_route_state_col[did]`` / ``_avoid_state_col[aid]`` — the
      reigning argmin per key (stripped candidates);
    * ``_avoid_dest[aid]`` / ``_avoid_avoided[aid]`` /
      ``_avoid_keys[aid]`` — key-id decomposition columns;
    * per-neighbour offer stores keyed on int ids
      (``_route_offers[n][did]``, ``_avoid_offers[n][aid]``).

    Dirty/changed bookkeeping is sets of int ids, and every canonical
    drain sorts ids by the precomputed ``_node_rank`` permutation
    instead of re-deriving ``repr`` sort keys per call.  Ranks are
    maintained by ordered insertion at interning time, so rank order
    equals ``_sort_key`` order over all interned ids at every drain —
    the equivalence argument for replacing repr-sort on the hot path
    (see ``docs/determinism.md``).  Interning tables survive
    :meth:`reset_phase2` (they are pure key-to-id maps); all replay
    state columns are rebuilt.

    The pre-columnar dict-keyed implementation is retained verbatim as
    :class:`~repro.routing.kernel_dict.DictReplayKernel` and
    property-tested bit-identical to this class
    (``tests/routing/test_columnar_kernel.py``).

    Parameters
    ----------
    owner:
        The node whose computation this is.
    neighbors:
        The owner's neighbour set (semi-private connectivity
        information; common knowledge between link endpoints).
    own_cost:
        The transit cost the owner *declares* (truthful for obedient
        nodes; a lie is an information-revelation deviation).
    """

    def __init__(
        self, owner: NodeId, neighbors: Sequence[NodeId], own_cost: Cost
    ) -> None:
        self.owner = owner
        self.neighbors: Tuple[NodeId, ...] = tuple(sorted(neighbors, key=repr))
        self._neighbor_set: FrozenSet[NodeId] = frozenset(self.neighbors)
        self.own_cost = float(own_cost)

        self.costs = TransitCostTable()  # DATA1
        self.costs.declare(owner, own_cost)
        self.routing = RoutingTable(owner)  # DATA2
        self.pricing = PricingTable(owner)  # DATA3*
        self.avoid: AvoidVector = {}
        #: Last offers received from each neighbour, keyed on dense ids
        #: (``did`` for routing rows, ``aid`` for avoidance rows).
        self._route_offers: Dict[NodeId, Dict[int, Tuple]] = {}
        self._avoid_offers: Dict[NodeId, Dict[int, Tuple]] = {}
        self.computation_count = 0
        self.stats = KernelStats()

        # Interning tables: node -> did, (destination, avoided) -> aid,
        # plus the id -> key / id -> rank decomposition columns.  These
        # are pure key-to-id maps, independent of replay state, so they
        # survive reset_phase2 (ids stay stable across phase restarts).
        self._node_ids: Dict[NodeId, int] = {}
        self._node_keys: List[NodeId] = []
        #: did -> position of the node in ``_sort_key`` order over all
        #: interned nodes; maintained by ordered insertion so sorting
        #: ids by rank is identical to sorting nodes by ``_sort_key``.
        self._node_rank: List[int] = []
        self._rank_ids: List[int] = []  # ids in rank order
        self._rank_sort_keys: List[str] = []  # their sort keys, ascending
        self._avoid_ids: Dict[AvoidKey, int] = {}
        self._avoid_keys: List[AvoidKey] = []
        self._avoid_dest: List[int] = []  # aid -> destination did
        self._avoid_avoided: List[int] = []  # aid -> avoided did

        # did/aid-indexed state columns; grown by interning, rebuilt by
        # _reset_incremental_state.
        self._ref_col: List[int] = []
        self._route_state_col: List[Optional[Tuple]] = []
        self._avoid_state_col: List[Optional[Tuple]] = []

        self._owner_id = self._intern_node(owner)
        for neighbor in self.neighbors:
            self._intern_node(neighbor)
        self._reset_incremental_state()

    # ------------------------------------------------------------------
    # key interning
    # ------------------------------------------------------------------

    def _intern_node(self, node: NodeId) -> int:
        """The dense id of ``node``, interning it on first sight.

        New ids are inserted into the rank permutation at their
        ``_sort_key`` position (binary search over the sorted key
        column), shifting the ranks of all ids ordering after them —
        O(n) per *new* node, amortised away because the node universe
        of a run is small and recurs across every broadcast.
        """
        nid = self._node_ids.get(node)
        if nid is not None:
            return nid
        nid = len(self._node_keys)
        self._node_ids[node] = nid
        self._node_keys.append(node)
        sort_key = _sort_key(node)
        sort_keys = self._rank_sort_keys
        lo = 0
        hi = len(sort_keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if sort_keys[mid] < sort_key:
                lo = mid + 1
            else:
                hi = mid
        sort_keys.insert(lo, sort_key)
        rank_ids = self._rank_ids
        rank_ids.insert(lo, nid)
        rank_col = self._node_rank
        rank_col.append(lo)
        for shifted in rank_ids[lo + 1 :]:
            rank_col[shifted] += 1
        self._ref_col.append(0)
        self._route_state_col.append(None)
        return nid

    def _intern_avoid(self, key: AvoidKey) -> int:
        """The dense id of an avoidance key, interning it on first sight."""
        aid = self._avoid_ids.get(key)
        if aid is None:
            aid = len(self._avoid_keys)
            self._avoid_ids[key] = aid
            self._avoid_keys.append(key)
            self._avoid_dest.append(self._intern_node(key[0]))
            self._avoid_avoided.append(self._intern_node(key[1]))
            self._avoid_state_col.append(None)
        return aid

    def _reset_incremental_state(self) -> None:
        """(Re)initialise the delta-recomputation bookkeeping.

        The interning tables persist (ids are stable for the kernel's
        lifetime); every replay-state column and dirty/changed set is
        rebuilt at its current interned size.
        """
        #: Reference counts for the destination universe: +1 per
        #: neighbour vector currently announcing the destination, +1 if
        #: it is a neighbour (the base case of the relaxation).  A
        #: destination is relaxed only while its count is positive —
        #: the same universe the full rescans derive on every call.
        self._ref_col = [0] * len(self._node_keys)
        owner_id = self._owner_id
        node_ids = self._node_ids
        for neighbor in self.neighbors:
            nid = node_ids[neighbor]
            if nid != owner_id:
                self._ref_col[nid] = 1
        #: Routing dirty map: destination did -> the set of neighbours
        #: whose input changed since the last relaxation, or ``None``
        #: for "rescan every candidate" (universe (re)entry, DATA1
        #: change).
        self._dirty_routes: Dict[int, Optional[Set[NodeId]]] = {}
        #: Avoidance key ids whose reigning argmin was invalidated and
        #: that need a full candidate rescan.  Improvements never land
        #: here — they are adopted directly during ingestion (the
        #: common, monotone case), with :attr:`_avoid_changed`
        #: accumulating whether any entry moved since the last
        #: recompute call.
        self._avoid_rescan: Set[int] = set()
        self._avoid_changed = False
        self._dirty_pricing: Set[int] = set()
        #: Destination dids that (re)entered the universe and whose
        #: avoidance keys still need a rescan sweep.  Expanded lazily
        #: at the next recompute — and only over the keys that ever
        #: stored an offer — instead of eagerly marking n keys.
        self._avoid_dest_pending: Set[int] = set()
        #: Per destination did, the aids that ever had a stored offer
        #: (grow-only, conservative).  The re-entry sweep scans exactly
        #: these keys: a key with no offer history and no base case
        #: (non-neighbour destination) is a no-op in
        #: :meth:`_relax_avoid`, so skipping it matches the full
        #: rescan; neighbour destinations keep the all-keys sweep for
        #: the base case.  Keys with replay state but no offer history
        #: cannot exist for non-neighbour destinations (the base case
        #: is their only supplier-free candidate source).
        self._avoid_keys_by_dest: Dict[int, Set[int]] = {}
        #: Ids whose DATA2/avoidance entries changed since the last
        #: announcement was encoded — the O(|changes|) source for delta
        #: broadcasts of the unmodified (suggested) specification.
        self._route_changes: Set[int] = set()
        self._avoid_changes: Set[int] = set()
        #: Last relaxation result per key: ``(supplier, stripped key)``
        #: where the supplier is the neighbour whose candidate won (or
        #: ``_BASE`` for the directly-connected base case) and the
        #: stripped key orders candidates without materialising them.
        #: Tracking the argmin makes a relaxation O(|changed inputs|)
        #: unless the winning input itself worsened.
        self._route_state_col = [None] * len(self._node_keys)
        self._avoid_state_col = [None] * len(self._avoid_keys)

    # ------------------------------------------------------------------
    # phase 1: transit cost dissemination
    # ------------------------------------------------------------------

    def note_cost_declaration(self, node: NodeId, cost: Cost) -> bool:
        """Record a flooded declaration; True if DATA1 changed.

        DATA1 is frozen before phase 2 in any honest run; if it does
        change while phase-2 state exists, every derived entry is
        conservatively marked dirty so the incremental relaxations stay
        equivalent to the full rescans.
        """
        changed = self.costs.declare(node, cost)
        if changed and (
            self._route_offers or self._avoid_offers or self.routing.destinations
        ):
            self._mark_all_dirty()
        return changed

    def _mark_all_dirty(self) -> None:
        """Schedule a full re-relaxation through the incremental path."""
        owner = self.owner
        known = [n for n in self.costs.as_dict() if n != owner]
        dirty = self._dirty_routes
        pricing = self._dirty_pricing
        rescan = self._avoid_rescan
        keys = self._node_keys
        intern_avoid = self._intern_avoid
        universe = [did for did, count in enumerate(self._ref_col) if count > 0]
        for did in universe:
            dest = keys[did]
            dirty[did] = None
            pricing.add(did)
            for avoided in known:
                if avoided != dest:
                    rescan.add(intern_avoid((dest, avoided)))
        # Rows for routed destinations that dropped out of the universe
        # are still re-derived by the full derive_pricing; match it.
        # Marking them dirty also lets the incremental rescan withdraw
        # entries stranded by topology events (inert on static runs,
        # where the universe covers every routed destination).
        ref_col = self._ref_col
        intern = self._intern_node
        for dest in self.routing.destinations:
            did = intern(dest)
            if ref_col[did] == 0:
                dirty[did] = None
            pricing.add(did)
        avoid_ids = self._avoid_ids
        for key in self.avoid:
            rescan.add(avoid_ids[key])

    def known_nodes(self) -> Tuple[NodeId, ...]:
        """Every node with a DATA1 entry, repr-sorted."""
        return tuple(sorted(self.costs.as_dict(), key=repr))

    # ------------------------------------------------------------------
    # topology deltas (dynamic networks)
    # ------------------------------------------------------------------
    #
    # These mutators model rare out-of-band events — a link failing or
    # being restored, a node leaving or changing its declared cost —
    # applied synchronously at network quiescence by the dynamic
    # topology engine.  Each one conservatively marks every derived
    # entry dirty: topology events are orders of magnitude rarer than
    # vector updates, so the equivalence argument stays the full
    # rescan's and no new incremental invariant is introduced.

    def detach_neighbor(self, neighbor: NodeId) -> None:
        """Remove a failed or departed link's peer from this kernel.

        Drops the neighbour's stored vectors (releasing their universe
        references) and its base-case candidacy; the next settle
        withdraws every entry the neighbour was supporting.
        """
        if neighbor not in self._neighbor_set:
            raise ProtocolError(
                f"{self.owner!r} cannot detach non-neighbour {neighbor!r}"
            )
        self.neighbors = tuple(n for n in self.neighbors if n != neighbor)
        self._neighbor_set = frozenset(self.neighbors)
        routes = self._route_offers.pop(neighbor, None)
        owner_id = self._owner_id
        if routes:
            for did in routes:
                if did != owner_id:
                    self._universe_discard(did)
        self._avoid_offers.pop(neighbor, None)
        # The base-case reference held for the neighbour itself.
        self._universe_discard(self._node_ids[neighbor])
        self._mark_all_dirty()

    def attach_neighbor(self, neighbor: NodeId) -> None:
        """Add a restored or newly created link's peer to this kernel.

        The peer starts with no stored vectors; the protocol layer is
        responsible for the one-off full-table exchange that re-seeds
        the delta streams across the new link.
        """
        if neighbor == self.owner or neighbor in self._neighbor_set:
            raise ProtocolError(
                f"{self.owner!r} cannot attach {neighbor!r} as a new neighbour"
            )
        self.neighbors = tuple(sorted(self.neighbors + (neighbor,), key=repr))
        self._neighbor_set = frozenset(self.neighbors)
        self._universe_add(self._intern_node(neighbor))
        self._mark_all_dirty()

    def retract_cost_declaration(self, node: NodeId) -> bool:
        """Forget a departed node's DATA1 entry; True if it was known.

        Avoidance state keyed on the departed node is withdrawn
        directly: a fresh computation on the post-event graph never
        forms ``(dest, node)`` keys for a node it has no declaration
        for, and the relaxations skip unknown avoided ids.
        """
        if node == self.owner:
            raise ProtocolError(f"{self.owner!r} cannot retract its own cost")
        if not self.costs.retract(node):
            return False
        vid = self._node_ids.get(node)
        if vid is not None:
            avoid = self.avoid
            akeys = self._avoid_keys
            state_col = self._avoid_state_col
            for aid, avoided_id in enumerate(self._avoid_avoided):
                if avoided_id != vid:
                    continue
                if akeys[aid] in avoid:
                    self._drop_avoid_entry(aid)
                else:
                    state_col[aid] = None
        if self._route_offers or self._avoid_offers or self.routing.destinations:
            self._mark_all_dirty()
        return True

    def change_own_cost(self, cost: Cost) -> bool:
        """Adopt a new declared transit cost for the owner itself."""
        self.own_cost = float(cost)
        return self.note_cost_declaration(self.owner, cost)

    # ------------------------------------------------------------------
    # phase 2: routing and pricing
    # ------------------------------------------------------------------

    def reset_phase2(self) -> None:
        """Clear DATA2/DATA3* state for a phase restart."""
        self.routing = RoutingTable(self.owner)
        self.pricing = PricingTable(self.owner)
        self.avoid = {}
        self._route_offers = {}
        self._avoid_offers = {}
        self._reset_incremental_state()

    # --- destination-universe reference counting ----------------------

    def _universe_add(self, did: int) -> None:
        count = self._ref_col[did]
        self._ref_col[did] = count + 1
        if count == 0:
            # The destination just (re)entered the universe: avoidance
            # inputs stored for it while it was outside become
            # relaxable, exactly as the full rescan would now see them.
            self._dirty_routes[did] = None
            self._dirty_pricing.add(did)
            self._avoid_dest_pending.add(did)

    def _universe_discard(self, did: int) -> None:
        col = self._ref_col
        count = col[did]
        if count <= 1:
            col[did] = 0
            if count == 1:
                # The destination left the universe (its last offer was
                # withdrawn): schedule its avoidance keys so retained
                # entries are withdrawn by the incremental rescan.  The
                # offer history covers every key a *wire* withdrawal
                # can strand; base-case-only keys are released through
                # detach_neighbor, which marks everything dirty anyway.
                history = self._avoid_keys_by_dest.get(did)
                if history:
                    self._avoid_rescan.update(history)
                self._dirty_pricing.add(did)
        else:
            col[did] = count - 1

    def _note_offer(self, aid: int) -> None:
        """Record offer history for one key (grow-only, sweep input).

        Every site that stores a previously absent offer must call
        this: the re-entry rescan sweep trusts the history to cover
        all keys a full rescan could act on.
        """
        offered = self._avoid_keys_by_dest
        did = self._avoid_dest[aid]
        keys = offered.get(did)
        if keys is None:
            offered[did] = {aid}
        else:
            keys.add(aid)

    def consume_route_changes(self) -> Set[NodeId]:
        """Destinations whose DATA2 entry changed since last consumed."""
        changes = self._route_changes
        self._route_changes = set()
        keys = self._node_keys
        # lint: allow[unordered-iter] set-to-set id decode; iteration order cannot escape the returned set
        return {keys[did] for did in changes}

    def consume_avoid_changes(self) -> Set[AvoidKey]:
        """Avoidance keys whose entry changed since last consumed."""
        changes = self._avoid_changes
        self._avoid_changes = set()
        keys = self._avoid_keys
        # lint: allow[unordered-iter] set-to-set id decode; iteration order cannot escape the returned set
        return {keys[aid] for aid in changes}

    def consume_route_delta(self) -> Tuple:
        """The next suggested-specification routing delta broadcast.

        Reads the changed-key set in O(|changes|) and consumes it,
        draining ids in rank order (== ``_sort_key`` order; see the
        class docstring).  Principals with an unmodified broadcast hook
        and checker mirrors both encode from here, which is what keeps
        actual and predicted broadcast streams bit-identical.  A
        changed key whose entry was deleted (a destination withdrawn by
        a topology event) becomes the withdrawal row
        ``(dest, None, ())``; on a static graph deletions never happen
        and no withdrawal is ever emitted.
        """
        changes = self._route_changes
        self._route_changes = set()
        routing = self.routing
        keys = self._node_keys
        rank = self._node_rank
        rows = []
        for did in sorted(changes, key=rank.__getitem__):
            dest = keys[did]
            entry = routing.entry(dest)
            if entry is not None:
                rows.append((dest, entry.cost, entry.path))
            else:
                rows.append((dest, None, ()))
        return tuple(rows)

    def consume_avoid_delta(self) -> Tuple:
        """The next suggested-specification avoidance delta broadcast.

        Deleted avoidance entries become withdrawal rows
        ``(dest, avoided, None, ())``, mirroring
        :meth:`consume_route_delta`.
        """
        changes = self._avoid_changes
        self._avoid_changes = set()
        avoid = self.avoid
        akeys = self._avoid_keys
        rank = self._node_rank
        dest_col = self._avoid_dest
        avoided_col = self._avoid_avoided
        rows = []
        for aid in sorted(
            changes, key=lambda a: (rank[dest_col[a]], rank[avoided_col[a]])
        ):
            key = akeys[aid]
            entry = avoid.get(key)
            if entry is not None:
                rows.append((key[0], key[1], entry.cost, entry.path))
            else:
                rows.append((key[0], key[1], None, ()))
        return tuple(rows)

    # --- neighbour vector ingestion -----------------------------------
    #
    # Offers are stored *raw* as ``(cost, path)`` tuples straight off
    # the wire: with broadcast fan-out every announcement is ingested
    # by every neighbour, so per-row materialisation (entry objects,
    # sort keys) would dominate the hot path.  Entries are only
    # materialised for adopted winners.

    def apply_route_update(self, neighbor: NodeId, vector: RouteVector) -> None:
        """Store a neighbour's *full* routing vector (dict form).

        Diffs against the previously stored vector and marks only the
        destinations whose rows changed as dirty.  The protocol's wire
        path uses :meth:`apply_route_delta`; this entry point serves
        replay tests and any caller holding a whole table.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a route update from non-neighbour {neighbor!r}"
            )
        raw = {
            dest: (dest, entry.cost, entry.path) for dest, entry in vector.items()
        }
        stored = self._route_offers.get(neighbor)
        if stored is None:
            stored = self._route_offers[neighbor] = {}
        owner_id = self._owner_id
        dirty = self._dirty_routes
        keys = self._node_keys
        intern = self._intern_node
        union = {keys[did] for did in stored}
        union.update(raw)
        for dest in sorted(union, key=_sort_key):
            did = intern(dest)
            offer = raw.get(dest)
            if stored.get(did) == offer:
                continue
            if offer is None:
                del stored[did]
                if did != owner_id:
                    self._universe_discard(did)
            else:
                if did != owner_id and did not in stored:
                    self._universe_add(did)
                stored[did] = offer
            if did != owner_id:
                suppliers = dirty.get(did)
                if suppliers is not None:
                    suppliers.add(neighbor)
                elif did not in dirty:
                    dirty[did] = {neighbor}
                # an existing None sentinel already demands a full rescan

    def apply_route_delta(self, neighbor: NodeId, rows: Sequence[Tuple]) -> None:
        """Ingest a wire delta produced by ``encode_route_delta``.

        Upserts ``(dest, cost, path)`` rows, removes withdrawal rows
        (``cost is None``), and marks each touched destination dirty
        with this neighbour as the changed supplier.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a route update from non-neighbour {neighbor!r}"
            )
        stored = self._route_offers.get(neighbor)
        if stored is None:
            stored = self._route_offers[neighbor] = {}
        owner_id = self._owner_id
        dirty = self._dirty_routes
        node_ids_get = self._node_ids.get
        intern = self._intern_node
        self.stats.rows_ingested += len(rows)
        for row in rows:
            dest = row[0]
            did = node_ids_get(dest)
            if did is None:
                did = intern(dest)
            if row[1] is None:  # withdrawal
                if did in stored:
                    del stored[did]
                    if did != owner_id:
                        self._universe_discard(did)
            else:
                if did != owner_id and did not in stored:
                    self._universe_add(did)
                stored[did] = row  # rows are shared across receivers
            if did != owner_id:
                suppliers = dirty.get(did)
                if suppliers is not None:
                    suppliers.add(neighbor)
                elif did not in dirty:
                    dirty[did] = {neighbor}

    def apply_avoid_update(self, neighbor: NodeId, vector: AvoidVector) -> None:
        """Store a neighbour's *full* avoidance vector (dict form).

        Marks changed ``(destination, avoided)`` keys dirty, and their
        destinations' pricing rows with them: even a value-preserving
        tie change can alter a DATA3* identity tag.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a price update from non-neighbour {neighbor!r}"
            )
        raw = {
            key: (key[0], key[1], entry.cost, entry.path)
            for key, entry in vector.items()
        }
        stored = self._avoid_offers.get(neighbor)
        if stored is None:
            stored = self._avoid_offers[neighbor] = {}
        rescan = self._avoid_rescan
        pricing = self._dirty_pricing
        akeys = self._avoid_keys
        dest_col = self._avoid_dest
        intern_avoid = self._intern_avoid
        union = {akeys[aid] for aid in stored}
        union.update(raw)
        for key in sorted(
            union, key=lambda k: (_sort_key(k[0]), _sort_key(k[1]))
        ):
            aid = intern_avoid(key)
            offer = raw.get(key)
            if stored.get(aid) == offer:
                continue
            if offer is None:
                del stored[aid]
            else:
                if aid not in stored:
                    self._note_offer(aid)
                stored[aid] = offer
            rescan.add(aid)
            pricing.add(dest_col[aid])

    def apply_avoid_delta(self, neighbor: NodeId, rows: Sequence[Tuple]) -> None:
        """Ingest a wire delta, fusing the monotone relaxation step.

        Every ``(dest, avoided, cost, path)`` row is stored as a raw
        offer; rows that *improve* on the reigning argmin are adopted
        immediately (a running min over the batch — confluent, so the
        batch-boundary result equals a batch-end relaxation), rows that
        worsen or withdraw the reigning argmin schedule a full rescan
        of the key, and strictly dominated rows — the overwhelming
        majority under broadcast fan-in — cost one comparison.
        Pricing rows are marked dirty only when a row can join, leave,
        or move the argmin tie, since DATA3* tags depend on exactly
        that set.  Every per-row invariant (neighbour cost, column
        references, the offer counter) is hoisted out of the loop; per
        row the key resolves to one interned ``aid`` and all state
        lives in list columns indexed by it.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a price update from non-neighbour {neighbor!r}"
            )
        stored = self._avoid_offers.get(neighbor)
        if stored is None:
            stored = self._avoid_offers[neighbor] = {}
        ncost = self.costs.get(neighbor)
        owner = self.owner
        ref_col = self._ref_col
        state_col = self._avoid_state_col
        dest_col = self._avoid_dest
        rescan_add = self._avoid_rescan.add
        pricing_add = self._dirty_pricing.add
        changes_add = self._avoid_changes.add
        note_offer = self._note_offer
        knows = self.costs.knows
        avoid = self.avoid
        stored_get = stored.get
        avoid_ids_get = self._avoid_ids.get
        intern_avoid = self._intern_avoid
        avoid_changed = self._avoid_changed
        self.stats.rows_ingested += len(rows)
        if ncost is None:
            # Unusable offers (neighbour cost unknown), exactly as in a
            # full scan: store rows for later rescans, nothing to relax.
            for row in rows:
                key = (row[0], row[1])
                aid = avoid_ids_get(key)
                if aid is None:
                    aid = intern_avoid(key)
                old = stored_get(aid)
                if row[2] is None:
                    if old is not None:
                        del stored[aid]
                    continue
                stored[aid] = row
                if old is None:
                    note_offer(aid)
            return
        for row in rows:
            dest, avoided, cost, path = row
            key = (dest, avoided)
            aid = avoid_ids_get(key)
            if aid is None:
                aid = intern_avoid(key)
            old = stored_get(aid)
            if cost is None:  # withdrawal
                if old is None:
                    continue
                del stored[aid]
                st = state_col[aid]
                if st is not None:
                    if st[0] == neighbor:
                        rescan_add(aid)
                        pricing_add(dest_col[aid])
                    elif ncost + old[2] <= st[1]:
                        pricing_add(dest_col[aid])  # an argmin tie may shrink
                continue
            stored[aid] = row  # rows are shared across receivers
            if old is None:
                note_offer(aid)
            did = dest_col[aid]
            if not ref_col[did]:
                # Entries freeze outside the destination universe (the
                # full rescan skips them too); re-entry rescans.
                pricing_add(did)
                continue
            total = ncost + cost
            st = state_col[aid]
            if st is None:
                # First valid candidate for this key (any earlier offer
                # would have been relaxed into a state entry).
                if (
                    avoided != owner
                    and avoided != dest
                    and knows(avoided)
                    and owner not in path
                    and avoided not in path
                ):
                    state_col[aid] = (neighbor, total, len(path), path)
                    avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
                    changes_add(aid)
                    avoid_changed = True
                    pricing_add(did)
                continue
            st_cost = st[1]
            if st[0] == neighbor:
                # The reigning supplier re-announced: improved offers
                # stay adopted, worsened or invalid ones force a rescan.
                if owner in path or avoided in path:
                    rescan_add(aid)
                    pricing_add(did)
                    continue
                hops = len(path)
                if total < st_cost or (
                    total == st_cost
                    and (
                        hops < st[2]
                        or (hops == st[2] and _lex_key(path) < _lex_key(st[3]))
                    )
                ):
                    state_col[aid] = (neighbor, total, hops, path)
                    avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
                    changes_add(aid)
                    avoid_changed = True
                    pricing_add(did)
                elif total == st_cost and hops == st[2] and path == st[3]:
                    pricing_add(did)  # value-identical re-announce
                else:
                    rescan_add(aid)
                    pricing_add(did)
                continue
            if total > st_cost:
                # Dominated row — the hot path.  It still displaces the
                # neighbour's previous offer, which may have been tied
                # with the argmin.
                if old is not None and ncost + old[2] <= st_cost:
                    pricing_add(did)
                continue
            if owner in path or avoided in path:
                if old is not None and ncost + old[2] <= st_cost:
                    pricing_add(did)
                continue
            if total == st_cost:
                hops = len(path)
                if hops < st[2] or (
                    hops == st[2] and _lex_key(path) < _lex_key(st[3])
                ):
                    state_col[aid] = (neighbor, total, hops, path)
                    avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
                    changes_add(aid)
                    avoid_changed = True
                pricing_add(did)  # joins or reshapes the tie either way
                continue
            state_col[aid] = (neighbor, total, len(path), path)
            avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
            changes_add(aid)
            avoid_changed = True
            pricing_add(did)
        self._avoid_changed = avoid_changed

    # --- routing relaxation -------------------------------------------
    #
    # Candidates are compared through *stripped* keys ``(cost, hops,
    # lex)``: the actual candidate sort key is ``(cost, hops + 1,
    # (repr(owner),) + lex)`` with the owner prefix shared by every
    # candidate of a node, so dropping it is a monotone transformation
    # that preserves the argmin and every tie.  Cost is compared first
    # and the lexicographic component is built only on full ties, so
    # the common case never touches repr.  The per-key relaxation state
    # ``(supplier, cost, hops, path)`` remembers the reigning argmin:
    # as long as the winner's own input did not worsen, a relaxation
    # only scans the suppliers whose input changed.

    def recompute_routes(self) -> bool:
        """Re-derive DATA2 by rescanning every destination; True if changed.

        The relaxation is the path-vector Bellman-Ford of the
        Griffin-Wilfong model with the deterministic (cost, hops,
        lexicographic) tie-break shared with the centralized oracle.
        This full rescan is the reference the incremental variant is
        property-tested against; the hot path uses
        :meth:`recompute_routes_incremental`.
        """
        self.computation_count += 1
        changed = False
        dids: Set[int] = set()
        for vector in self._route_offers.values():
            dids.update(vector)
        node_ids = self._node_ids
        for neighbor in self.neighbors:
            dids.add(node_ids[neighbor])
        # Destinations with an installed entry but no remaining offer
        # (withdrawn by topology events) must be rescanned so the entry
        # is deleted; on a static graph this union adds nothing.
        intern = self._intern_node
        for dest in self.routing.destinations:
            dids.add(intern(dest))
        dids.discard(self._owner_id)
        keys = self._node_keys
        rank = self._node_rank
        for did in sorted(dids, key=rank.__getitem__):
            if self._relax_route(keys[did], None, did):
                changed = True
        self._dirty_routes = {}
        return changed

    def recompute_routes_incremental(self) -> bool:
        """Relax only the dirty destinations; True if DATA2 changed.

        Observably identical to :meth:`recompute_routes` because a
        destination's candidate set depends only on its own rows in the
        neighbour vectors (diffed on ingestion) and on DATA1 (frozen in
        phase 2, conservatively handled otherwise).
        """
        self.computation_count += 1
        dirty = self._dirty_routes
        if not dirty:
            return False
        self._dirty_routes = {}
        ref_col = self._ref_col
        keys = self._node_keys
        changed = False
        for did, suppliers in dirty.items():
            if not ref_col[did]:
                # Outside the universe the full rescan finds no
                # candidates either: withdraw any retained entry;
                # rejoining re-marks the destination dirty.
                if self._drop_route_entry(did):
                    changed = True
                continue
            if self._relax_route(keys[did], suppliers, did):
                changed = True
        return changed

    def _drop_route_entry(self, did: int) -> bool:
        """Withdraw a destination's DATA2 entry; True if one existed."""
        self._route_state_col[did] = None
        if self.routing.remove(self._node_keys[did]):
            self._route_changes.add(did)
            self._dirty_pricing.add(did)
            return True
        return False

    def _drop_avoid_entry(self, aid: int) -> bool:
        """Withdraw one avoidance entry; True if one existed."""
        self._avoid_state_col[aid] = None
        if self.avoid.pop(self._avoid_keys[aid], None) is not None:
            self._avoid_changes.add(aid)
            self._dirty_pricing.add(self._avoid_dest[aid])
            return True
        return False

    def _relax_route(
        self,
        destination: NodeId,
        suppliers: Optional[Set[NodeId]] = None,
        did: Optional[int] = None,
    ) -> bool:
        """Relax one destination; True if its DATA2 entry changed.

        ``suppliers`` limits the scan to the neighbours whose input
        changed (``None`` rescans everything): if the previous winner
        is not among them it still bounds the minimum, and if it is but
        improved, it still wins against the unchanged rest — only a
        worsened winner forces the full rescan.  ``did`` is the
        destination's interned id when the caller already holds it.
        """
        owner = self.owner
        if did is None:
            did = self._intern_node(destination)
        state_col = self._route_state_col
        state = state_col[did]
        cur = self.routing.entry(destination)
        full = suppliers is None
        self.stats.route_relaxations += 1
        if cur is not None and state is None:
            # The entry lost its supporting candidate in an earlier
            # no-candidate rescan; only a full rescan may touch it.
            full = True
        # best: (supplier, cost, hops, offer path) stripped candidate.
        best = None
        keep = False
        if not full and state is not None:
            sup = state[0]
            if sup is not _BASE and sup in suppliers:
                vec = self._route_offers.get(sup)
                offer = vec.get(did) if vec else None
                cand = None
                if offer is not None:
                    cost = self.costs.get(sup)
                    opath = offer[2]
                    if cost is not None and owner not in opath:
                        cand = (sup, cost + offer[1], len(opath), opath)
                if cand is None or _stripped_worse(cand, state):
                    full = True  # the reigning input worsened: rescan
                else:
                    best = cand
            else:
                best = state
                keep = True
        if full:
            self.stats.route_rescans += 1
        costs_get = self.costs.get
        routes_get = self._route_offers.get
        # lint: allow[unordered-iter] argmin over the strict total order (cost, hops, lex key) is iteration-order independent
        for neighbor in (self.neighbors if full else suppliers):
            if neighbor == destination:
                if state is None or full:
                    if best is None or _stripped_beats_base(destination, best):
                        best = (_BASE, 0.0, 1, (destination,))
                        keep = False
                continue
            if best is not None and neighbor == best[0]:
                continue
            vec = routes_get(neighbor)
            offer = vec.get(did) if vec else None
            if offer is None:
                continue
            ncost = costs_get(neighbor)
            if ncost is None:
                continue
            total = ncost + offer[1]
            opath = offer[2]
            if best is not None:
                bcost = best[1]
                if total > bcost:
                    continue
                hops = len(opath)
                if total == bcost:
                    bhops = best[2]
                    if hops > bhops:
                        continue
                    if hops == bhops and _lex_key(opath) >= _lex_key(best[3]):
                        continue
            if owner in opath:
                continue
            best = (neighbor, total, len(opath), opath)
            keep = False
        if best is None:
            # Only a full rescan can reach here with an entry installed
            # (partial scans keep the reigning argmin as a bound), so a
            # surviving entry genuinely has no candidate left anywhere:
            # the destination became unreachable and is withdrawn, just
            # as a fresh computation on the shrunken graph would never
            # have derived it.  On a static graph this never fires —
            # obedient neighbours never retract their offers.
            if state is not None:
                state_col[did] = None
            if cur is not None:
                self.routing.remove(destination)
                self._route_changes.add(did)
                self._dirty_pricing.add(did)
                return True
            return False
        if keep:
            return False
        if state is not None:
            if _stripped_equal(best, state):
                state_col[did] = best
                return False
        elif cur is not None and (
            best[1] == cur.cost
            and best[2] == len(cur.path) - 1
            and _lex_key(tuple(best[3])) == _lex_key(cur.path[1:])
        ):
            # The rescan re-derived the previously unsupported entry.
            state_col[did] = best
            return False
        state_col[did] = best
        sup, total, _hops, opath = best
        if sup is _BASE:
            entry = RouteEntry(cost=0.0, path=(owner, destination))
        else:
            entry = RouteEntry(cost=total, path=(owner,) + tuple(opath))
        self.routing.update(destination, entry)
        self._route_changes.add(did)
        self._dirty_pricing.add(did)
        return True

    # --- avoidance relaxation -----------------------------------------

    def recompute_avoidance(self) -> bool:
        """Re-derive the avoidance table by full rescan; True if changed.

        Reference counterpart of
        :meth:`recompute_avoidance_incremental`, retained for phase
        starts and the equivalence property tests.  The returned flag
        also covers entries already moved by the fused ingestion since
        the previous recompute call, so "did anything change since the
        last recomputation" keeps its meaning in every mode.
        """
        self.computation_count += 1
        changed = self._avoid_changed
        self._avoid_changed = False
        all_nodes = set(self.known_nodes())
        dids: Set[int] = set()
        for vector in self._route_offers.values():
            dids.update(vector)
        node_ids = self._node_ids
        for neighbor in self.neighbors:
            dids.add(node_ids[neighbor])
        dids.discard(self._owner_id)
        keys = self._node_keys
        # lint: allow[unordered-iter] set-to-set id decode; iteration order cannot escape the built set
        destinations = {keys[did] for did in dids}
        # Entries whose destination left the universe, or keyed on a
        # node without a DATA1 entry, have no counterpart in a fresh
        # fixed point: withdraw them before relaxing (static runs never
        # produce such keys).
        avoid_ids = self._avoid_ids
        stale = [
            avoid_ids[key]
            for key in self.avoid
            if key[0] not in destinations or key[1] not in all_nodes
        ]
        rank = self._node_rank
        dest_col = self._avoid_dest
        avoided_col = self._avoid_avoided
        for aid in sorted(
            stale, key=lambda a: (rank[dest_col[a]], rank[avoided_col[a]])
        ):
            if self._drop_avoid_entry(aid):
                changed = True
        if not any(self._avoid_offers.values()):
            # Without avoidance inputs only the base case can supply a
            # candidate, so only directly-connected destinations matter
            # (typical at a phase start) — plus destinations that still
            # hold entries, which the rescan must be able to withdraw.
            destinations &= set(self.neighbors) | {key[0] for key in self.avoid}
        for destination in sorted(destinations, key=repr):
            for avoided in sorted(all_nodes, key=repr):
                if avoided in (self.owner, destination):
                    continue
                if self._relax_avoid(destination, avoided):
                    changed = True
        self._avoid_rescan = set()
        self._avoid_dest_pending = set()
        return changed

    def recompute_avoidance_incremental(self) -> bool:
        """Settle the avoidance table; True if it changed.

        Improvements were already adopted during ingestion (the
        :attr:`_avoid_changed` flag); what remains is rescanning the
        keys whose reigning argmin was invalidated — worsened,
        withdrawn, or whose destination (re)entered the universe.
        """
        self.computation_count += 1
        changed = self._avoid_changed
        self._avoid_changed = False
        rescan = self._avoid_rescan
        pending = self._avoid_dest_pending
        if pending:
            self._avoid_dest_pending = set()
            ref_col = self._ref_col
            offered = self._avoid_keys_by_dest
            node_ids = self._node_ids
            neighbor_ids = {node_ids[n] for n in self.neighbors}
            owner = self.owner
            owner_id = self._owner_id
            keys = self._node_keys
            rank = self._node_rank
            avoided_col = self._avoid_avoided
            intern_avoid = self._intern_avoid
            for did in sorted(pending, key=rank.__getitem__):
                if not ref_col[did]:
                    continue  # left the universe again; re-entry re-pends
                if did in neighbor_ids:
                    # The base case supplies a candidate for every
                    # avoided id, so neighbour destinations sweep the
                    # whole key row.
                    dest = keys[did]
                    for avoided in self.costs.as_dict():
                        if avoided != owner and avoided != dest:
                            rescan.add(intern_avoid((dest, avoided)))
                    continue
                # Non-neighbour destination: only keys that ever stored
                # an offer can yield or invalidate anything; the rest
                # are no-ops in the full rescan too.
                for aid in offered.get(did, ()):
                    vid = avoided_col[aid]
                    if vid != owner_id and vid != did:
                        rescan.add(aid)
        if rescan:
            self._avoid_rescan = set()
            ref_col = self._ref_col
            knows = self.costs.knows
            owner_id = self._owner_id
            rank = self._node_rank
            dest_col = self._avoid_dest
            avoided_col = self._avoid_avoided
            akeys = self._avoid_keys
            for aid in sorted(
                rescan, key=lambda a: (rank[dest_col[a]], rank[avoided_col[a]])
            ):
                did = dest_col[aid]
                if not ref_col[did]:
                    # Outside the universe a fresh fixed point holds no
                    # entry: withdraw any retained one (rejoining the
                    # universe re-marks the key).
                    if self._drop_avoid_entry(aid):
                        changed = True
                    continue
                vid = avoided_col[aid]
                if vid == owner_id or vid == did:
                    continue
                key = akeys[aid]
                if not knows(key[1]):
                    # No DATA1 entry for the avoided node (retracted by
                    # a departure): the key cannot exist freshly.
                    if self._drop_avoid_entry(aid):
                        changed = True
                    continue
                if self._relax_avoid(key[0], key[1], aid):
                    changed = True
        return changed

    def _relax_avoid(
        self, destination: NodeId, avoided: NodeId, aid: Optional[int] = None
    ) -> bool:
        """Fully rescan one avoidance key; True if its entry changed.

        Same stripped-candidate scan as :meth:`_relax_route`, with the
        avoided node excluded both as a neighbour and inside paths.
        ``aid`` is the key's interned id when the caller already holds
        it.
        """
        owner = self.owner
        if aid is None:
            aid = self._intern_avoid((destination, avoided))
        key = self._avoid_keys[aid]
        state_col = self._avoid_state_col
        state = state_col[aid]
        cur = self.avoid.get(key)
        best = None
        self.stats.avoid_rescans += 1
        costs_get = self.costs.get
        offers_get = self._avoid_offers.get
        for neighbor in self.neighbors:
            if neighbor == avoided:
                continue
            if neighbor == destination:
                if best is None or _stripped_beats_base(destination, best):
                    best = (_BASE, 0.0, 1, (destination,))
                continue
            vec = offers_get(neighbor)
            offer = vec.get(aid) if vec else None
            if offer is None:
                continue
            ncost = costs_get(neighbor)
            if ncost is None:
                continue
            total = ncost + offer[2]
            opath = offer[3]
            if best is not None:
                bcost = best[1]
                if total > bcost:
                    continue
                hops = len(opath)
                if total == bcost:
                    bhops = best[2]
                    if hops > bhops:
                        continue
                    if hops == bhops and _lex_key(opath) >= _lex_key(best[3]):
                        continue
            if owner in opath or avoided in opath:
                continue
            best = (neighbor, total, len(opath), opath)
        if best is None:
            # No candidate anywhere supports this key: withdraw the
            # entry (topology events only — static runs never retract
            # offers, so this branch is inert there).
            if state is not None:
                state_col[aid] = None
            if cur is not None:
                del self.avoid[key]
                self._avoid_changes.add(aid)
                self._dirty_pricing.add(self._avoid_dest[aid])
                return True
            return False
        if state is not None:
            if _stripped_equal(best, state):
                state_col[aid] = best
                return False
        elif cur is not None and (
            best[1] == cur.cost
            and best[2] == len(cur.path) - 1
            and _lex_key(tuple(best[3])) == _lex_key(cur.path[1:])
        ):
            # The rescan re-derived the previously unsupported entry.
            state_col[aid] = best
            return False
        state_col[aid] = best
        sup, total, _hops, opath = best
        if sup is _BASE:
            entry = RouteEntry(cost=0.0, path=(owner, destination))
        else:
            entry = RouteEntry(cost=total, path=(owner,) + tuple(opath))
        self.avoid[key] = entry
        self._avoid_changes.add(aid)
        self._dirty_pricing.add(self._avoid_dest[aid])
        return True

    # --- pricing derivation -------------------------------------------

    def derive_pricing(self) -> bool:
        """Recompute DATA3* from DATA2 and the avoidance table.

        For every destination ``j`` with a route, and every transit
        node ``k`` interior to that route, install

            price = c_k + d^{-k}(owner, j) - d(owner, j)

        with the identity tag set to the argmin suppliers of the
        avoidance entry.  Returns True if any cell changed.  Full-table
        reference counterpart of :meth:`derive_pricing_incremental`.
        """
        self.computation_count += 1
        changed = False
        for destination in self.routing.destinations:
            if self._derive_pricing_row(destination):
                changed = True
        # Rows whose destination lost its route (withdrawn by topology
        # events) are cleared — a fresh computation never derives them.
        routed = set(self.routing.destinations)
        for destination in self.pricing.destinations:
            if destination not in routed and self._clear_pricing_row(destination):
                changed = True
        self._dirty_pricing = set()
        return changed

    def derive_pricing_incremental(self) -> bool:
        """Re-derive only the dirty pricing rows; True if changed.

        A row depends on its destination's DATA2 entry, the avoidance
        entries along that path, and the supplier tags (which read the
        avoidance *inputs* directly — a tie union can change a tag
        without changing any avoidance entry, which is why vector
        ingestion marks rows dirty by input key, not by entry change).
        """
        self.computation_count += 1
        dirty = self._dirty_pricing
        if not dirty:
            return False
        self._dirty_pricing = set()
        changed = False
        keys = self._node_keys
        rank = self._node_rank
        for did in sorted(dirty, key=rank.__getitem__):
            destination = keys[did]
            if self.routing.entry(destination) is None:
                # No route (possibly withdrawn): clear any retained row;
                # a route arriving later re-marks it.
                if self._clear_pricing_row(destination):
                    changed = True
                continue
            if self._derive_pricing_row(destination):
                changed = True
        return changed

    def _clear_pricing_row(self, destination: NodeId) -> bool:
        """Clear one DATA3* row; True if it held any cell."""
        if self.pricing.row(destination):
            self.pricing.clear_destination(destination)
            return True
        return False

    def _derive_pricing_row(self, destination: NodeId) -> bool:
        """Re-derive one destination's DATA3* row; True if it changed."""
        entry = self.routing.entry(destination)
        assert entry is not None
        desired: Dict[NodeId, Tuple[Cost, FrozenSet[NodeId]]] = {}
        for transit in entry.path[1:-1]:
            avoid_entry = self.avoid.get((destination, transit))
            if avoid_entry is None or not self.costs.knows(transit):
                continue
            price = self.costs.cost(transit) + avoid_entry.cost - entry.cost
            tag = self._supplier_tag(destination, transit)
            desired[transit] = (price, tag)
        current_row = self.pricing.row(destination)
        current_view = {
            transit: (cell.price, cell.tag) for transit, cell in current_row.items()
        }
        if current_view == desired:
            return False
        self.pricing.clear_destination(destination)
        for transit, (price, tag) in desired.items():
            self.pricing.set_price(destination, transit, price, tag)
        return True

    def _supplier_tag(self, destination: NodeId, avoided: NodeId) -> FrozenSet[NodeId]:
        """Argmin suppliers of one avoidance entry (union on ties)."""
        owner = self.owner
        aid = self._avoid_ids.get((destination, avoided))
        best = None  # (cost, hops, path)
        tag: List[NodeId] = []
        costs_get = self.costs.get
        offers_get = self._avoid_offers.get
        for neighbor in self.neighbors:
            if neighbor == avoided:
                continue
            if neighbor == destination:
                cand = (0.0, 1, (destination,))
            else:
                if aid is None:
                    # Never interned: no neighbour ever offered it.
                    continue
                vec = offers_get(neighbor)
                offer = vec.get(aid) if vec else None
                if offer is None:
                    continue
                ncost = costs_get(neighbor)
                if ncost is None:
                    continue
                opath = offer[3]
                if owner in opath or avoided in opath:
                    continue
                cand = (ncost + offer[2], len(opath), opath)
            if best is None:
                best = cand
                tag = [neighbor]
                continue
            if cand[0] != best[0]:
                if cand[0] < best[0]:
                    best = cand
                    tag = [neighbor]
                continue
            if cand[1] != best[1]:
                if cand[1] < best[1]:
                    best = cand
                    tag = [neighbor]
                continue
            if cand[2] is best[2]:
                tag.append(neighbor)
                continue
            lex_c, lex_b = _lex_key(cand[2]), _lex_key(best[2])
            if lex_c < lex_b:
                best = cand
                tag = [neighbor]
            elif lex_c == lex_b:
                tag.append(neighbor)
        return frozenset(tag)

    # ------------------------------------------------------------------
    # digests for bank comparison, snapshots
    # ------------------------------------------------------------------

    def routing_digest(self) -> str:
        """Hash of DATA2 (BANK1 material)."""
        return self.routing.stable_digest()

    def pricing_digest(self) -> str:
        """Hash of DATA3* including tags (BANK2 material)."""
        return self.pricing.stable_digest()

    def cost_digest(self) -> str:
        """Hash of DATA1 (first-construction-phase checkpoint)."""
        return self.costs.stable_digest()

    def full_digest(self) -> str:
        """Combined digest over all construction state."""
        return stable_hash(
            (self.cost_digest(), self.routing_digest(), self.pricing_digest())
        )

    def settle(self) -> Tuple[Optional[Tuple], Optional[Tuple]]:
        """Run one incremental settle step; returns the emitted deltas.

        Relaxes routes, settles the avoidance table, re-derives dirty
        pricing rows, and consumes the changed-key sets into the
        suggested-specification broadcast deltas — ``(route_delta,
        avoid_delta)``, each ``None`` when that table did not change.
        This ordering *is* the replay-exactness contract: principals,
        shared kernels, forked mirrors, and the synchronous oracle all
        settle through this one implementation, which is what keeps
        their broadcast streams bit-identical; callers only differ in
        what they do with the deltas (announce, record, queue, post,
        or discard).
        """
        route_delta = (
            self.consume_route_delta()
            if self.recompute_routes_incremental()
            else None
        )
        avoid_delta = (
            self.consume_avoid_delta()
            if self.recompute_avoidance_incremental()
            else None
        )
        self.derive_pricing_incremental()
        return route_delta, avoid_delta

    def snapshot(self) -> KernelSnapshot:
        """Digest-level checkpoint of the current construction state.

        The bank-comparable view of the kernel at this instant; cheap
        (no table copies), immutable, and sufficient to compare two
        replays for observational equality.
        """
        return KernelSnapshot(
            owner=self.owner,
            cost_digest=self.cost_digest(),
            routing_digest=self.routing_digest(),
            pricing_digest=self.pricing_digest(),
            computation_count=self.computation_count,
        )


# ----------------------------------------------------------------------
# shared checker replay
# ----------------------------------------------------------------------

#: Outcomes of submitting an op against a shared log position — the
#: return vocabulary of :meth:`SharedKernel.ingest`; compare by
#: identity against these constants.
OP_HIT = "hit"  # op matched the log; result reused
OP_EXTENDED = "extended"  # op appended at the frontier; kernel ran it
OP_DIVERGED = "diverged"  # op conflicts with the log; caller must fork


@dataclass
class SharedKernel:
    """One principal's replayed kernel plus the verified op log.

    Built from the *seed* every checker derives independently (the
    principal's neighbour set from the checker-setup handshake, its
    declared cost, and the converged DATA1), then advanced op by op by
    whichever mirror reaches the log frontier first.  See the module
    docstring for the sharing invariant and fork semantics.
    """

    owner: NodeId
    seed_neighbors: Tuple[NodeId, ...]
    seed_cost: Cost
    seed_known_costs: Dict[NodeId, Cost]
    kernel: ReplayKernel = field(init=False)
    #: Verified op log: ``("apply", kind, src, rows)`` for ingested
    #: copies, ``("flush", route_delta|None, price_delta|None)`` for
    #: relaxation boundaries with their recorded broadcast predictions.
    ops: List[Tuple] = field(default_factory=list)
    initial_route: Tuple = field(init=False)
    initial_price: Tuple = field(init=False)
    stats: KernelStats = field(default_factory=KernelStats)

    def __post_init__(self) -> None:
        """Replicate the principal's ``start_phase2`` exactly once."""
        self.kernel = self._fresh_kernel()
        self.initial_route = self.kernel.consume_route_delta()
        self.initial_price = self.kernel.consume_avoid_delta()

    def _fresh_kernel(self) -> ReplayKernel:
        """A kernel in the state every mirror starts phase 2 from."""
        kernel = ReplayKernel(self.owner, self.seed_neighbors, self.seed_cost)
        for node, cost in self.seed_known_costs.items():
            kernel.note_cost_declaration(node, cost)
        kernel.reset_phase2()
        kernel.recompute_routes()
        kernel.recompute_avoidance()
        kernel.derive_pricing()
        return kernel

    def matches_seed(
        self,
        neighbors: Sequence[NodeId],
        declared_cost: Cost,
        known_costs: Mapping[NodeId, Cost],
    ) -> bool:
        """Whether a mirror seeded like this may share the kernel."""
        return (
            tuple(sorted(neighbors, key=repr)) == self.seed_neighbors
            # lint: allow[float-eq] seed identity must be exact; any bit difference forbids kernel sharing
            and float(declared_cost) == self.seed_cost
            and dict(known_costs) == self.seed_known_costs
        )

    @property
    def frontier(self) -> int:
        """The log position the kernel state corresponds to."""
        return len(self.ops)

    def ingest(self, pos: int, kind: str, src: NodeId, rows: Tuple) -> str:
        """Submit one copy-apply op at log position ``pos``.

        Returns ``"hit"`` (op matched the log; nothing ran),
        ``"extended"`` (op appended at the frontier; the kernel ingested
        it), or ``"diverged"`` (op conflicts with the log; the caller
        must fork).  Honest multicast shares one rows tuple across all
        receivers, so the verification compare is an identity check on
        the hot path.
        """
        ops = self.ops
        if pos < len(ops):
            logged = ops[pos]
            if (
                logged[0] == "apply"
                and logged[1] == kind
                and logged[2] == src
                and (logged[3] is rows or logged[3] == rows)
            ):
                self.stats.shared_hits += 1
                return OP_HIT
            return OP_DIVERGED
        ops.append(("apply", kind, src, rows))
        if kind == KIND_RT_UPDATE:
            self.kernel.apply_route_delta(src, rows)
        else:
            self.kernel.apply_avoid_delta(src, rows)
        return OP_EXTENDED

    def flush(self, pos: int) -> Optional[Tuple[int, Optional[Tuple], Optional[Tuple], bool]]:
        """Submit one relaxation-boundary op at log position ``pos``.

        Returns ``(new_pos, route_delta, price_delta, ran)`` where the
        deltas are the predicted broadcasts (``None`` when that table
        did not change) and ``ran`` says whether this call executed the
        relaxation (False on a log hit).  Returns ``None`` when the log
        holds a conflicting op at ``pos`` — the caller must fork.
        """
        ops = self.ops
        if pos < len(ops):
            logged = ops[pos]
            if logged[0] != "flush":
                return None
            self.stats.shared_hits += 1
            return (pos + 1, logged[1], logged[2], False)
        route_delta, price_delta = self.kernel.settle()
        ops.append(("flush", route_delta, price_delta))
        return (pos + 1, route_delta, price_delta, True)

    def fork_at(self, pos: int) -> ReplayKernel:
        """A private kernel replaying the verified log prefix ``[:pos]``.

        This is the state fork of the sharing design: the prefix is
        exactly the ops the forking mirror already verified as its own,
        so the result is bit-identical to the per-neighbour replay of
        that mirror's stream.  Paid only on divergence (deviant runs)
        or when a straggler mirror needs state behind the frontier.
        """
        self.stats.forks += 1
        kernel = self._fresh_kernel()
        # The seed recompute's changed keys were consumed into the
        # initial announcement; replicate that consumption.
        kernel.consume_route_delta()
        kernel.consume_avoid_delta()
        for op in self.ops[:pos]:
            if op[0] == "apply":
                if op[1] == KIND_RT_UPDATE:
                    kernel.apply_route_delta(op[2], op[3])
                else:
                    kernel.apply_avoid_delta(op[2], op[3])
            else:
                kernel.settle()  # deltas already queued at this position
        return kernel


class MirrorKernelPool:
    """Per-host registry of :class:`SharedKernel` keyed by principal.

    One pool serves one simulated host (one process running the whole
    network); :meth:`new_epoch` must be called before every phase-2
    (re)start so restarted mirrors never attach to a consumed log.
    """

    def __init__(self) -> None:
        self._kernels: Dict[NodeId, SharedKernel] = {}
        self.epoch = 0
        #: Seed-mismatch refusals across all epochs (sharing declined).
        self.stats = KernelStats()

    def new_epoch(self) -> None:
        """Drop every shared kernel (a phase-2 restart begins)."""
        self._collect_stats()
        self._kernels = {}
        self.epoch += 1

    def acquire(
        self,
        principal: NodeId,
        neighbors: Sequence[NodeId],
        declared_cost: Cost,
        known_costs: Mapping[NodeId, Cost],
    ) -> Optional[SharedKernel]:
        """The shared kernel for a principal, or None if seeds differ.

        The first checker to ask creates the kernel from its own seed;
        later checkers share only if their independently derived seed
        is identical (the sharing invariant) — otherwise they get None
        and must replay privately.
        """
        entry = self._kernels.get(principal)
        if entry is None:
            entry = SharedKernel(
                owner=principal,
                seed_neighbors=tuple(sorted(neighbors, key=repr)),
                seed_cost=float(declared_cost),
                seed_known_costs=dict(known_costs),
            )
            self._kernels[principal] = entry
            return entry
        if not entry.matches_seed(neighbors, declared_cost, known_costs):
            self.stats.seed_mismatches += 1
            return None
        return entry

    def _collect_stats(self) -> None:
        for entry in self._kernels.values():
            self.stats.merge(entry.stats)
            self.stats.merge(entry.kernel.stats)

    def collected_stats(self) -> KernelStats:
        """Aggregated counters over all epochs (live kernels included)."""
        total = KernelStats()
        total.merge(self.stats)
        for entry in self._kernels.values():
            total.merge(entry.stats)
            total.merge(entry.kernel.stats)
        return total


# ----------------------------------------------------------------------
# pure-kernel convergence oracle
# ----------------------------------------------------------------------




def kernel_fixed_point(
    graph, max_rounds: int = 100_000, kernel_cls: Optional[type] = None
) -> Dict[NodeId, "ReplayKernel"]:
    """Run the FPSS relaxation to its fixed point with no simulator.

    The third kernel client: one :class:`ReplayKernel` per vertex,
    iterated in synchronous rounds (every kernel ingests all deltas
    addressed to it, relaxes once, and emits its changed-key deltas)
    until no kernel changes.  Because the fixed point of the monotone
    relaxation is unique and the tie-breaks deterministic, the
    resulting tables — and hence digests — are identical to any
    asynchronous protocol execution on the same graph, which is what
    :func:`~repro.routing.convergence.verify_against_kernel` exploits.

    ``kernel_cls`` substitutes a drop-in kernel implementation (the
    columnar/dict equivalence suite drives both
    :class:`ReplayKernel` and
    :class:`~repro.routing.kernel_dict.DictReplayKernel` through the
    same rounds); the default is :class:`ReplayKernel`.

    Raises
    ------
    ConvergenceError
        If ``max_rounds`` synchronous rounds do not reach quiescence
        (impossible for a static graph unless the kernel is buggy).
    """
    cls = ReplayKernel if kernel_cls is None else kernel_cls
    order = sorted(graph.nodes, key=repr)
    kernels = {
        node: cls(node, graph.neighbors(node), graph.cost(node))
        for node in order
    }
    for kernel in kernels.values():
        for node in order:
            kernel.note_cost_declaration(node, graph.cost(node))
    # receiver -> [(kind, src, rows)] queued for the next round.
    mailbox: Dict[NodeId, List[Tuple[str, NodeId, Tuple]]] = {n: [] for n in order}

    def post(src: NodeId, kind: str, rows: Tuple) -> None:
        if rows:
            for neighbor in kernels[src].neighbors:
                mailbox[neighbor].append((kind, src, rows))

    for node in order:
        kernel = kernels[node]
        kernel.reset_phase2()
        kernel.recompute_routes()
        kernel.recompute_avoidance()
        kernel.derive_pricing()
        post(node, KIND_RT_UPDATE, kernel.consume_route_delta())
        post(node, KIND_PRICE_UPDATE, kernel.consume_avoid_delta())

    for _round in range(max_rounds):
        if not any(mailbox.values()):
            return kernels
        inbox, mailbox = mailbox, {n: [] for n in order}
        for node in order:
            kernel = kernels[node]
            for kind, src, rows in inbox[node]:
                if kind == KIND_RT_UPDATE:
                    kernel.apply_route_delta(src, rows)
                else:
                    kernel.apply_avoid_delta(src, rows)
            route_delta, price_delta = kernel.settle()
            if route_delta is not None:
                post(node, KIND_RT_UPDATE, route_delta)
            if price_delta is not None:
                post(node, KIND_PRICE_UPDATE, price_delta)
    raise ConvergenceError(
        f"kernel fixed point not reached within {max_rounds} rounds"
    )
