"""Helpers to run the plain FPSS protocol to convergence.

Builds a simulator from an :class:`~repro.routing.graph.ASGraph` —
with homogeneous or per-link (``link_delays``) delays, and batched or
per-message delivery — drives the two construction phases to
quiescence, and cross-checks the distributed fixed point against the
centralized oracle.  The default configuration (batched delivery plus
the incremental relaxations of :mod:`repro.routing.fpss`) is what the
convergence sweep probe and the benchmarks measure; the knobs exist so
the equivalence tests can run the same graph in every mode and compare
fixed points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..errors import ConvergenceError
from ..sim.network import NetworkTopology
from ..sim.simulator import Simulator
from .engine import engine_for
from .fpss import FPSSNode
from .graph import ASGraph, Cost, NodeId
from .kernel import kernel_fixed_point
from .vcg_payments import route_payments


def topology_from_graph(graph: ASGraph, delay=1.0) -> NetworkTopology:
    """A simulator topology mirroring the AS graph's links.

    Parameters
    ----------
    delay:
        Either a constant, a mapping ``frozenset({a, b}) -> delay``, or
        a callable ``delay(a, b) -> float``.  Heterogeneous delays make
        the network asynchronous across links; the faithful extension
        only relies on per-link FIFO, which any fixed per-link delay
        preserves.
    """
    topology = NetworkTopology()
    for node in graph.nodes:
        topology.add_node(node)
    for a, b in graph.edges:
        if callable(delay):
            link_delay = delay(a, b)
        elif isinstance(delay, dict):
            link_delay = delay[frozenset((a, b))]
        else:
            link_delay = delay
        topology.add_link(a, b, delay=link_delay)
    return topology


def build_plain_network(
    graph: ASGraph,
    node_factory: Optional[Callable[[NodeId, Cost], FPSSNode]] = None,
    trace_enabled: bool = False,
    link_delays=1.0,
    batch_delivery: bool = True,
) -> Tuple[Simulator, Dict[NodeId, FPSSNode]]:
    """A simulator populated with (possibly customised) FPSS nodes.

    ``node_factory`` lets callers substitute manipulation subclasses
    for chosen nodes; the default builds obedient :class:`FPSSNode`.
    ``link_delays`` is forwarded to :func:`topology_from_graph`, so
    heterogeneous (per-link) delays model asynchrony.
    ``batch_delivery=False`` turns off the simulator's same-instant
    delivery coalescing (one recomputation per message instead of one
    per batch; same fixed point either way).
    """
    factory = node_factory or (lambda node_id, cost: FPSSNode(node_id, cost))
    simulator = Simulator(
        topology_from_graph(graph, delay=link_delays),
        trace_enabled=trace_enabled,
        batch_delivery=batch_delivery,
    )
    nodes: Dict[NodeId, FPSSNode] = {}
    for node_id in graph.nodes:
        node = factory(node_id, graph.cost(node_id))
        nodes[node_id] = node
        simulator.add_node(node)
    return simulator, nodes


@dataclass
class ConvergenceStats:
    """How much work the construction phases took."""

    phase1_events: int
    phase2_events: int
    total_messages: int
    total_computations: int

    @property
    def total_events(self) -> int:
        """Events across both construction phases."""
        return self.phase1_events + self.phase2_events


def run_construction_phases(
    simulator: Simulator,
    nodes: Mapping[NodeId, FPSSNode],
    max_events: int = 2_000_000,
) -> ConvergenceStats:
    """Drive phase 1 then phase 2 to quiescence."""
    for node_id in sorted(nodes, key=repr):
        simulator.schedule_local(
            node_id, 0.0, nodes[node_id].start_phase1, label="start-phase1"
        )
    phase1_events = simulator.run_until_quiescent(max_events=max_events)

    for node_id in sorted(nodes, key=repr):
        simulator.schedule_local(
            node_id, 0.0, nodes[node_id].start_phase2, label="start-phase2"
        )
    phase2_events = simulator.run_until_quiescent(max_events=max_events)

    return ConvergenceStats(
        phase1_events=phase1_events,
        phase2_events=phase2_events,
        total_messages=simulator.metrics.total_messages,
        total_computations=simulator.metrics.total_computations,
    )


def run_plain_fpss(
    graph: ASGraph,
    node_factory: Optional[Callable[[NodeId, Cost], FPSSNode]] = None,
    trace_enabled: bool = False,
    link_delays=1.0,
    max_events: int = 2_000_000,
    batch_delivery: bool = True,
) -> Tuple[Simulator, Dict[NodeId, FPSSNode], ConvergenceStats]:
    """Build, run, and return a converged plain-FPSS network.

    Parameters
    ----------
    graph:
        The AS graph (true transit costs; biconnected for pricing).
    node_factory:
        Optional ``(node_id, cost) -> FPSSNode`` substitution hook for
        manipulation subclasses; obedient :class:`FPSSNode` otherwise.
    trace_enabled:
        Record a full simulator trace (off by default — large runs).
    link_delays:
        Constant, ``frozenset({a, b}) -> delay`` mapping, or callable
        ``delay(a, b)`` giving per-link delays; heterogeneous values
        make the run asynchronous across links.
    max_events:
        Event budget per construction phase before a
        :class:`~repro.errors.ConvergenceError` is raised.
    batch_delivery:
        Coalesce same-instant deliveries (the incremental engine's
        default); ``False`` restores per-message delivery events.

    Returns
    -------
    ``(simulator, nodes, stats)`` — the quiesced simulator, the node
    map, and the per-phase :class:`ConvergenceStats` work counters.
    """
    simulator, nodes = build_plain_network(
        graph,
        node_factory=node_factory,
        trace_enabled=trace_enabled,
        link_delays=link_delays,
        batch_delivery=batch_delivery,
    )
    stats = run_construction_phases(simulator, nodes, max_events=max_events)
    return simulator, nodes, stats


def measure_convergence(
    graph: ASGraph,
    link_delays=1.0,
    verify: bool = True,
    check_prices: bool = False,
    max_events: int = 2_000_000,
    batch_delivery: bool = True,
) -> ConvergenceStats:
    """One self-contained convergence measurement for a scenario.

    Builds a fresh simulator, drives both construction phases to
    quiescence (under ``link_delays``, forwarded to
    :func:`run_plain_fpss` together with ``max_events`` and
    ``batch_delivery``), optionally cross-checks the fixed point
    against the centralized oracle (``verify`` — routes always,
    ``check_prices`` adds the VCG pricing tables), and returns the
    work counters.  Nothing is shared between calls, so this is safe
    to invoke from sweep workers (one process may run many scenarios
    back to back).
    """
    _, nodes, stats = run_plain_fpss(
        graph,
        link_delays=link_delays,
        max_events=max_events,
        batch_delivery=batch_delivery,
    )
    if verify:
        verify_against_oracle(graph, nodes, check_prices=check_prices)
    return stats


def verify_against_oracle(
    graph: ASGraph, nodes: Mapping[NodeId, FPSSNode], check_prices: bool = True
) -> None:
    """Assert the converged tables equal the centralized computation.

    Raises
    ------
    ConvergenceError
        On the first routing or pricing disagreement found.
    """
    engine = engine_for(graph)
    for source in graph.nodes:
        node = nodes[source]
        routing = node.routing_table()
        pricing = node.pricing_table()
        tree = engine.tree(source)
        for destination in graph.nodes:
            if destination == source:
                continue
            oracle = tree.get(destination)
            entry = routing.entry(destination)
            if entry is None or oracle is None:
                raise ConvergenceError(
                    f"{source!r} has no route to {destination!r}"
                )
            # Costs may differ by float accumulation order between the
            # hop-by-hop relaxation and the oracle's Dijkstra.
            if entry.path != oracle.path or abs(entry.cost - oracle.cost) > 1e-9:
                raise ConvergenceError(
                    f"route {source!r}->{destination!r}: protocol said "
                    f"{entry.path} @ {entry.cost}, oracle said "
                    f"{oracle.path} @ {oracle.cost}"
                )
            if not check_prices:
                continue
            bundle = route_payments(graph, source, destination)
            for transit in oracle.transit_nodes:
                expected = bundle.payments[transit]
                actual = pricing.price(destination, transit)
                if abs(expected - actual) > 1e-9:
                    raise ConvergenceError(
                        f"price {source!r}->{destination!r} via {transit!r}: "
                        f"protocol said {actual}, oracle said {expected}"
                    )


def verify_against_kernel(graph: ASGraph, nodes: Mapping[NodeId, FPSSNode]) -> None:
    """Assert the converged tables equal the pure-kernel fixed point.

    The second, protocol-independent oracle: :func:`~repro.routing.
    kernel.kernel_fixed_point` iterates the same replay kernel in
    synchronous rounds with no simulator, so agreement here checks the
    *distribution* machinery (batching, delta wire format, delivery
    order) against the bare state machine — digest-exact, DATA3* tags
    included, which the Dijkstra oracle of :func:`verify_against_oracle`
    cannot see.

    Raises
    ------
    ConvergenceError
        On the first digest disagreement.
    """
    kernels = kernel_fixed_point(graph)
    for node_id, kernel in kernels.items():
        comp = nodes[node_id].comp
        if comp is None:
            raise ConvergenceError(f"{node_id!r} never started construction")
        if comp.routing_digest() != kernel.routing_digest():
            raise ConvergenceError(
                f"{node_id!r}: protocol DATA2 digest differs from the "
                f"kernel fixed point"
            )
        if comp.pricing_digest() != kernel.pricing_digest():
            raise ConvergenceError(
                f"{node_id!r}: protocol DATA3* digest differs from the "
                f"kernel fixed point"
            )
