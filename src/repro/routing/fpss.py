"""The distributed FPSS protocol (plain, trusting variant).

FPSS computes lowest-cost paths and VCG pricing tables "by each node
using information from neighbors in an iterative calculation",
following the Griffin-Wilfong abstract model of BGP.  This module
implements that computation in two layers:

:class:`FPSSComputation`
    A *pure, deterministic* state container holding DATA1-DATA3* and
    the neighbour vectors, with explicit apply/recompute methods and no
    I/O.  Determinism matters beyond tidiness: the faithful extension's
    checker nodes replay a principal's computation on copies of its
    messages, and replay only works if the computation is a pure
    function of (identity, neighbour set, message sequence).

:class:`FPSSNode`
    A :class:`~repro.sim.node.ProtocolNode` driving one computation
    instance: it floods cost declarations (first construction phase)
    and exchanges routing/pricing updates (second construction phase),
    broadcasting whenever its own tables change.

Distributed pricing
-------------------
The per-packet VCG payment to transit node ``k`` on the LCP from ``i``
to ``j`` is ``p^{ij}_k = c_k + d^{-k}(i,j) - d(i,j)`` where ``d`` is
the LCP cost and ``d^{-k}`` the LCP cost avoiding ``k``.  FPSS computes
the prices iteratively from neighbours' pricing information; here the
exchanged quantity is the table of *avoidance costs* ``d^{-k}(a, j)``,
which carries the identical information (``d^{-k} = p - c_k + d``) and
admits the same Bellman-Ford style relaxation:

    d^{-k}(i, j) = min over neighbours a != k of
                   [ (c_a if a != j else 0) + d^{-k}(a, j) ]

Identity tags (DATA3*)
----------------------
Each pricing entry carries the set of neighbours that *triggered* its
current value — the argmin suppliers in the relaxation above, with
ties unioned — exactly the DATA3* extension of Section 4.3 ("this tag
identifies the node that triggered the most recent FPSS pricing table
update; in the case of a pricing tie, this tag field actually contains
the union of the nodes that suggested the same pricing entry").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ProtocolError, RoutingError
from ..sim.crypto import stable_hash
from ..sim.messages import Message, NodeId
from ..sim.node import ProtocolNode
from .graph import Cost
from .tables import (
    PaymentList,
    PricingTable,
    RouteEntry,
    RoutingTable,
    TransitCostTable,
)

#: Message kinds used by the two construction phases.
KIND_COST_DECL = "cost-decl"
KIND_RT_UPDATE = "rt-update"
KIND_PRICE_UPDATE = "price-update"
#: Message kind used by the execution phase.
KIND_PACKET = "packet"

RouteVector = Dict[NodeId, RouteEntry]
AvoidKey = Tuple[NodeId, NodeId]  # (destination, avoided node)
AvoidVector = Dict[AvoidKey, RouteEntry]


def encode_route_vector(vector: Mapping[NodeId, RouteEntry]) -> Tuple:
    """Wire encoding of a routing vector (sorted, immutable)."""
    return tuple(
        (dest, entry.cost, entry.path)
        for dest, entry in sorted(vector.items(), key=lambda kv: repr(kv[0]))
    )


def decode_route_vector(encoded: Sequence[Tuple]) -> RouteVector:
    """Inverse of :func:`encode_route_vector`."""
    return {
        dest: RouteEntry(cost=cost, path=tuple(path)) for dest, cost, path in encoded
    }


def encode_avoid_vector(vector: Mapping[AvoidKey, RouteEntry]) -> Tuple:
    """Wire encoding of an avoidance-cost vector."""
    return tuple(
        (dest, avoided, entry.cost, entry.path)
        for (dest, avoided), entry in sorted(vector.items(), key=lambda kv: repr(kv[0]))
    )


def decode_avoid_vector(encoded: Sequence[Tuple]) -> AvoidVector:
    """Inverse of :func:`encode_avoid_vector`."""
    return {
        (dest, avoided): RouteEntry(cost=cost, path=tuple(path))
        for dest, avoided, cost, path in encoded
    }


class FPSSComputation:
    """Pure FPSS mechanism state for one node (or one mirror of one).

    Parameters
    ----------
    owner:
        The node whose computation this is.
    neighbors:
        The owner's neighbour set (semi-private connectivity
        information; common knowledge between link endpoints).
    own_cost:
        The transit cost the owner *declares* (truthful for obedient
        nodes; a lie is an information-revelation deviation).
    """

    def __init__(
        self, owner: NodeId, neighbors: Sequence[NodeId], own_cost: Cost
    ) -> None:
        self.owner = owner
        self.neighbors: Tuple[NodeId, ...] = tuple(sorted(neighbors, key=repr))
        self.own_cost = float(own_cost)

        self.costs = TransitCostTable()  # DATA1
        self.costs.declare(owner, own_cost)
        self.routing = RoutingTable(owner)  # DATA2
        self.pricing = PricingTable(owner)  # DATA3*
        self.avoid: AvoidVector = {}
        #: Last routing/avoid vector received from each neighbour.
        self.neighbor_routes: Dict[NodeId, RouteVector] = {}
        self.neighbor_avoid: Dict[NodeId, AvoidVector] = {}
        self.computation_count = 0

    # ------------------------------------------------------------------
    # phase 1: transit cost dissemination
    # ------------------------------------------------------------------

    def note_cost_declaration(self, node: NodeId, cost: Cost) -> bool:
        """Record a flooded declaration; True if DATA1 changed."""
        return self.costs.declare(node, cost)

    def known_nodes(self) -> Tuple[NodeId, ...]:
        """Every node with a DATA1 entry, repr-sorted."""
        return tuple(sorted(self.costs.as_dict(), key=repr))

    # ------------------------------------------------------------------
    # phase 2: routing and pricing
    # ------------------------------------------------------------------

    def reset_phase2(self) -> None:
        """Clear DATA2/DATA3* state for a phase restart."""
        self.routing = RoutingTable(self.owner)
        self.pricing = PricingTable(self.owner)
        self.avoid = {}
        self.neighbor_routes = {}
        self.neighbor_avoid = {}

    def apply_route_update(self, neighbor: NodeId, vector: RouteVector) -> None:
        """Store a neighbour's announced routing vector."""
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a route update from non-neighbour {neighbor!r}"
            )
        self.neighbor_routes[neighbor] = dict(vector)

    def apply_avoid_update(self, neighbor: NodeId, vector: AvoidVector) -> None:
        """Store a neighbour's announced avoidance-cost vector."""
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a price update from non-neighbour {neighbor!r}"
            )
        self.neighbor_avoid[neighbor] = dict(vector)

    def _candidate_routes(self, destination: NodeId) -> List[RouteEntry]:
        """All loop-free route candidates to one destination."""
        candidates: List[RouteEntry] = []
        for neighbor in self.neighbors:
            if neighbor == destination:
                candidates.append(
                    RouteEntry(cost=0.0, path=(self.owner, destination))
                )
                continue
            entry = self.neighbor_routes.get(neighbor, {}).get(destination)
            if entry is None or self.owner in entry.path:
                continue
            transit_cost = self.costs.cost(neighbor) if self.costs.knows(neighbor) else None
            if transit_cost is None:
                continue
            candidates.append(
                RouteEntry(
                    cost=transit_cost + entry.cost,
                    path=(self.owner,) + entry.path,
                )
            )
        return candidates

    def recompute_routes(self) -> bool:
        """Re-derive DATA2 from neighbour vectors; True if changed.

        The relaxation is the path-vector Bellman-Ford of the
        Griffin-Wilfong model with the deterministic (cost, hops,
        lexicographic) tie-break shared with the centralized oracle.
        """
        self.computation_count += 1
        changed = False
        destinations: Set[NodeId] = set()
        for vector in self.neighbor_routes.values():
            destinations.update(vector)
        destinations.update(self.neighbors)
        destinations.discard(self.owner)

        for destination in sorted(destinations, key=repr):
            candidates = self._candidate_routes(destination)
            if not candidates:
                continue
            best = min(candidates, key=RouteEntry.sort_key)
            current = self.routing.entry(destination)
            if current is None or best != current:
                # Only adopt strictly better or structurally different
                # routes; the comparison to `current` keeps quiescence.
                if current is None or best.sort_key() != current.sort_key():
                    self.routing.update(destination, best)
                    changed = True
        return changed

    def _candidate_avoid(
        self, destination: NodeId, avoided: NodeId
    ) -> List[Tuple[RouteEntry, NodeId]]:
        """Loop-free avoidance candidates, each with its supplier tag."""
        candidates: List[Tuple[RouteEntry, NodeId]] = []
        for neighbor in self.neighbors:
            if neighbor == avoided:
                continue
            if neighbor == destination:
                candidates.append(
                    (RouteEntry(cost=0.0, path=(self.owner, destination)), neighbor)
                )
                continue
            entry = self.neighbor_avoid.get(neighbor, {}).get((destination, avoided))
            if entry is None or self.owner in entry.path or avoided in entry.path:
                continue
            if not self.costs.knows(neighbor):
                continue
            candidates.append(
                (
                    RouteEntry(
                        cost=self.costs.cost(neighbor) + entry.cost,
                        path=(self.owner,) + entry.path,
                    ),
                    neighbor,
                )
            )
        return candidates

    def recompute_avoidance(self) -> bool:
        """Re-derive the avoidance-cost table; True if changed."""
        self.computation_count += 1
        changed = False
        all_nodes = set(self.known_nodes())
        destinations: Set[NodeId] = set()
        for vector in self.neighbor_routes.values():
            destinations.update(vector)
        destinations.update(self.neighbors)
        destinations.discard(self.owner)

        for destination in sorted(destinations, key=repr):
            for avoided in sorted(all_nodes, key=repr):
                if avoided in (self.owner, destination):
                    continue
                candidates = self._candidate_avoid(destination, avoided)
                if not candidates:
                    continue
                best_entry = min(candidates, key=lambda c: c[0].sort_key())[0]
                key = (destination, avoided)
                current = self.avoid.get(key)
                if current is None or best_entry.sort_key() != current.sort_key():
                    self.avoid[key] = best_entry
                    changed = True
        return changed

    def derive_pricing(self) -> bool:
        """Recompute DATA3* from DATA2 and the avoidance table.

        For every destination ``j`` with a route, and every transit
        node ``k`` interior to that route, install

            price = c_k + d^{-k}(owner, j) - d(owner, j)

        with the identity tag set to the argmin suppliers of the
        avoidance entry.  Returns True if any cell changed.
        """
        self.computation_count += 1
        changed = False
        for destination in self.routing.destinations:
            entry = self.routing.entry(destination)
            assert entry is not None
            desired: Dict[NodeId, PricingEntryLike] = {}
            for transit in entry.path[1:-1]:
                avoid_entry = self.avoid.get((destination, transit))
                if avoid_entry is None or not self.costs.knows(transit):
                    continue
                price = self.costs.cost(transit) + avoid_entry.cost - entry.cost
                tag = self._supplier_tag(destination, transit)
                desired[transit] = (price, tag)
            current_row = self.pricing.row(destination)
            current_view = {
                transit: (cell.price, cell.tag) for transit, cell in current_row.items()
            }
            if current_view != desired:
                self.pricing.clear_destination(destination)
                for transit, (price, tag) in desired.items():
                    self.pricing.set_price(destination, transit, price, tag)
                changed = True
        return changed

    def _supplier_tag(self, destination: NodeId, avoided: NodeId) -> FrozenSet[NodeId]:
        """Argmin suppliers of one avoidance entry (union on ties)."""
        candidates = self._candidate_avoid(destination, avoided)
        if not candidates:
            return frozenset()
        best_key = min(c[0].sort_key() for c in candidates)
        return frozenset(
            supplier for entry, supplier in candidates if entry.sort_key() == best_key
        )

    # ------------------------------------------------------------------
    # digests for bank comparison
    # ------------------------------------------------------------------

    def routing_digest(self) -> str:
        """Hash of DATA2 (BANK1 material)."""
        return self.routing.stable_digest()

    def pricing_digest(self) -> str:
        """Hash of DATA3* including tags (BANK2 material)."""
        return self.pricing.stable_digest()

    def cost_digest(self) -> str:
        """Hash of DATA1 (first-construction-phase checkpoint)."""
        return self.costs.stable_digest()

    def full_digest(self) -> str:
        """Combined digest over all construction state."""
        return stable_hash(
            (self.cost_digest(), self.routing_digest(), self.pricing_digest())
        )


PricingEntryLike = Tuple[Cost, FrozenSet[NodeId]]


class FPSSNode(ProtocolNode):
    """A trusting FPSS participant (the original, non-faithful protocol).

    The node follows the suggested specification but performs *no*
    checking: there are no checkers, no bank examination, and nothing
    prevents a rational variant from manipulating tables — which is
    exactly the gap the faithful extension closes.

    Subclass hook methods (`declared_cost`, `make_route_broadcast`,
    `make_price_broadcast`) are the seams where manipulation strategies
    attach.
    """

    def __init__(self, node_id: NodeId, true_cost: Cost) -> None:
        super().__init__(node_id)
        self.true_cost = float(true_cost)
        self.comp: Optional[FPSSComputation] = None
        self.phase: str = "idle"
        # --- execution-phase state (DATA4 and usage logs) ---
        self.data4 = PaymentList(node_id)
        #: True transit cost actually incurred forwarding packets.
        self.incurred_cost: Cost = 0.0
        #: (origin, dest) -> {sender: volume} ground-truth receipts.
        self.receipts: Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]] = {}
        #: (origin, dest) -> volume delivered here as destination.
        self.delivered: Dict[Tuple[NodeId, NodeId], float] = {}

    # ------------------------------------------------------------------
    # deviation seams
    # ------------------------------------------------------------------

    def declared_cost(self) -> Cost:
        """The cost this node announces (information revelation)."""
        return self.true_cost

    def make_route_broadcast(self) -> RouteVector:
        """The routing vector this node announces (computation)."""
        assert self.comp is not None
        return {
            dest: entry
            for dest in self.comp.routing.destinations
            if (entry := self.comp.routing.entry(dest)) is not None
        }

    def make_price_broadcast(self) -> AvoidVector:
        """The avoidance/pricing vector this node announces."""
        assert self.comp is not None
        return dict(self.comp.avoid)

    # ------------------------------------------------------------------
    # phase 1
    # ------------------------------------------------------------------

    def start_phase1(self) -> None:
        """Begin the first construction phase: declare and flood costs."""
        self.comp = FPSSComputation(
            self.node_id, self.neighbors, self.declared_cost()
        )
        self.phase = "phase1"
        self.broadcast(
            KIND_COST_DECL, node=self.node_id, cost=self.comp.own_cost
        )

    def on_cost_decl(self, message: Message) -> None:
        """Flooding handler: record new declarations and relay them."""
        if self.comp is None:
            return
        node = message.payload["node"]
        cost = message.payload["cost"]
        if self.comp.note_cost_declaration(node, cost):
            self.sim.metrics.record_computation(self.node_id)
            self.relay_cost_declaration(message)

    def relay_cost_declaration(self, message: Message) -> None:
        """Forward a novel declaration to every neighbour.

        Message-passing action; a deviation seam for drop/alter tests.
        """
        for neighbor in self.neighbors:
            if neighbor != message.src:
                self.forward(message, neighbor)

    # ------------------------------------------------------------------
    # phase 2
    # ------------------------------------------------------------------

    def start_phase2(self) -> None:
        """Begin the second construction phase from converged DATA1."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} cannot enter phase 2 before 1")
        self.phase = "phase2"
        self.comp.reset_phase2()
        self.recompute_and_announce(force_announce=True)

    def recompute_and_announce(self, force_announce: bool = False) -> None:
        """Run the local relaxations and broadcast whatever changed."""
        assert self.comp is not None
        self.sim.metrics.record_computation(self.node_id)
        routes_changed = self.comp.recompute_routes()
        avoid_changed = self.comp.recompute_avoidance()
        self.comp.derive_pricing()
        if routes_changed or force_announce:
            self.announce_routes()
        if avoid_changed or force_announce:
            self.announce_prices()

    def announce_routes(self) -> None:
        """Broadcast the (hook-provided) routing vector to neighbours."""
        vector = encode_route_vector(self.make_route_broadcast())
        self.broadcast(KIND_RT_UPDATE, vector=vector)

    def announce_prices(self) -> None:
        """Broadcast the (hook-provided) avoidance vector to neighbours."""
        vector = encode_avoid_vector(self.make_price_broadcast())
        self.broadcast(KIND_PRICE_UPDATE, vector=vector)

    def on_rt_update(self, message: Message) -> None:
        """[PRINC1] computation half: recompute LCPs on new input."""
        if self.comp is None or self.phase != "phase2":
            return
        vector = decode_route_vector(message.payload["vector"])
        self.comp.apply_route_update(message.src, vector)
        self.after_route_input(message)
        self.sim.metrics.record_computation(self.node_id)
        if self.comp.recompute_routes():
            self.announce_routes()
        if self.comp.recompute_avoidance():
            self.announce_prices()
        self.comp.derive_pricing()

    def on_price_update(self, message: Message) -> None:
        """[PRINC2] computation half: recompute pricing on new input."""
        if self.comp is None or self.phase != "phase2":
            return
        vector = decode_avoid_vector(message.payload["vector"])
        self.comp.apply_avoid_update(message.src, vector)
        self.after_price_input(message)
        self.sim.metrics.record_computation(self.node_id)
        if self.comp.recompute_avoidance():
            self.announce_prices()
        self.comp.derive_pricing()

    # Hooks the faithful extension overrides to forward copies to
    # checkers *before* recomputation, per PRINC1/PRINC2 ordering.
    def after_route_input(self, message: Message) -> None:
        """Called after storing a route update (pre-recompute)."""

    def after_price_input(self, message: Message) -> None:
        """Called after storing a price update (pre-recompute)."""

    # ------------------------------------------------------------------
    # execution phase (mechanism usage)
    # ------------------------------------------------------------------

    def start_execution(self) -> None:
        """Enter the execution phase (after construction certifies)."""
        self.phase = "execution"

    def originate_flow(self, destination: NodeId, volume: float) -> None:
        """Send ``volume`` packets toward a destination along the LCP,
        recording the per-packet payments owed into DATA4."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} has no converged tables")
        entry = self.comp.routing.entry(destination)
        if entry is None:
            raise RoutingError(
                f"{self.node_id!r} has no route to {destination!r}"
            )
        for payee, amount in self.compute_charges(destination, volume).items():
            self.data4.charge(payee, amount)
        first_hop = self.choose_first_hop(destination)
        # TTL bounds forwarding loops created by misrouting deviants,
        # as IP's hop limit does; honest LCP forwarding never hits it.
        ttl = 4 * max(4, len(self.comp.known_nodes()))
        self.send(
            first_hop,
            KIND_PACKET,
            origin=self.node_id,
            destination=destination,
            volume=volume,
            ttl=ttl,
        )

    def on_packet(self, message: Message) -> None:
        """Receive a packet: deliver locally or transit it onward."""
        origin = message.payload["origin"]
        destination = message.payload["destination"]
        volume = message.payload["volume"]
        flow = (origin, destination)
        self.receipts.setdefault(flow, {})
        self.receipts[flow][message.src] = (
            self.receipts[flow].get(message.src, 0.0) + volume
        )
        self.observe_packet(message)
        if destination == self.node_id:
            self.delivered[flow] = self.delivered.get(flow, 0.0) + volume
            return
        if not self.should_forward(origin, destination, volume):
            return
        ttl = message.payload.get("ttl", 64) - 1
        if ttl <= 0:
            return  # loop guard; settlement treats it as a drop
        self.incurred_cost += self.true_cost * volume
        next_hop = self.choose_next_hop(origin, destination)
        self.send(
            next_hop,
            KIND_PACKET,
            origin=origin,
            destination=destination,
            volume=volume,
            ttl=ttl,
        )

    def observe_packet(self, message: Message) -> None:
        """Hook for checker-side packet observation (faithful mode)."""

    # --- execution deviation seams -----------------------------------

    def compute_charges(
        self, destination: NodeId, volume: float
    ) -> Dict[NodeId, float]:
        """Per-payee charges for one originated flow, from DATA3*."""
        assert self.comp is not None
        entry = self.comp.routing.entry(destination)
        if entry is None:
            return {}
        # Prices are non-negative at the honest fixed point; off the
        # fixed point (deviant runs) a stale table can yield a negative
        # price, which no node would ever accept as a charge.
        return {
            transit: max(0.0, self.comp.pricing.price(destination, transit))
            * volume
            for transit in entry.path[1:-1]
        }

    def choose_first_hop(self, destination: NodeId) -> NodeId:
        """First hop for own traffic (suggested: the LCP next hop)."""
        assert self.comp is not None
        entry = self.comp.routing.entry(destination)
        assert entry is not None and len(entry.path) >= 2
        return entry.path[1]

    def choose_next_hop(self, origin: NodeId, destination: NodeId) -> NodeId:
        """Next hop for transited traffic (suggested: own LCP)."""
        assert self.comp is not None
        entry = self.comp.routing.entry(destination)
        if entry is None or len(entry.path) < 2:
            raise RoutingError(
                f"{self.node_id!r} cannot transit toward {destination!r}"
            )
        return entry.path[1]

    def should_forward(
        self, origin: NodeId, destination: NodeId, volume: float
    ) -> bool:
        """Whether to forward a transiting flow (suggested: always)."""
        return True

    def report_payments(self) -> Dict[NodeId, float]:
        """The DATA4 report submitted for settlement."""
        return self.data4.as_dict()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def routing_table(self) -> RoutingTable:
        """This node's DATA2."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} has not started")
        return self.comp.routing

    def pricing_table(self) -> PricingTable:
        """This node's DATA3*."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} has not started")
        return self.comp.pricing
