"""The distributed FPSS protocol (plain, trusting variant).

FPSS computes lowest-cost paths and VCG pricing tables "by each node
using information from neighbors in an iterative calculation",
following the Griffin-Wilfong abstract model of BGP.  This module
implements the *protocol* layers on top of the pure replay kernel of
:mod:`repro.routing.kernel`:

:class:`FPSSComputation`
    The principal-facing name for one :class:`~repro.routing.kernel.
    ReplayKernel` instance: a pure, deterministic state machine holding
    DATA1-DATA3* and the neighbour vectors, with explicit apply /
    recompute methods and no I/O.  Determinism matters beyond
    tidiness: the faithful extension's checker nodes replay a
    principal's computation on copies of its messages, and replay only
    works if the computation is a pure function of (identity,
    neighbour set, message sequence).

:class:`FPSSNode`
    A :class:`~repro.sim.node.ProtocolNode` driving one computation
    instance: it floods cost declarations (first construction phase)
    and exchanges routing/pricing updates (second construction phase),
    broadcasting whenever its own tables change.

This module also owns the *wire layer*: full-vector and delta
encodings of routing/avoidance announcements (withdrawal rows carry
``cost=None``) plus their payload sizing.

Incremental recomputation, batching, and the relaxation internals are
documented on the kernel (:mod:`repro.routing.kernel`); the full-table
rescans are retained there as the property-tested reference oracle
(``tests/routing/test_incremental_property.py``).

Distributed pricing
-------------------
The per-packet VCG payment to transit node ``k`` on the LCP from ``i``
to ``j`` is ``p^{ij}_k = c_k + d^{-k}(i,j) - d(i,j)`` where ``d`` is
the LCP cost and ``d^{-k}`` the LCP cost avoiding ``k``.  FPSS computes
the prices iteratively from neighbours' pricing information; here the
exchanged quantity is the table of *avoidance costs* ``d^{-k}(a, j)``,
which carries the identical information (``d^{-k} = p - c_k + d``) and
admits the same Bellman-Ford style relaxation:

    d^{-k}(i, j) = min over neighbours a != k of
                   [ (c_a if a != j else 0) + d^{-k}(a, j) ]

Identity tags (DATA3*)
----------------------
Each pricing entry carries the set of neighbours that *triggered* its
current value — the argmin suppliers in the relaxation, with ties
unioned — exactly the DATA3* extension of Section 4.3 ("this tag
identifies the node that triggered the most recent FPSS pricing table
update; in the case of a pricing tie, this tag field actually contains
the union of the nodes that suggested the same pricing entry").
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..errors import ProtocolError, RoutingError
from ..obs.events import BUS
from ..obs.trace import emit_counters, span
from ..sim.messages import Message, NodeId
from ..sim.node import ProtocolNode
from .graph import Cost
from .kernel import (
    KIND_PRICE_UPDATE,
    KIND_RT_UPDATE,
    AvoidKey,
    AvoidVector,
    ReplayKernel,
    RouteVector,
    _sort_key,
)
from .tables import (
    PaymentList,
    PricingTable,
    RouteEntry,
    RoutingTable,
)

#: Message kind used by the first construction phase.
KIND_COST_DECL = "cost-decl"
#: Message kind used by the execution phase.
KIND_PACKET = "packet"

__all__ = [
    "KIND_COST_DECL",
    "KIND_RT_UPDATE",
    "KIND_PRICE_UPDATE",
    "KIND_PACKET",
    "AvoidKey",
    "AvoidVector",
    "RouteVector",
    "FPSSComputation",
    "FPSSNode",
    "FullRecomputeFPSSNode",
    "delta_size",
    "encode_route_vector",
    "decode_route_vector",
    "encode_avoid_vector",
    "decode_avoid_vector",
    "encode_route_delta",
    "encode_avoid_delta",
]


def delta_size(delta: Sequence[Tuple]) -> int:
    """Scalar count of a delta payload, matching ``Message.size``.

    Each row contributes its scalar fields plus its path length (an
    empty path counts as one scalar, like any empty container); an
    empty delta is one scalar.
    """
    if not delta:
        return 1
    return sum(len(row) - 1 + (len(row[-1]) or 1) for row in delta)


def encode_route_vector(vector: Mapping[NodeId, RouteEntry]) -> Tuple:
    """Wire encoding of a routing vector (repr-sorted, immutable).

    Rows are unique per destination; every decoder and differ below
    relies on that uniqueness.
    """
    return tuple(
        (dest, entry.cost, entry.path)
        for dest, entry in sorted(vector.items(), key=lambda kv: _sort_key(kv[0]))
    )


def decode_route_vector(encoded: Sequence[Tuple]) -> RouteVector:
    """Inverse of :func:`encode_route_vector`."""
    return {
        dest: RouteEntry(cost=cost, path=tuple(path)) for dest, cost, path in encoded
    }


def encode_avoid_vector(vector: Mapping[AvoidKey, RouteEntry]) -> Tuple:
    """Wire encoding of an avoidance-cost vector (repr-sorted)."""
    return tuple(
        (dest, avoided, entry.cost, entry.path)
        for (dest, avoided), entry in sorted(
            vector.items(), key=lambda kv: _sort_key(kv[0])
        )
    )


def decode_avoid_vector(encoded: Sequence[Tuple]) -> AvoidVector:
    """Inverse of :func:`encode_avoid_vector`."""
    return {
        (dest, avoided): RouteEntry(cost=cost, path=tuple(path))
        for dest, avoided, cost, path in encoded
    }


def encode_route_delta(current: Mapping[NodeId, RouteEntry],
                       last: Mapping[NodeId, RouteEntry]) -> Tuple:
    """Delta announcement: ``current`` relative to ``last``.

    Rows keep the full-vector shape ``(dest, cost, path)`` for changed
    or new destinations; a destination present in ``last`` but absent
    from ``current`` becomes the withdrawal row ``(dest, None, ())``
    (never produced by an obedient node, whose table only grows).
    Unchanged rows — the overwhelming majority after the first
    broadcast — are omitted, which is what keeps per-message work
    proportional to actual route churn.
    """
    rows = []
    for dest, entry in current.items():
        prev = last.get(dest)
        if prev is None or (prev is not entry and prev != entry):
            rows.append((dest, entry.cost, entry.path))
    for dest in last:
        if dest not in current:
            rows.append((dest, None, ()))
    rows.sort(key=lambda row: _sort_key(row[0]))
    return tuple(rows)


def encode_avoid_delta(current: Mapping[AvoidKey, RouteEntry],
                       last: Mapping[AvoidKey, RouteEntry]) -> Tuple:
    """Delta announcement for an avoidance vector.

    Same contract as :func:`encode_route_delta` with rows
    ``(dest, avoided, cost, path)`` and withdrawals
    ``(dest, avoided, None, ())``.
    """
    rows = []
    for key, entry in current.items():
        prev = last.get(key)
        if prev is None or (prev is not entry and prev != entry):
            rows.append((key[0], key[1], entry.cost, entry.path))
    for key in last:
        if key not in current:
            rows.append((key[0], key[1], None, ()))
    rows.sort(key=lambda row: (_sort_key(row[0]), _sort_key(row[1])))
    return tuple(rows)


class FPSSComputation(ReplayKernel):
    """Pure FPSS mechanism state for one node (or one mirror of one).

    The protocol-facing name of the replay kernel — see
    :class:`~repro.routing.kernel.ReplayKernel` for the state machine
    (ingestion, fused relaxation, changed-key sets, digests, snapshot).
    Kept as a distinct class so protocol code and the manipulation
    catalogue keep reading in the paper's vocabulary.

    Parameters
    ----------
    owner:
        The node whose computation this is.
    neighbors:
        The owner's neighbour set (semi-private connectivity
        information; common knowledge between link endpoints).
    own_cost:
        The transit cost the owner *declares* (truthful for obedient
        nodes; a lie is an information-revelation deviation).
    """


class FPSSNode(ProtocolNode):
    """A trusting FPSS participant (the original, non-faithful protocol).

    The node follows the suggested specification but performs *no*
    checking: there are no checkers, no bank examination, and nothing
    prevents a rational variant from manipulating tables — which is
    exactly the gap the faithful extension closes.

    Subclass hook methods (`declared_cost`, `make_route_broadcast`,
    `make_price_broadcast`) are the seams where manipulation strategies
    attach.
    """

    def __init__(self, node_id: NodeId, true_cost: Cost) -> None:
        super().__init__(node_id)
        self.true_cost = float(true_cost)
        self.comp: Optional[FPSSComputation] = None
        self.phase: str = "idle"
        #: Batched-delivery state: while a batch is being applied the
        #: phase-2 handlers only ingest inputs and set the pending
        #: flag; the relaxation and broadcasts run once at the batch
        #: boundary (:meth:`flush_batch`).
        self._batch_recompute_pending = False
        #: Last announced (hook-transformed) vectors, the baseline each
        #: delta broadcast is encoded against.
        self._announced_routes: RouteVector = {}
        self._announced_avoid: AvoidVector = {}
        # --- execution-phase state (DATA4 and usage logs) ---
        self.data4 = PaymentList(node_id)
        #: True transit cost actually incurred forwarding packets.
        self.incurred_cost: Cost = 0.0
        #: (origin, dest) -> {sender: volume} ground-truth receipts.
        self.receipts: Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]] = {}
        #: (origin, dest) -> volume delivered here as destination.
        self.delivered: Dict[Tuple[NodeId, NodeId], float] = {}
        #: Kernel-stats snapshot at the last telemetry emission, so the
        #: ``kernel`` counter records carry deltas (ingest work between
        #: relaxation boundaries is attributed to the boundary that
        #: flushed it).
        self._kernel_emitted: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # deviation seams
    # ------------------------------------------------------------------

    def declared_cost(self) -> Cost:
        """The cost this node announces (information revelation)."""
        return self.true_cost

    def make_route_broadcast(self) -> RouteVector:
        """The routing vector this node announces (computation)."""
        assert self.comp is not None
        return {
            dest: entry
            for dest in self.comp.routing.destinations
            if (entry := self.comp.routing.entry(dest)) is not None
        }

    def make_price_broadcast(self) -> AvoidVector:
        """The avoidance/pricing vector this node announces."""
        assert self.comp is not None
        return dict(self.comp.avoid)

    # ------------------------------------------------------------------
    # phase 1
    # ------------------------------------------------------------------

    def start_phase1(self) -> None:
        """Begin the first construction phase: declare and flood costs."""
        self.comp = FPSSComputation(
            self.node_id, self.neighbors, self.declared_cost()
        )
        self._kernel_emitted = {}
        self.phase = "phase1"
        self.broadcast(
            KIND_COST_DECL, node=self.node_id, cost=self.comp.own_cost
        )

    def on_cost_decl(self, message: Message) -> None:
        """Flooding handler: record new declarations and relay them."""
        if self.comp is None:
            return
        node = message.payload["node"]
        cost = message.payload["cost"]
        if self.comp.note_cost_declaration(node, cost):
            self.sim.metrics.record_computation(self.node_id)
            self.relay_cost_declaration(message)

    def relay_cost_declaration(self, message: Message) -> None:
        """Forward a novel declaration to every neighbour.

        Message-passing action; a deviation seam for drop/alter tests.
        """
        for neighbor in self.neighbors:
            if neighbor != message.src:
                self.forward(message, neighbor)

    # ------------------------------------------------------------------
    # phase 2
    # ------------------------------------------------------------------

    def start_phase2(self) -> None:
        """Begin the second construction phase from converged DATA1."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} cannot enter phase 2 before 1")
        self.phase = "phase2"
        self._batch_recompute_pending = False
        self._announced_routes = {}
        self._announced_avoid = {}
        self.comp.reset_phase2()
        self.recompute_and_announce(force_announce=True)

    def recompute_and_announce(self, force_announce: bool = False) -> None:
        """Run the full-table relaxations and broadcast what changed.

        Used at phase starts (where everything is dirty anyway); the
        steady-state message path goes through the incremental
        relaxations instead.
        """
        assert self.comp is not None
        self.sim.metrics.record_computation(self.node_id)
        with span(
            "kernel.recompute",
            sim_time=self.now,
            owner=str(self.node_id),
            phase=self.phase,
        ):
            routes_changed = self.comp.recompute_routes()
            avoid_changed = self.comp.recompute_avoidance()
            self.comp.derive_pricing()
            if routes_changed or force_announce:
                self.announce_routes()
            if avoid_changed or force_announce:
                self.announce_prices()
        if BUS.enabled:
            self._emit_kernel_counters()

    def _recompute_and_announce_incremental(self) -> None:
        """Relax the dirty entries once; broadcast each changed kind.

        Shared by the per-message path (unbatched mode) and the
        batch-boundary flush; both therefore emit identical broadcasts
        for identical ingested inputs.
        """
        assert self.comp is not None
        routes_changed = self.comp.recompute_routes_incremental()
        avoid_changed = self.comp.recompute_avoidance_incremental()
        self.comp.derive_pricing_incremental()
        if routes_changed:
            self.announce_routes()
        if avoid_changed:
            self.announce_prices()
        if BUS.enabled:
            self._emit_kernel_counters()

    def _emit_kernel_counters(self) -> None:
        """Emit the kernel-stats delta accrued since the last emission.

        The kernel itself is import-pure (``# purity: kernel``), so
        telemetry reads its counters from this call site rather than
        from inside the relaxations; snapshot differencing means row
        ingestion between relaxation boundaries is still captured.
        """
        comp = self.comp
        if comp is None:
            return
        current = comp.stats.as_dict()
        delta = {
            key: value - self._kernel_emitted.get(key, 0)
            for key, value in current.items()
            if value != self._kernel_emitted.get(key, 0)
        }
        self._kernel_emitted = current
        if delta:
            emit_counters("kernel", delta, sim_time=self.now)

    # ------------------------------------------------------------------
    # batched delivery
    # ------------------------------------------------------------------

    def flush_batch(self) -> None:
        """Batch boundary: run the deferred recomputation, if any.

        Every message of the batch has already passed the inbound
        filter and its handler individually (checker copies forwarded
        per input, per [PRINC1]/[PRINC2]); only the relaxation and the
        resulting broadcasts were deferred here, so a flooding round
        costs one recomputation instead of one per neighbour.
        """
        if not self._batch_recompute_pending:
            return
        self._batch_recompute_pending = False
        self.sim.metrics.record_computation(self.node_id)
        if not BUS.enabled:
            self._recompute_and_announce_incremental()
            return
        with span(
            "kernel.flush", sim_time=self.now, owner=str(self.node_id)
        ):
            self._recompute_and_announce_incremental()

    def _next_route_announcement(self) -> Tuple:
        """Encode the next routing delta and advance the baseline.

        When the broadcast hook is unmodified (the suggested
        specification), the delta is read straight off the
        computation's changed-key set in O(|changes|); a hooked
        (deviant) broadcast falls back to diffing the transformed
        vector against the previously announced one.
        """
        comp = self.comp
        if comp is not None and type(self).make_route_broadcast is FPSSNode.make_route_broadcast:
            return comp.consume_route_delta()
        vector = self.make_route_broadcast()
        delta = encode_route_delta(vector, self._announced_routes)
        self._announced_routes = dict(vector)
        return delta

    def _next_price_announcement(self) -> Tuple:
        """Encode the next avoidance delta and advance the baseline."""
        comp = self.comp
        if comp is not None and type(self).make_price_broadcast is FPSSNode.make_price_broadcast:
            return comp.consume_avoid_delta()
        vector = self.make_price_broadcast()
        delta = encode_avoid_delta(vector, self._announced_avoid)
        self._announced_avoid = dict(vector)
        return delta

    def announce_routes(self) -> None:
        """Broadcast the delta of the (hook-provided) routing vector."""
        delta = self._next_route_announcement()
        self.multicast(
            self.neighbors, KIND_RT_UPDATE, size_hint=delta_size(delta), vector=delta
        )

    def announce_prices(self) -> None:
        """Broadcast the delta of the (hook-provided) avoidance vector."""
        delta = self._next_price_announcement()
        self.multicast(
            self.neighbors,
            KIND_PRICE_UPDATE,
            size_hint=delta_size(delta),
            vector=delta,
        )

    def on_rt_update(self, message: Message) -> None:
        """[PRINC1] computation half: recompute LCPs on new input."""
        if self.comp is None or self.phase != "phase2":
            return
        self.comp.apply_route_delta(message.src, message.payload["vector"])
        self.after_route_input(message)
        if self._in_batch:
            self._batch_recompute_pending = True
            return
        self.sim.metrics.record_computation(self.node_id)
        self._recompute_and_announce_incremental()

    def on_price_update(self, message: Message) -> None:
        """[PRINC2] computation half: recompute pricing on new input."""
        if self.comp is None or self.phase != "phase2":
            return
        self.comp.apply_avoid_delta(message.src, message.payload["vector"])
        self.after_price_input(message)
        if self._in_batch:
            self._batch_recompute_pending = True
            return
        self.sim.metrics.record_computation(self.node_id)
        self._recompute_and_announce_incremental()

    # Hooks the faithful extension overrides to forward copies to
    # checkers *before* recomputation, per PRINC1/PRINC2 ordering.
    def after_route_input(self, message: Message) -> None:
        """Called after storing a route update (pre-recompute)."""

    def after_price_input(self, message: Message) -> None:
        """Called after storing a price update (pre-recompute)."""

    # ------------------------------------------------------------------
    # dynamic topology (reconvergence epochs)
    # ------------------------------------------------------------------

    def react_to_topology_change(self) -> None:
        """Settle and announce after an out-of-band topology delta.

        The dynamic engine mutates the computation directly at network
        quiescence (detach/attach/DATA1 changes); this kick then runs
        the same incremental settle-and-broadcast step a received
        message would, so withdrawal storms propagate through the
        ordinary delta machinery.
        """
        if self.comp is None or self.phase != "phase2":
            return
        self.sim.metrics.record_computation(self.node_id)
        self._recompute_and_announce_incremental()

    def resend_full_tables(self, neighbor: NodeId) -> None:
        """Unicast current full vectors across a new or restored link.

        Delta broadcasts assume the receiver holds the previously
        announced vector; a fresh link starts from nothing, so both
        endpoints exchange their complete tables once.  Rows are built
        straight from the tables without consuming the changed-key
        sets, leaving the regular delta streams to other neighbours
        untouched.
        """
        assert self.comp is not None
        routing = self.comp.routing
        route_rows = tuple(
            (dest, entry.cost, entry.path)
            for dest in routing.destinations
            if (entry := routing.entry(dest)) is not None
        )
        avoid_rows = encode_avoid_vector(self.comp.avoid)
        self.multicast(
            (neighbor,),
            KIND_RT_UPDATE,
            size_hint=delta_size(route_rows),
            vector=route_rows,
        )
        self.multicast(
            (neighbor,),
            KIND_PRICE_UPDATE,
            size_hint=delta_size(avoid_rows),
            vector=avoid_rows,
        )

    def join_network(self, known_costs: Mapping[NodeId, Cost]) -> None:
        """Bootstrap a node joining mid-run, DATA1 seeded out of band.

        The compressed equivalent of flooding phase 1 and then starting
        phase 2 on the current graph: build the computation over the
        live neighbour set, note every known declaration, and run the
        initial full relaxation.  The first announcements — the full
        tables as a delta against nothing — reach the new neighbours
        through the normal broadcast path.
        """
        self.comp = FPSSComputation(
            self.node_id, self.neighbors, self.declared_cost()
        )
        self._kernel_emitted = {}
        for node, cost in sorted(known_costs.items(), key=lambda kv: _sort_key(kv[0])):
            self.comp.note_cost_declaration(node, cost)
        self.phase = "phase2"
        self._batch_recompute_pending = False
        self._announced_routes = {}
        self._announced_avoid = {}
        self.comp.reset_phase2()
        self.recompute_and_announce(force_announce=True)

    # ------------------------------------------------------------------
    # execution phase (mechanism usage)
    # ------------------------------------------------------------------

    def start_execution(self) -> None:
        """Enter the execution phase (after construction certifies)."""
        self.phase = "execution"

    def originate_flow(self, destination: NodeId, volume: float) -> None:
        """Send ``volume`` packets toward a destination along the LCP,
        recording the per-packet payments owed into DATA4."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} has no converged tables")
        entry = self.comp.routing.entry(destination)
        if entry is None:
            raise RoutingError(
                f"{self.node_id!r} has no route to {destination!r}"
            )
        for payee, amount in self.compute_charges(destination, volume).items():
            self.data4.charge(payee, amount)
        first_hop = self.choose_first_hop(destination)
        # TTL bounds forwarding loops created by misrouting deviants,
        # as IP's hop limit does; honest LCP forwarding never hits it.
        ttl = 4 * max(4, len(self.comp.known_nodes()))
        self.send(
            first_hop,
            KIND_PACKET,
            origin=self.node_id,
            destination=destination,
            volume=volume,
            ttl=ttl,
        )

    def on_packet(self, message: Message) -> None:
        """Receive a packet: deliver locally or transit it onward."""
        origin = message.payload["origin"]
        destination = message.payload["destination"]
        volume = message.payload["volume"]
        flow = (origin, destination)
        self.receipts.setdefault(flow, {})
        self.receipts[flow][message.src] = (
            self.receipts[flow].get(message.src, 0.0) + volume
        )
        self.observe_packet(message)
        if destination == self.node_id:
            self.delivered[flow] = self.delivered.get(flow, 0.0) + volume
            return
        if not self.should_forward(origin, destination, volume):
            return
        ttl = message.payload.get("ttl", 64) - 1
        if ttl <= 0:
            return  # loop guard; settlement treats it as a drop
        self.incurred_cost += self.true_cost * volume
        next_hop = self.choose_next_hop(origin, destination)
        self.send(
            next_hop,
            KIND_PACKET,
            origin=origin,
            destination=destination,
            volume=volume,
            ttl=ttl,
        )

    def observe_packet(self, message: Message) -> None:
        """Hook for checker-side packet observation (faithful mode)."""

    # --- execution deviation seams -----------------------------------

    def compute_charges(
        self, destination: NodeId, volume: float
    ) -> Dict[NodeId, float]:
        """Per-payee charges for one originated flow, from DATA3*."""
        assert self.comp is not None
        entry = self.comp.routing.entry(destination)
        if entry is None:
            return {}
        # Prices are non-negative at the honest fixed point; off the
        # fixed point (deviant runs) a stale table can yield a negative
        # price, which no node would ever accept as a charge.
        return {
            transit: max(0.0, self.comp.pricing.price(destination, transit))
            * volume
            for transit in entry.path[1:-1]
        }

    def choose_first_hop(self, destination: NodeId) -> NodeId:
        """First hop for own traffic (suggested: the LCP next hop)."""
        assert self.comp is not None
        entry = self.comp.routing.entry(destination)
        assert entry is not None and len(entry.path) >= 2
        return entry.path[1]

    def choose_next_hop(self, origin: NodeId, destination: NodeId) -> NodeId:
        """Next hop for transited traffic (suggested: own LCP)."""
        assert self.comp is not None
        entry = self.comp.routing.entry(destination)
        if entry is None or len(entry.path) < 2:
            raise RoutingError(
                f"{self.node_id!r} cannot transit toward {destination!r}"
            )
        return entry.path[1]

    def should_forward(
        self, origin: NodeId, destination: NodeId, volume: float
    ) -> bool:
        """Whether to forward a transiting flow (suggested: always)."""
        return True

    def report_payments(self) -> Dict[NodeId, float]:
        """The DATA4 report submitted for settlement."""
        return self.data4.as_dict()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def routing_table(self) -> RoutingTable:
        """This node's DATA2."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} has not started")
        return self.comp.routing

    def pricing_table(self) -> PricingTable:
        """This node's DATA3*."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} has not started")
        return self.comp.pricing


class FullRecomputeFPSSNode(FPSSNode):
    """Reference FPSS node relaxing by full-table rescan every time.

    Combined with ``Simulator(batch_delivery=False)`` this reproduces
    the pre-incremental engine exactly (one whole-table recomputation
    per received update) — the "before" leg of the convergence
    benchmarks and the protocol-level equivalence tests.
    """

    def _recompute_and_announce_incremental(self) -> None:
        """Run the full rescans where the engine would run deltas."""
        assert self.comp is not None
        routes_changed = self.comp.recompute_routes()
        avoid_changed = self.comp.recompute_avoidance()
        self.comp.derive_pricing()
        if routes_changed:
            self.announce_routes()
        if avoid_changed:
            self.announce_prices()
